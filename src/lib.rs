//! # differential-gossip — umbrella crate
//!
//! Re-exports the whole Differential Gossip Trust (DGT) workspace behind a
//! single dependency, and hosts the runnable `examples/` plus the
//! workspace-spanning integration tests.
//!
//! The system reproduces *"Reputation Aggregation in Peer-to-Peer Network
//! Using Differential Gossip Algorithm"* (Gupta & Singh): reputation values
//! held locally by peers of a power-law P2P overlay are aggregated by a
//! degree-aware **differential push gossip**, then blended with directly
//! reported neighbour opinions through the weight law `w = a^{b·t}`.
//!
//! Crate map:
//!
//! * [`graph`] — topologies (preferential attachment and baselines),
//! * [`trust`] — trust values, sparse trust matrices, estimators, weights,
//! * [`gossip`] — push / pull / push-pull / differential gossip engines,
//! * [`core`] — the paper's four aggregation algorithms and collusion model,
//! * [`sim`] — scenario runner, workloads, metrics, baselines,
//! * [`p2p`] — tokio-based asynchronous peer deployment,
//! * [`store`] — durable epoch/delta snapshots behind crash recovery,
//! * [`serve`] — reputation-as-a-service: TCP query/ingest endpoints
//!   over round-atomic snapshots.

pub use dg_core as core;
pub use dg_gossip as gossip;
pub use dg_graph as graph;
pub use dg_p2p as p2p;
pub use dg_serve as serve;
pub use dg_sim as sim;
pub use dg_store as store;
pub use dg_trust as trust;
