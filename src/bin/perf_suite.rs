//! Round-engine performance suite: run the reputation lifecycle on a
//! pinned-seed scenario under both engines and emit a machine-readable
//! `BENCH_<name>.json` report (nodes/round throughput,
//! rounds-to-convergence, wall time). With `--profile` the convergence
//! measurement runs under that network fault profile and the report is
//! written to `BENCH_<profile>.json`.
//!
//! The binary lives in the umbrella package (entry point shared with
//! `dg_bench::perf::suite_main`) so it runs from the workspace root
//! without naming a package:
//!
//! ```text
//! cargo run --release --bin perf_suite            # smoke (5k nodes)
//! cargo run --release --bin perf_suite -- --full  # 20k nodes
//! cargo run --release --bin perf_suite -- --out BENCH_pr.json
//! cargo run --release --bin perf_suite -- --engine parallel
//! cargo run --release --bin perf_suite -- --profile lossy  # BENCH_lossy.json
//! ```
//!
//! CI's `perf-smoke` job uploads the report and gates on
//! `perf_compare` against the committed `crates/bench/BENCH_baseline.json`.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    dg_bench::perf::suite_main()
}
