//! The batched parallel round engine is a pure optimisation: for the
//! same pinned seeds it must produce **exactly** the sequential
//! reference driver's results — same service counters, same reputation
//! means, same per-pair aggregated reputations, same reputation tables —
//! at every thread count.

use differential_gossip::gossip::EngineKind;
use differential_gossip::graph::NodeId;
use differential_gossip::sim::rounds::{
    AggregationMode, AggregationScope, RoundStats, RoundsConfig, RoundsSimulator,
};
use differential_gossip::sim::scenario::{Scenario, ScenarioConfig};
use rayon::ThreadPoolBuilder;

fn scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        nodes: 90,
        seed,
        free_rider_fraction: 0.2,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    })
    .expect("scenario builds")
}

fn run(scenario: &Scenario, config: RoundsConfig) -> (Vec<RoundStats>, RoundsSimulator<'_>) {
    let mut sim = RoundsSimulator::new(scenario, config);
    let mut rng = scenario.gossip_rng(6);
    let stats = sim.run(&mut rng).expect("rounds");
    (stats, sim)
}

fn assert_equivalent(scenario: &Scenario, config: RoundsConfig) {
    let sequential = config.with_engine(EngineKind::Sequential);
    let parallel = config.with_engine(EngineKind::Parallel);
    let (seq_stats, seq_sim) = run(scenario, sequential);

    for threads in [1usize, 2, 8] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let (par_stats, par_sim) = pool.install(|| run(scenario, parallel));
        // Bit-for-bit: RoundStats contains f64 means and PartialEq is
        // exact equality.
        assert_eq!(seq_stats, par_stats, "stats diverged at {threads} threads");
        let n = scenario.graph.node_count() as u32;
        for observer in 0..n {
            for subject in 0..n {
                let (observer, subject) = (NodeId(observer), NodeId(subject));
                assert_eq!(
                    seq_sim.aggregated(observer, subject),
                    par_sim.aggregated(observer, subject),
                    "aggregated({observer}, {subject}) diverged at {threads} threads"
                );
            }
            let observer = NodeId(observer);
            assert_eq!(
                seq_sim.table(observer).iter().collect::<Vec<_>>(),
                par_sim.table(observer).iter().collect::<Vec<_>>(),
                "table of {observer} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn engines_match_bitwise_in_closed_form_full_scope() {
    let s = scenario(41);
    assert_equivalent(
        &s,
        RoundsConfig {
            rounds: 5,
            ..RoundsConfig::default()
        },
    );
}

#[test]
fn engines_match_bitwise_in_neighbourhood_scope() {
    let s = scenario(42);
    assert_equivalent(
        &s,
        RoundsConfig {
            rounds: 5,
            scope: AggregationScope::Neighbourhood,
            ..RoundsConfig::default()
        },
    );
}

#[test]
fn engines_match_bitwise_under_real_gossip_aggregation() {
    let s = Scenario::build(ScenarioConfig {
        nodes: 40,
        seed: 13,
        free_rider_fraction: 0.2,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    })
    .expect("scenario builds");
    assert_equivalent(
        &s,
        RoundsConfig {
            rounds: 3,
            aggregation: AggregationMode::Gossip,
            ..RoundsConfig::default()
        }
        .with_xi(1e-5),
    );
}

#[test]
fn parallel_engine_is_reproducible_across_repeat_runs() {
    let s = scenario(77);
    let config = RoundsConfig {
        rounds: 4,
        ..RoundsConfig::default()
    }
    .with_engine(EngineKind::Parallel);
    let (a, _) = run(&s, config);
    let (b, _) = run(&s, config);
    assert_eq!(a, b);
}
