//! The batched, sharded and incremental round engines are pure
//! optimisations: for the same pinned seeds they must produce
//! **exactly** the sequential reference driver's results — same service
//! counters, same reputation means, same per-pair aggregated
//! reputations, same reputation tables — at every thread count, every
//! shard count, every traffic activity fraction, with and without an
//! adversarial mix.

use differential_gossip::gossip::{AdversaryMix, EngineKind};
use differential_gossip::graph::NodeId;
use differential_gossip::sim::rounds::{
    AggregationMode, AggregationScope, RoundStats, RoundsConfig, RoundsSimulator,
};
use differential_gossip::sim::scenario::{Scenario, ScenarioConfig};
use differential_gossip::sim::workload::TrafficModel;
use differential_gossip::trust::audit::AuditPolicy;
use rayon::ThreadPoolBuilder;

/// Shard counts the sharded engine is pinned at: one shard (the flat
/// degenerate case), more shards than fit evenly — 16 shards over 90
/// nodes leaves trailing shards short — and 64, where most shards own
/// a row or two and the work-stealing scheduler gets real block
/// migration at every tested thread count.
const SHARD_COUNTS: [usize; 3] = [1, 16, 64];

fn scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        nodes: 90,
        seed,
        free_rider_fraction: 0.2,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    })
    .expect("scenario builds")
}

fn run(scenario: &Scenario, config: RoundsConfig) -> (Vec<RoundStats>, RoundsSimulator<'_>) {
    let mut sim = RoundsSimulator::new(scenario, config);
    let mut rng = scenario.gossip_rng(6);
    let stats = sim.run(&mut rng).expect("rounds");
    (stats, sim)
}

fn assert_matches_reference(
    scenario: &Scenario,
    seq_stats: &[RoundStats],
    seq_sim: &RoundsSimulator<'_>,
    config: RoundsConfig,
    threads: usize,
    what: &str,
) {
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    let (stats, sim) = pool.install(|| run(scenario, config));
    // Bit-for-bit: RoundStats contains f64 means and PartialEq is
    // exact equality.
    assert_eq!(seq_stats, stats, "stats diverged: {what} at {threads}t");
    let n = scenario.graph.node_count() as u32;
    for observer in 0..n {
        for subject in 0..n {
            let (observer, subject) = (NodeId(observer), NodeId(subject));
            assert_eq!(
                seq_sim.aggregated(observer, subject),
                sim.aggregated(observer, subject),
                "aggregated({observer}, {subject}) diverged: {what} at {threads}t"
            );
        }
        let observer = NodeId(observer);
        assert_eq!(
            seq_sim.table(observer).iter().collect::<Vec<_>>(),
            sim.table(observer).iter().collect::<Vec<_>>(),
            "table of {observer} diverged: {what} at {threads}t"
        );
    }
}

fn assert_equivalent(scenario: &Scenario, config: RoundsConfig) {
    let (seq_stats, seq_sim) = run(scenario, config.with_engine(EngineKind::Sequential));

    for threads in [1usize, 2, 8] {
        assert_matches_reference(
            scenario,
            &seq_stats,
            &seq_sim,
            config.with_engine(EngineKind::Parallel),
            threads,
            "parallel",
        );
        assert_matches_reference(
            scenario,
            &seq_stats,
            &seq_sim,
            config.with_engine(EngineKind::Incremental),
            threads,
            "incremental",
        );
        for shards in SHARD_COUNTS {
            assert_matches_reference(
                scenario,
                &seq_stats,
                &seq_sim,
                config.with_engine(EngineKind::Sharded).with_shards(shards),
                threads,
                &format!("sharded/{shards}"),
            );
        }
    }
}

#[test]
fn engines_match_bitwise_in_closed_form_full_scope() {
    let s = scenario(41);
    assert_equivalent(
        &s,
        RoundsConfig {
            rounds: 5,
            ..RoundsConfig::default()
        },
    );
}

#[test]
fn engines_match_bitwise_in_neighbourhood_scope() {
    let s = scenario(42);
    assert_equivalent(
        &s,
        RoundsConfig {
            rounds: 5,
            scope: AggregationScope::Neighbourhood,
            ..RoundsConfig::default()
        },
    );
}

#[test]
fn engines_match_bitwise_under_real_gossip_aggregation() {
    let s = Scenario::build(ScenarioConfig {
        nodes: 40,
        seed: 13,
        free_rider_fraction: 0.2,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    })
    .expect("scenario builds");
    assert_equivalent(
        &s,
        RoundsConfig {
            rounds: 3,
            aggregation: AggregationMode::Gossip,
            ..RoundsConfig::default()
        }
        .with_xi(1e-5),
    );
}

#[test]
fn engines_match_bitwise_under_adversary_mix() {
    // A nonzero mix exercising every distortion hook: sybil dormancy,
    // collusion cliques, slander, and the whitewash purge phase.
    let mix = AdversaryMix {
        sybil_fraction: 0.08,
        slander_fraction: 0.06,
        whitewash_fraction: 0.06,
        ..AdversaryMix::collusion()
    }
    .validated()
    .expect("mix is valid");
    let s = Scenario::build(ScenarioConfig {
        nodes: 90,
        seed: 47,
        free_rider_fraction: 0.15,
        quality_range: (0.4, 1.0),
        adversary: mix,
        ..ScenarioConfig::default()
    })
    .expect("scenario builds");
    assert_equivalent(
        &s,
        RoundsConfig {
            rounds: 6,
            scope: AggregationScope::Neighbourhood,
            ..RoundsConfig::default()
        },
    );
}

#[test]
fn engines_match_bitwise_under_skewed_traffic_and_adversaries() {
    // The incremental engine's reason to exist: most rows clean, hubs
    // hot, periodic flash crowds, adversaries distorting round-keyed —
    // and still bit-equal to the rebuild-everything engines at 100%,
    // 10% and 1% mean activity, at every thread and shard count.
    let mix = AdversaryMix {
        sybil_fraction: 0.08,
        slander_fraction: 0.06,
        whitewash_fraction: 0.06,
        ..AdversaryMix::collusion()
    }
    .validated()
    .expect("mix is valid");
    for fraction in [1.0, 0.1, 0.01] {
        let traffic = TrafficModel::full()
            .with_activity(fraction)
            .with_zipf(0.8)
            .with_flash(3, 4.0);
        let s = Scenario::build(ScenarioConfig {
            nodes: 90,
            seed: 23,
            free_rider_fraction: 0.15,
            quality_range: (0.4, 1.0),
            adversary: mix,
            ..ScenarioConfig::default()
        })
        .expect("scenario builds");
        assert_equivalent(
            &s,
            RoundsConfig {
                rounds: 6,
                ..RoundsConfig::default()
            }
            .with_traffic(traffic),
        );
    }
}

#[test]
fn engines_match_bitwise_with_audits_convicting() {
    // The audit phase live end to end: a stealth cartel striking on
    // every spot-check, a hot audit rate so convictions (and the purge
    // they trigger) land inside the run — and every engine still
    // bit-equal to the sequential reference at full and 1% activity,
    // at every thread and shard count.
    let mix = AdversaryMix::stealth().validated().expect("mix is valid");
    let audit = AuditPolicy {
        audit_rate: 0.2,
        ..AuditPolicy::standard()
    };
    for fraction in [1.0, 0.01] {
        let s = Scenario::build(ScenarioConfig {
            nodes: 90,
            seed: 31,
            free_rider_fraction: 0.15,
            quality_range: (0.4, 1.0),
            adversary: mix,
            ..ScenarioConfig::default()
        })
        .expect("scenario builds");
        let config = RoundsConfig {
            rounds: 8,
            ..RoundsConfig::default()
        }
        .with_audit(audit)
        .with_traffic(TrafficModel::full().with_activity(fraction));
        // The row only proves something if the audit machinery actually
        // fires. At full activity that means convictions (and the purge
        // they trigger) land mid-run; at 1% activity cartel members
        // rarely emit a report, so logs stay empty and no strike can
        // accrue — there the live part is the audit sampling itself.
        let (seq_stats, _) = run(&s, config.with_engine(EngineKind::Sequential));
        let audits: u64 = seq_stats.iter().map(|r| r.audits).sum();
        assert!(audits > 0, "no audits ran at activity {fraction}");
        if fraction == 1.0 {
            let convictions: u64 = seq_stats.iter().map(|r| r.convictions).sum();
            assert!(convictions > 0, "no convictions at full activity");
        }
        assert_equivalent(&s, config);
    }
}

#[test]
fn engines_match_bitwise_with_one_hot_shard() {
    // Skew stress for the cost-weighted scheduler: Zipf s = 1.5 over a
    // thin activity fraction concentrates almost all traffic on the
    // lowest node ids — with 16 shards that is ONE hot shard while the
    // rest idle, the exact shape that serialised the old static
    // shard→thread assignment. The weighted stealing schedule must not
    // change a bit of the output.
    let s = scenario(61);
    let traffic = TrafficModel::full()
        .with_activity(0.1)
        .with_zipf(1.5)
        .with_flash(3, 4.0);
    assert_equivalent(
        &s,
        RoundsConfig {
            rounds: 6,
            ..RoundsConfig::default()
        }
        .with_traffic(traffic),
    );
}

#[test]
fn incremental_engine_matches_under_whitewash_purges() {
    // Whitewash-heavy mix at thin traffic: purged rows must be
    // re-emitted from the persistent matrix next round even when their
    // owners stay inactive, or the incremental engine drifts.
    let mix = AdversaryMix {
        whitewash_fraction: 0.12,
        ..AdversaryMix::none()
    }
    .validated()
    .expect("mix is valid");
    let s = Scenario::build(ScenarioConfig {
        nodes: 70,
        seed: 53,
        free_rider_fraction: 0.1,
        quality_range: (0.4, 1.0),
        adversary: mix,
        ..ScenarioConfig::default()
    })
    .expect("scenario builds");
    let config = RoundsConfig {
        rounds: 8,
        ..RoundsConfig::default()
    }
    .with_traffic(TrafficModel::full().with_activity(0.15));
    let (seq_stats, seq_sim) = run(&s, config.with_engine(EngineKind::Sequential));
    assert_matches_reference(
        &s,
        &seq_stats,
        &seq_sim,
        config.with_engine(EngineKind::Incremental),
        4,
        "incremental under whitewash",
    );
}

#[test]
fn sharded_engine_is_reproducible_across_repeat_runs() {
    let s = scenario(77);
    for engine in [
        EngineKind::Parallel,
        EngineKind::Sharded,
        EngineKind::Incremental,
    ] {
        let config = RoundsConfig {
            rounds: 4,
            ..RoundsConfig::default()
        }
        .with_engine(engine)
        .with_shards(4);
        let (a, _) = run(&s, config);
        let (b, _) = run(&s, config);
        assert_eq!(a, b, "{engine:?}");
    }
}

mod steal_order {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // Each engine run is a fresh, timing-dependent steal schedule;
        // a handful of randomized scenarios × the full thread × shard
        // grid re-rolls hundreds of schedules per test run.
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Any steal order at threads {1, 2, 8} × shards {1, 16, 64}
        /// stays bit-identical to the sequential reference, over
        /// randomized seeds, activity fractions and traffic skews
        /// (including past the Zipf s = 1 hot-shard knee).
        #[test]
        fn any_steal_order_is_bit_identical(
            seed in 0u64..1000,
            activity in 0.02f64..1.0,
            zipf in 0.0f64..1.6,
        ) {
            let s = Scenario::build(ScenarioConfig {
                nodes: 48,
                seed,
                free_rider_fraction: 0.2,
                quality_range: (0.4, 1.0),
                ..ScenarioConfig::default()
            })
            .expect("scenario builds");
            let config = RoundsConfig {
                rounds: 3,
                ..RoundsConfig::default()
            }
            .with_traffic(TrafficModel::full().with_activity(activity).with_zipf(zipf));
            let (seq_stats, seq_sim) = run(&s, config.with_engine(EngineKind::Sequential));
            for threads in [1usize, 2, 8] {
                for shards in SHARD_COUNTS {
                    assert_matches_reference(
                        &s,
                        &seq_stats,
                        &seq_sim,
                        config.with_engine(EngineKind::Sharded).with_shards(shards),
                        threads,
                        &format!("steal-order sharded/{shards}"),
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_engine_handles_shard_count_above_node_count() {
    // 40 nodes, 64 shards: most shards own a single row, trailing
    // shards own none. Still bit-equal to the reference.
    let s = Scenario::build(ScenarioConfig {
        nodes: 40,
        seed: 19,
        free_rider_fraction: 0.2,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    })
    .expect("scenario builds");
    let config = RoundsConfig {
        rounds: 3,
        ..RoundsConfig::default()
    };
    let (seq_stats, seq_sim) = run(&s, config.with_engine(EngineKind::Sequential));
    assert_matches_reference(
        &s,
        &seq_stats,
        &seq_sim,
        config.with_engine(EngineKind::Sharded).with_shards(64),
        2,
        "sharded/64 > n",
    );
    assert_matches_reference(
        &s,
        &seq_stats,
        &seq_sim,
        config.with_engine(EngineKind::Incremental).with_shards(64),
        2,
        "incremental/64 > n",
    );
}
