//! The tokio peer deployment and the synchronous engine implement the
//! same protocol: both must converge to the same push-sum limit.

use differential_gossip::gossip::{GossipConfig, GossipPair, ScalarGossip};
use differential_gossip::graph::pa::{preferential_attachment, PaConfig};
use differential_gossip::p2p::{run_distributed, DistributedConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn distributed_and_sync_agree_on_the_limit() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let graph =
        preferential_attachment(PaConfig { nodes: 150, m: 2 }, &mut rng).expect("valid PA config");
    let values: Vec<f64> = (0..150).map(|i| ((i * 37) % 53) as f64 / 53.0).collect();
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let initial: Vec<GossipPair> = values.iter().map(|&v| GossipPair::originator(v)).collect();

    let sync_out = ScalarGossip::average(
        &graph,
        GossipConfig::differential(1e-8).expect("config"),
        &values,
    )
    .expect("engine")
    .run(&mut rng);

    let dist_out = run_distributed(
        &graph,
        DistributedConfig {
            xi: 1e-8,
            seed: 5,
            ..DistributedConfig::default()
        },
        initial,
    )
    .await
    .expect("distributed run");

    assert!(sync_out.converged, "sync did not converge");
    assert!(dist_out.converged, "distributed did not converge");
    // Different random schedules, same limit.
    assert!(sync_out.max_error(mean) < 1e-4);
    let dist_worst = dist_out
        .estimates
        .iter()
        .map(|e| (e - mean).abs())
        .fold(0.0f64, f64::max);
    assert!(dist_worst < 1e-4, "distributed worst error {dist_worst}");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn distributed_single_originator_sum_mode() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let graph =
        preferential_attachment(PaConfig { nodes: 80, m: 2 }, &mut rng).expect("valid PA config");
    // Sum mode: node 5 carries the unit weight; nodes 5, 9, 20 carry
    // feedback values; the limit is their sum 1.1.
    let mut initial = vec![GossipPair::ZERO; 80];
    initial[5] = GossipPair::originator(0.2);
    initial[9] = GossipPair {
        value: 0.5,
        weight: 0.0,
    };
    initial[20] = GossipPair {
        value: 0.4,
        weight: 0.0,
    };

    let out = run_distributed(
        &graph,
        DistributedConfig {
            xi: 1e-9,
            seed: 17,
            max_rounds: 50_000,
            ..Default::default()
        },
        initial,
    )
    .await
    .expect("distributed run");
    assert!(out.converged);
    for (i, e) in out.estimates.iter().enumerate() {
        assert!((e - 1.1).abs() < 1e-3, "peer {i}: {e}");
    }
}

#[tokio::test]
async fn distributed_mass_conservation_holds_mid_run() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let graph =
        preferential_attachment(PaConfig { nodes: 60, m: 2 }, &mut rng).expect("valid PA config");
    let values: Vec<f64> = (0..60).map(|i| i as f64).collect();
    let total: f64 = values.iter().sum();
    let initial: Vec<GossipPair> = values.iter().map(|&v| GossipPair::originator(v)).collect();

    // Deliberately non-converging tolerance with a small round budget.
    let out = run_distributed(
        &graph,
        DistributedConfig {
            xi: 1e-15,
            seed: 2,
            max_rounds: 40,
            ..Default::default()
        },
        initial,
    )
    .await
    .expect("distributed run");
    let mass: f64 = out.pairs.iter().map(|p| p.value).sum();
    let weight: f64 = out.pairs.iter().map(|p| p.weight).sum();
    assert!((mass - total).abs() < 1e-9);
    assert!((weight - 60.0).abs() < 1e-9);
}
