//! The serving layer's torn-read-proof keystone suite.
//!
//! `dg-serve` promises two things (`docs/SERVING.md`):
//!
//! * **Round-atomic reads.** Every query response is answered from one
//!   completed round's coherent snapshot and carries that round's
//!   number; concurrent readers may be up to one round stale but can
//!   never observe a torn mix of two rounds. Proven here by hammering
//!   a live server from concurrent clients while the engine advances,
//!   then bit-matching every single response against a reference
//!   [`RunSession`] replay of the same config at the response's round.
//! * **Ingest-replay determinism.** The run is a pure function of the
//!   accepted-report set: arrival order, engine choice and the wire
//!   path itself change nothing. Proven by folding one ingest log
//!   through all four engines (and once through a real TCP server) and
//!   comparing stats and reputations bit for bit.
//!
//! Plus the backpressure contract (a full ingest channel answers
//! `Busy`, every shed is counted, nothing blocks or disappears
//! silently) and the `RoundStats` wire-compat guarantee (reports
//! written before the ingest counters existed still deserialize).

use differential_gossip::gossip::EngineKind;
use differential_gossip::graph::NodeId;
use differential_gossip::serve::{Client, Request, Response, ServeOptions, Server};
use differential_gossip::sim::{IngestReport, RunConfig, RunSession, ServeSession};
use differential_gossip::trust::prelude::TransactionOutcome;
use differential_gossip::trust::ReputationSnapshot;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn config(nodes: usize, rounds: usize, seed: u64) -> RunConfig {
    RunConfig {
        nodes,
        rounds,
        seed,
        ..RunConfig::default()
    }
}

/// The per-round reference views of a config: `reference[r]` is the
/// snapshot a correct server must answer round-`r` queries from,
/// computed from scratch by an independent [`RunSession`] replay.
fn reference_snapshots(config: RunConfig, rounds: usize) -> Vec<ReputationSnapshot> {
    let mut session = RunSession::new(config).expect("reference session builds");
    let mut reference = vec![ReputationSnapshot::empty(config.nodes)];
    for r in 1..=rounds {
        session.run_to(r).expect("reference rounds run");
        reference.push(ReputationSnapshot::build(
            r as u64,
            session.subject_mean_reputations(),
        ));
    }
    reference
}

fn bits(x: Option<f64>) -> Option<u64> {
    x.map(f64::to_bits)
}

/// What one reader observed in one response, kept for post-hoc
/// validation against the reference replay.
enum Observation {
    Reputation(u64, u32, Option<f64>),
    TopK(u64, Vec<(u32, f64)>),
    Percentile(u64, Option<f64>),
}

/// Tentpole proof: concurrent readers over a live server never observe
/// a torn round. Every response carries a round number and must
/// bit-match the reference replay **at that round**; per connection the
/// observed rounds never move backwards.
#[test]
fn concurrent_readers_never_observe_torn_rounds() {
    const NODES: usize = 48;
    const ROUNDS: usize = 5;
    const READERS: usize = 4;
    let cfg = config(NODES, ROUNDS, 7);
    let reference = reference_snapshots(cfg, ROUNDS);

    let mut server = Server::start(cfg, ServeOptions::default()).expect("server starts");
    let addr = server.local_addr();
    let stop = AtomicBool::new(false);

    let observations: Vec<Vec<Observation>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..READERS)
            .map(|reader| {
                let stop = &stop;
                s.spawn(move || {
                    let mut client = Client::connect(addr, reader as u64).expect("client connects");
                    let mut seen = Vec::new();
                    let mut last_round = 0u64;
                    let mut subject = reader as u32;
                    while !stop.load(Ordering::Acquire) {
                        let round = match client.reputation(subject).expect("query answers") {
                            Response::Reputation { round, reputation } => {
                                seen.push(Observation::Reputation(round, subject, reputation));
                                round
                            }
                            other => panic!("unexpected response {other:?}"),
                        };
                        // Rounds move forward only, per connection.
                        assert!(round >= last_round, "round went backwards");
                        last_round = round;
                        subject = (subject + READERS as u32 + 1) % NODES as u32;
                        match client.top_k(8).expect("query answers") {
                            Response::TopK { round, entries } => {
                                seen.push(Observation::TopK(round, entries));
                            }
                            other => panic!("unexpected response {other:?}"),
                        }
                        match client.percentile(0.5).expect("query answers") {
                            Response::Percentile { round, value } => {
                                seen.push(Observation::Percentile(round, value));
                            }
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                    seen
                })
            })
            .collect();

        for _ in 0..ROUNDS {
            // Let the readers interleave with the publish.
            std::thread::sleep(Duration::from_millis(5));
            server.run_round().expect("round runs");
        }
        std::thread::sleep(Duration::from_millis(5));
        stop.store(true, Ordering::Release);
        handles
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect()
    });

    let mut checked = 0usize;
    for seen in &observations {
        assert!(!seen.is_empty(), "a reader observed nothing");
        for obs in seen {
            checked += 1;
            match obs {
                Observation::Reputation(round, subject, rep) => {
                    let want = &reference[*round as usize];
                    assert_eq!(
                        bits(*rep),
                        bits(want.reputation(NodeId(*subject))),
                        "reputation({subject}) torn at round {round}"
                    );
                }
                Observation::TopK(round, entries) => {
                    let want: Vec<(u32, u64)> = reference[*round as usize]
                        .top_k(8)
                        .into_iter()
                        .map(|(id, rep)| (id.0, rep.to_bits()))
                        .collect();
                    let got: Vec<(u32, u64)> = entries
                        .iter()
                        .map(|&(id, rep)| (id, rep.to_bits()))
                        .collect();
                    assert_eq!(got, want, "top_k torn at round {round}");
                }
                Observation::Percentile(round, value) => {
                    assert_eq!(
                        bits(*value),
                        bits(reference[*round as usize].percentile(0.5)),
                        "percentile torn at round {round}"
                    );
                }
            }
        }
    }
    // The loop above must have validated real concurrent traffic.
    assert!(checked > READERS * 3, "too few observations: {checked}");
}

/// A small deterministic ingest log: the reports accepted into round
/// `round + 1`'s buffer (requesters/providers inside `nodes`).
fn ingest_log(round: usize, nodes: usize) -> Vec<IngestReport> {
    let n = nodes as u32;
    let r = round as u64;
    let mk = |from: u64, seq: u64, req: u32, prov: u32, outcome| IngestReport {
        from,
        seq,
        requester: NodeId(req % n),
        provider: NodeId(prov % n),
        outcome,
    };
    vec![
        mk(
            1,
            2 * r,
            3 + round as u32,
            7,
            TransactionOutcome::Served { quality: 0.9 },
        ),
        mk(
            1,
            2 * r + 1,
            11,
            3 + round as u32,
            TransactionOutcome::Refused,
        ),
        mk(
            2,
            r,
            5,
            2 + round as u32,
            TransactionOutcome::Served { quality: 0.25 },
        ),
        mk(
            9,
            r,
            3 + round as u32,
            9,
            TransactionOutcome::Served { quality: 0.5 },
        ),
    ]
    .into_iter()
    .filter(|rep| rep.requester != rep.provider)
    .collect()
}

/// Fold the log through a [`ServeSession`] on `engine`; return the
/// stats JSON and the final snapshot's reputation bits.
fn replay_on(engine: EngineKind, nodes: usize, rounds: usize) -> (String, Vec<Option<u64>>) {
    let cfg = RunConfig {
        engine,
        ..config(nodes, rounds, 23)
    };
    let mut serve = ServeSession::new(cfg).expect("session builds");
    for round in 0..rounds {
        for report in ingest_log(round, nodes) {
            serve.ingest(report).expect("valid report");
        }
        serve.run_round().expect("round runs");
    }
    let stats = serde_json::to_string(serve.session().stats()).expect("stats serialize");
    let snap = serve.snapshots().load();
    let reps = (0..nodes as u32)
        .map(|i| snap.reputation(NodeId(i)).map(f64::to_bits))
        .collect();
    (stats, reps)
}

/// Satellite: replaying one ingest log is bit-identical across all four
/// engines — the interleaving contract (`queue_reports` appends each
/// requester's ingested records after its generated ones) holds
/// everywhere, stats included.
#[test]
fn ingest_replay_is_bit_identical_across_engines() {
    const NODES: usize = 64;
    const ROUNDS: usize = 3;
    let reference = replay_on(EngineKind::Sequential, NODES, ROUNDS);
    for engine in [
        EngineKind::Parallel,
        EngineKind::Sharded,
        EngineKind::Incremental,
    ] {
        let candidate = replay_on(engine, NODES, ROUNDS);
        assert_eq!(reference.0, candidate.0, "stats diverged under {engine:?}");
        assert_eq!(
            reference.1, candidate.1,
            "reputations diverged under {engine:?}"
        );
    }
}

/// Satellite: the wire path is the same function — submitting the same
/// log through a real TCP server (and querying the results back over
/// the wire) matches the in-process replay bit for bit.
#[test]
fn wire_ingest_matches_in_process_replay() {
    const NODES: usize = 64;
    const ROUNDS: usize = 3;
    let (_, reference) = replay_on(EngineKind::Sequential, NODES, ROUNDS);

    let mut server =
        Server::start(config(NODES, ROUNDS, 23), ServeOptions::default()).expect("server starts");
    let mut client = Client::connect(server.local_addr(), 99).expect("client connects");
    for round in 0..ROUNDS {
        for rep in ingest_log(round, NODES) {
            // Submit with the log's own replay tag, not the client's.
            let response = client
                .call(&Request::Ingest {
                    source: rep.from,
                    seq: rep.seq,
                    requester: rep.requester.0,
                    provider: rep.provider.0,
                    outcome: rep.outcome,
                })
                .expect("ingest answers");
            assert!(
                matches!(response, Response::IngestAccepted { .. }),
                "unexpected response {response:?}"
            );
        }
        // `call` is synchronous, so every accepted report is already in
        // the channel when the round is driven.
        server.run_round().expect("round runs");
    }
    for subject in 0..NODES as u32 {
        match client.reputation(subject).expect("query answers") {
            Response::Reputation { round, reputation } => {
                assert_eq!(round, ROUNDS as u64);
                assert_eq!(
                    bits(reputation),
                    reference[subject as usize],
                    "subject {subject} diverged over the wire"
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}

/// Satellite: backpressure is typed and accounted. A full ingest
/// channel answers `Busy` for exactly the overflow, queries stay
/// answerable throughout, and the next round's stats carry both the
/// accepted and the shed counts.
#[test]
fn full_ingest_channel_sheds_with_busy_and_counts() {
    const CAPACITY: usize = 4;
    const SUBMITTED: u32 = 10;
    let mut server = Server::start(
        config(16, 4, 5),
        ServeOptions {
            ingest_capacity: CAPACITY,
            ..ServeOptions::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(server.local_addr(), 0).expect("client connects");

    let mut accepted = 0u64;
    let mut busy = 0u64;
    for i in 0..SUBMITTED {
        let provider = 1 + (i + 1) % 15;
        match client
            .ingest(0, provider, TransactionOutcome::Served { quality: 0.5 })
            .expect("ingest answers")
        {
            Response::IngestAccepted { .. } => accepted += 1,
            Response::Busy => busy += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    // The client is synchronous and nothing drains between submissions:
    // exactly the channel capacity is accepted, the rest shed.
    assert_eq!(accepted, CAPACITY as u64);
    assert_eq!(busy, (SUBMITTED as usize - CAPACITY) as u64);

    // Queries are never busy, even with the ingest channel full.
    assert!(matches!(
        client.reputation(3).expect("query answers"),
        Response::Reputation { .. }
    ));

    let stats = server.run_round().expect("round runs");
    assert_eq!(stats.ingested_reports, accepted);
    assert_eq!(stats.ingest_shed, busy);

    // The channel drained: the next submission is accepted again, and
    // a round with no ingest reports zero on both counters.
    assert!(matches!(
        client
            .ingest(0, 3, TransactionOutcome::Refused)
            .expect("ingest answers"),
        Response::IngestAccepted { .. }
    ));
    let stats = server.run_round().expect("round runs");
    assert_eq!(stats.ingested_reports, 1);
    assert_eq!(stats.ingest_shed, 0);
}

/// Satellite: invalid ingest is rejected at the wire with a typed
/// error, not accepted and not shed.
#[test]
fn wire_rejects_invalid_ingest() {
    let mut server =
        Server::start(config(16, 2, 5), ServeOptions::default()).expect("server starts");
    let mut client = Client::connect(server.local_addr(), 0).expect("client connects");
    for (requester, provider) in [(16, 2), (3, 16), (3, 3)] {
        assert!(matches!(
            client
                .ingest(requester, provider, TransactionOutcome::Refused)
                .expect("ingest answers"),
            Response::Error { .. }
        ));
    }
    let stats = server.run_round().expect("round runs");
    assert_eq!(stats.ingested_reports, 0);
    assert_eq!(stats.ingest_shed, 0);
}

/// Satellite: `RoundStats` written before the ingest counters existed
/// (no `ingested_reports` / `ingest_shed` members) still deserialize,
/// with both counters defaulting to zero and every other field intact.
#[test]
fn legacy_round_stats_json_deserializes_with_zero_ingest_counters() {
    use differential_gossip::sim::rounds::RoundStats;
    use serde_json::Value;

    let mut serve = ServeSession::new(config(16, 1, 3)).expect("session builds");
    serve
        .ingest(IngestReport {
            from: 0,
            seq: 0,
            requester: NodeId(1),
            provider: NodeId(2),
            outcome: TransactionOutcome::Served { quality: 0.5 },
        })
        .expect("valid report");
    serve.note_shed(3);
    serve.run_round().expect("round runs");
    let modern = serve.session().stats()[0].clone();
    assert_eq!(modern.ingested_reports, 1);
    assert_eq!(modern.ingest_shed, 3);

    // Strip the two new members, as a pre-serve writer would have.
    let mut value = serde_json::to_value(&modern);
    match &mut value {
        Value::Object(members) => {
            let before = members.len();
            members.retain(|(k, _)| k != "ingested_reports" && k != "ingest_shed");
            assert_eq!(members.len(), before - 2, "fields were not present");
        }
        other => panic!("stats serialized as {other:?}"),
    }
    let legacy_json = serde_json::to_string(&value).expect("legacy JSON builds");
    let parsed: RoundStats = serde_json::from_str(&legacy_json).expect("legacy JSON parses");
    assert_eq!(parsed.ingested_reports, 0);
    assert_eq!(parsed.ingest_shed, 0);
    let mut zeroed = modern;
    zeroed.ingested_reports = 0;
    zeroed.ingest_shed = 0;
    assert_eq!(parsed, zeroed, "other fields must survive unchanged");
}

/// One reader's record of a loaded snapshot: round plus the answers a
/// client could derive from it.
type SnapshotProbe = (u64, Option<u64>, Vec<(u32, u64)>, Option<u64>);

fn probe(snap: &ReputationSnapshot, subject: u32) -> SnapshotProbe {
    (
        snap.round(),
        bits(snap.reputation(NodeId(subject))),
        snap.top_k(5)
            .into_iter()
            .map(|(id, rep)| (id.0, rep.to_bits()))
            .collect(),
        bits(snap.percentile(0.5)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: the double-buffer swap, pinned under random
    /// interleavings. Reader threads (2 or 8) spin `load()`ing the
    /// cell while the session publishes rounds; every loaded snapshot's
    /// answers must agree with a from-scratch computation of that round
    /// — the incremental rank index included, checked whole at the end.
    #[test]
    fn double_buffered_snapshots_agree_with_from_scratch(
        nodes in 12usize..40,
        seed in 0u64..500,
        rounds in 1usize..4,
        wide_pool in 0usize..2,
    ) {
        // The vendored proptest has no value-set strategy: derive the
        // reader count {2, 8} from a flag instead.
        let readers = if wide_pool == 1 { 8usize } else { 2 };
        let cfg = config(nodes, rounds, seed);
        let reference = reference_snapshots(cfg, rounds);

        let mut serve = ServeSession::new(cfg).expect("session builds");
        let cell = serve.snapshots();
        let stop = AtomicBool::new(false);
        let probes: Vec<Vec<SnapshotProbe>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..readers)
                .map(|reader| {
                    let cell = &cell;
                    let stop = &stop;
                    let subject = (reader % nodes) as u32;
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        let mut last_round = 0u64;
                        while !stop.load(Ordering::Acquire) {
                            let snap = cell.load();
                            // Record each published round once per
                            // reader: a snapshot is an immutable Arc,
                            // so re-probing the same one adds nothing.
                            if seen.is_empty() || snap.round() != last_round {
                                assert!(snap.round() >= last_round);
                                last_round = snap.round();
                                seen.push(probe(&snap, subject));
                            }
                        }
                        seen
                    })
                })
                .collect();
            for _ in 0..rounds {
                serve.run_round().expect("round runs");
                std::thread::sleep(Duration::from_micros(300));
            }
            stop.store(true, Ordering::Release);
            handles.into_iter().map(|h| h.join().expect("reader")).collect()
        });

        for (reader, seen) in probes.iter().enumerate() {
            prop_assert!(!seen.is_empty(), "reader {reader} observed nothing");
            let subject = (reader % nodes) as u32;
            for (round, rep, topk, pct) in seen {
                let want = &reference[*round as usize];
                prop_assert_eq!(*rep, bits(want.reputation(NodeId(subject))));
                let want_topk: Vec<(u32, u64)> = want
                    .top_k(5)
                    .into_iter()
                    .map(|(id, r)| (id.0, r.to_bits()))
                    .collect();
                prop_assert_eq!(topk.clone(), want_topk);
                prop_assert_eq!(*pct, bits(want.percentile(0.5)));
            }
        }

        // The final published snapshot's whole rank index (built
        // incrementally, round over round) matches the from-scratch
        // build: full ordering, not just the probed prefix.
        let final_snap = cell.load();
        prop_assert_eq!(final_snap.round(), rounds as u64);
        let got: Vec<(u32, u64)> = final_snap
            .top_k(nodes)
            .into_iter()
            .map(|(id, rep)| (id.0, rep.to_bits()))
            .collect();
        let want: Vec<(u32, u64)> = reference[rounds]
            .top_k(nodes)
            .into_iter()
            .map(|(id, rep)| (id.0, rep.to_bits()))
            .collect();
        prop_assert_eq!(got, want);
    }
}
