//! The paper's headline claims, asserted as integration tests (small-N
//! versions of the Section 5 evaluation; the bench binaries run the full
//! grids).

use differential_gossip::gossip::spread::{self, SpreadProtocol};
use differential_gossip::gossip::FanoutPolicy;
use differential_gossip::graph::NodeId;
use differential_gossip::sim::experiments::{
    collusion_experiment, loss_experiment, steps_experiment,
};

const POLICIES: [FanoutPolicy; 2] = [FanoutPolicy::Differential, FanoutPolicy::Uniform(1)];

#[test]
fn differential_step_counts_grow_slower_than_push() {
    let rows = steps_experiment(&[100, 400, 1600], &[1e-4], &POLICIES, 12).expect("sweep");
    let steps = |n: usize, policy: &str| {
        rows.iter()
            .find(|r| r.nodes == n && r.policy == policy)
            .expect("row")
            .steps as f64
    };
    // Growth factor from 100 to 1600 nodes.
    let diff_growth = steps(1600, "differential") / steps(100, "differential");
    let push_growth = steps(1600, "push") / steps(100, "push");
    assert!(
        diff_growth < push_growth,
        "differential grew {diff_growth}x, push {push_growth}x"
    );
    // Differential stays polylogarithmic-ish: under (log2 N)^2 + slack.
    let log2n = (1600f64).log2();
    assert!(steps(1600, "differential") < 2.0 * log2n * log2n);
}

#[test]
fn differential_wins_total_communication_beyond_1000_nodes() {
    // The paper's accounting: every node pushes each step until the round
    // ends, so the round cost is steps x msgs/node/step. Averaged over
    // three topology seeds (individual instances are noisy).
    let total = |policy: &str| -> f64 {
        [5u64, 6, 7]
            .iter()
            .map(|&seed| {
                steps_experiment(&[2000], &[1e-5], &POLICIES, seed)
                    .expect("sweep")
                    .iter()
                    .find(|r| r.policy == policy)
                    .expect("row")
                    .msgs_per_node_no_quiesce
            })
            .sum::<f64>()
            / 3.0
    };
    assert!(
        total("differential") < total("push"),
        "differential {} vs push {}",
        total("differential"),
        total("push")
    );
}

#[test]
fn message_rate_sits_in_the_table2_band() {
    let rows =
        steps_experiment(&[1000], &[1e-3, 1e-5], &[FanoutPolicy::Differential], 8).expect("sweep");
    for r in &rows {
        assert!(
            (1.0..1.5).contains(&r.msgs_per_node_per_step),
            "xi {}: rate {}",
            r.xi,
            r.msgs_per_node_per_step
        );
    }
    // Tighter tolerance amortises the startup overhead: rate must not rise.
    let loose = rows.iter().find(|r| r.xi == 1e-3).expect("row");
    let tight = rows.iter().find(|r| r.xi == 1e-5).expect("row");
    assert!(tight.msgs_per_node_per_step <= loose.msgs_per_node_per_step + 0.02);
}

#[test]
fn packet_loss_costs_only_a_modest_step_increment() {
    let rows = loss_experiment(800, &[1e-3], &[0.0, 0.1, 0.3], 21).expect("sweep");
    let steps = |loss: f64| rows.iter().find(|r| r.loss == loss).expect("row").steps as f64;
    assert!(steps(0.1) >= steps(0.0));
    // Even 30% loss stays within a small multiple (Fig. 4's "small
    // increment").
    assert!(
        steps(0.3) < 3.0 * steps(0.0),
        "loss 0.3 took {}x the clean steps",
        steps(0.3) / steps(0.0)
    );
    assert!(rows.iter().all(|r| r.converged));
}

#[test]
fn collusion_error_grows_smoothly_and_group_size_is_minor() {
    let rows = collusion_experiment(200, &[0.1, 0.4, 0.7], &[2, 10], 31).expect("sweep");
    // Errors grow with colluder fraction...
    for &g in &[2usize, 10] {
        let err = |pct: f64| {
            rows.iter()
                .find(|r| (r.colluder_pct - pct).abs() < 1e-9 && r.group_size == g)
                .expect("row")
                .rms_gclr
        };
        assert!(err(10.0) < err(40.0) && err(40.0) < err(70.0), "G={g}");
    }
    // ...while group size changes little at fixed fraction.
    for &pct in &[10.0, 40.0, 70.0] {
        let e2 = rows
            .iter()
            .find(|r| (r.colluder_pct - pct).abs() < 1e-9 && r.group_size == 2)
            .expect("row")
            .rms_gclr;
        let e10 = rows
            .iter()
            .find(|r| (r.colluder_pct - pct).abs() < 1e-9 && r.group_size == 10)
            .expect("row")
            .rms_gclr;
        let ratio = (e2 / e10).max(e10 / e2);
        assert!(
            ratio < 1.6,
            "group size effect too large at {pct}%: {ratio}"
        );
    }
    // And the weighted estimate never does meaningfully worse than the
    // global one. At the smallest fraction with large groups (10% in
    // groups of 10 → only ~2 groups in a 200-node network) the metric is
    // dominated by realization noise and the two estimates sit within a
    // few percent of each other, so the slack is 10%; at the fractions
    // that matter (40%, 70%) the weighted estimate wins by a clear margin
    // (checked exactly below).
    for r in &rows {
        assert!(
            r.rms_gclr <= r.rms_global * 1.10 + 1e-9,
            "pct {} G {}: gclr {} vs global {}",
            r.colluder_pct,
            r.group_size,
            r.rms_gclr,
            r.rms_global
        );
        if r.colluder_pct >= 40.0 {
            assert!(
                r.rms_gclr < r.rms_global,
                "pct {} G {}: weighted estimate should win under heavy collusion",
                r.colluder_pct,
                r.group_size
            );
        }
    }
}

#[test]
fn rumor_spreading_matches_theorem_5_1_ordering() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
    use rand::SeedableRng as _;
    let graph = differential_gossip::graph::pa::preferential_attachment(
        differential_gossip::graph::pa::PaConfig { nodes: 1500, m: 2 },
        &mut rng,
    )
    .expect("valid config");
    let avg = |protocol: SpreadProtocol, seeds: std::ops::Range<u64>| -> f64 {
        let n = seeds.end - seeds.start;
        seeds
            .map(|s| {
                let mut r = rand_chacha::ChaCha8Rng::seed_from_u64(s);
                spread::spread(&graph, protocol, NodeId(0), 100_000, &mut r)
                    .expect("spread")
                    .steps as f64
            })
            .sum::<f64>()
            / n as f64
    };
    let push = avg(SpreadProtocol::Push, 0..6);
    let push_pull = avg(SpreadProtocol::PushPull, 0..6);
    let differential = avg(SpreadProtocol::DifferentialPush, 0..6);
    // Differential-push beats plain push and tracks push-pull's order of
    // magnitude (Theorem 5.1 equalises the big-O, not the constant —
    // pull from hubs is extremely effective on PA graphs).
    assert!(
        differential <= push,
        "differential {differential} vs push {push}"
    );
    assert!(
        differential <= 4.0 * push_pull,
        "differential {differential} vs push-pull {push_pull}"
    );
}
