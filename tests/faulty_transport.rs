//! Faulty-network runtime pins: a zero-fault `FaultyNetwork` is
//! bit-identical to the reliable transport, pinned-seed faulty runs are
//! reproducible, 100 % loss degrades gracefully, and the mass ledger
//! closes exactly.

use differential_gossip::gossip::profile::NetworkProfile;
use differential_gossip::gossip::GossipPair;
use differential_gossip::graph::pa::{preferential_attachment, PaConfig};
use differential_gossip::graph::Graph;
use differential_gossip::p2p::{
    run_distributed, run_with_transport, DistributedConfig, DistributedOutcome, FaultyNetwork,
    Network,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn pa_graph(nodes: usize, m: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    preferential_attachment(PaConfig { nodes, m }, &mut rng).expect("valid PA config")
}

fn averaging_initial(n: usize, seed: u64) -> Vec<GossipPair> {
    (0..n)
        .map(|i| GossipPair::originator(((i as u64 * 31 + seed) % 97) as f64 / 97.0))
        .collect()
}

fn runtime() -> tokio::runtime::Runtime {
    tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .build()
        .expect("runtime")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `FaultyTransport` with loss = 0, delay = 0, churn = 0 is
    /// bit-identical to the reliable transport on random topologies.
    #[test]
    fn zero_fault_transport_is_bit_identical_to_reliable(
        nodes in 8usize..40,
        m in 1usize..3,
        graph_seed in 0u64..1000,
        run_seed in 0u64..1000,
    ) {
        let graph = pa_graph(nodes, m, graph_seed);
        let initial = averaging_initial(nodes, graph_seed);
        let config = DistributedConfig {
            xi: 1e-5,
            seed: run_seed,
            max_rounds: 2_000,
            ..DistributedConfig::default()
        };
        let rt = runtime();
        let reliable = rt
            .block_on(run_with_transport(
                &graph,
                config,
                initial.clone(),
                Network::new(nodes),
            ))
            .expect("reliable run");
        let faulty_lossless = rt
            .block_on(run_with_transport(
                &graph,
                config,
                initial,
                FaultyNetwork::new(
                    nodes,
                    NetworkProfile::lossless(),
                    config.seed,
                    config.max_rounds as u64,
                ),
            ))
            .expect("faulty run");
        prop_assert_eq!(reliable, faulty_lossless);
    }
}

/// The acceptance pin: two runs of the same faulty profile on the same
/// seed produce identical convergence results — rounds, estimates, pairs
/// and ledger, bit for bit.
#[test]
fn pinned_seed_faulty_runs_are_identical() {
    let graph = pa_graph(100, 2, 12);
    let run = |profile: NetworkProfile| -> DistributedOutcome {
        runtime()
            .block_on(run_distributed(
                &graph,
                DistributedConfig {
                    xi: 1e-4,
                    seed: 77,
                    max_rounds: 3_000,
                    profile,
                    ..DistributedConfig::default()
                },
                averaging_initial(100, 12),
            ))
            .expect("faulty run")
    };
    for profile in [
        NetworkProfile::lossy(),
        NetworkProfile::partitioned(),
        NetworkProfile::churning(),
    ] {
        let a = run(profile);
        let b = run(profile);
        assert_eq!(a, b, "profile {} not reproducible", profile.label());
    }
}

/// 100 % loss with detection: every push bounces, nobody ever hears a
/// neighbour, the run terminates at the round cap and reports
/// non-convergence — with all mass conserved (every share re-credited).
#[test]
fn total_loss_with_detection_terminates_at_cap() {
    let graph = pa_graph(20, 2, 3);
    let initial = averaging_initial(20, 3);
    let total: GossipPair = initial.iter().copied().sum();
    let mut profile = NetworkProfile::lossless();
    profile.loss = 1.0;
    let out = runtime()
        .block_on(run_distributed(
            &graph,
            DistributedConfig {
                xi: 1e-4,
                seed: 5,
                max_rounds: 50,
                profile,
                ..DistributedConfig::default()
            },
            initial,
        ))
        .expect("run");
    assert_eq!(out.rounds, 50, "must exhaust the round cap");
    assert!(!out.converged, "total blackout cannot converge");
    assert!(out.ledger.shares_recredited > 0);
    assert!(out.ledger.lost.is_zero(), "detection conserves mass");
    let mass = out.total_pair();
    assert!((mass.value - total.value).abs() < 1e-9);
    assert!((mass.weight - total.weight).abs() < 1e-9);
}

/// 100 % undetected (UDP-like) loss: the run still terminates at the cap
/// and reports non-convergence, and the ledger accounts for every drop —
/// final mass = initial − lost.
#[test]
fn total_undetected_loss_surfaces_destroyed_mass() {
    let graph = pa_graph(20, 2, 3);
    let initial = averaging_initial(20, 3);
    let total: GossipPair = initial.iter().copied().sum();
    let mut profile = NetworkProfile::lossless();
    profile.loss = 1.0;
    profile.detect_loss = false;
    let out = runtime()
        .block_on(run_distributed(
            &graph,
            DistributedConfig {
                xi: 1e-4,
                seed: 5,
                max_rounds: 50,
                profile,
                ..DistributedConfig::default()
            },
            initial,
        ))
        .expect("run");
    assert_eq!(out.rounds, 50);
    assert!(!out.converged);
    assert!(out.ledger.shares_lost > 0);
    let mass = out.total_pair();
    let expected = out.ledger.expected_total(total);
    assert!(
        (mass.value - expected.value).abs() < 1e-9,
        "ledger must close: {} vs {}",
        mass.value,
        expected.value
    );
    assert!((mass.weight - expected.weight).abs() < 1e-9);
}

/// A partition delays convergence but heals: the run converges after the
/// window and both halves agree on the global mean.
#[test]
fn partitioned_network_heals_and_converges() {
    let graph = pa_graph(80, 2, 9);
    let initial = averaging_initial(80, 9);
    let mean = initial.iter().map(|p| p.value).sum::<f64>() / 80.0;
    let out = runtime()
        .block_on(run_distributed(
            &graph,
            DistributedConfig {
                xi: 1e-5,
                seed: 33,
                max_rounds: 5_000,
                profile: NetworkProfile::partitioned(),
                ..DistributedConfig::default()
            },
            initial,
        ))
        .expect("run");
    assert!(out.converged, "partition must heal within the cap");
    let window = NetworkProfile::partitioned().partition.expect("preset");
    assert!(
        out.rounds as u64 >= window.until_round,
        "cannot converge while cut ({} rounds)",
        out.rounds
    );
    for (i, e) in out.estimates.iter().enumerate() {
        assert!((e - mean).abs() < 1e-2, "peer {i}: {e} vs {mean}");
    }
}

/// Churn keeps the run reproducible and mass-conserving (crashed nodes
/// retain their pairs; blackout drops bounce back to senders).
#[test]
fn churning_network_conserves_mass() {
    let graph = pa_graph(60, 2, 4);
    let initial = averaging_initial(60, 4);
    let total: GossipPair = initial.iter().copied().sum();
    let out = runtime()
        .block_on(run_distributed(
            &graph,
            DistributedConfig {
                xi: 1e-4,
                seed: 13,
                max_rounds: 4_000,
                profile: NetworkProfile::churning(),
                ..DistributedConfig::default()
            },
            initial,
        ))
        .expect("run");
    let mass = out.total_pair();
    let expected = out.ledger.expected_total(total);
    assert!((mass.value - expected.value).abs() < 1e-9);
    assert!((mass.weight - expected.weight).abs() < 1e-9);
}
