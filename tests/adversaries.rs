//! Adversary-subsystem invariants.
//!
//! 1. **Determinism** — the same `(seed, mix, defense)` triple replays
//!    the attack bit-for-bit (per-adversary ChaCha8 streams).
//! 2. **Zero-adversary neutrality** — a mix with all fractions at zero
//!    (whatever its structural knobs say) is bit-identical to the plain
//!    honest run: the adversary plumbing costs nothing when unused.
//! 3. **Engine equivalence** — attacks produce identical results under
//!    the sequential reference driver, the batched parallel engine and
//!    the sharded engine (several shard counts), with and without the
//!    defense policy.
//! 4. **Defenses act** — the robust-aggregation / zero-prior knobs
//!    measurably reduce what attacks extract or distort.
//! 5. **Stealth evasion and its countermeasure** — a within-bounds
//!    cartel provably beats clamp + trim (the honest network's view
//!    moves past the deviation bound the defense is supposed to hold),
//!    while the seeded audit layer convicts deterministically, never
//!    touches an honest node, and vanishes bitwise at rate zero.

use differential_gossip::core::behavior::Behavior;
use differential_gossip::gossip::{AdversaryMix, EngineKind};
use differential_gossip::graph::NodeId;
use differential_gossip::sim::rounds::{DefensePolicy, RoundStats, RoundsConfig, RoundsSimulator};
use differential_gossip::sim::scenario::{Scenario, ScenarioConfig};
use differential_gossip::trust::audit::AuditPolicy;
use proptest::prelude::*;

fn scenario_config(seed: u64, mix: AdversaryMix) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 120,
        seed,
        free_rider_fraction: 0.1,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    }
    .with_adversary(mix)
}

fn run(
    config: ScenarioConfig,
    rounds: usize,
    defense: DefensePolicy,
) -> (Vec<RoundStats>, Option<f64>) {
    run_sharded(config, rounds, defense, 0)
}

fn run_sharded(
    config: ScenarioConfig,
    rounds: usize,
    defense: DefensePolicy,
    shard_count: usize,
) -> (Vec<RoundStats>, Option<f64>) {
    let scenario = Scenario::build(config).expect("scenario builds");
    let mut sim = RoundsSimulator::new(
        &scenario,
        RoundsConfig {
            rounds,
            ..RoundsConfig::default()
        }
        .with_engine(config.engine)
        .with_defense(defense)
        .with_shards(shard_count),
    );
    let mut rng = scenario.gossip_rng(2);
    let stats = sim.run(&mut rng).expect("rounds run");
    let residual = sim.honest_residual_error();
    (stats, residual)
}

/// Attack mix number `kind` (a preset with jittered fraction, or the
/// all-zero mix).
fn mix_for(kind: u8, strength: u8) -> AdversaryMix {
    let fraction = 0.1 * strength as f64;
    match kind {
        0 => AdversaryMix::none(),
        1 => AdversaryMix {
            sybil_fraction: fraction,
            ..AdversaryMix::sybil()
        },
        2 => AdversaryMix {
            collusion_fraction: fraction,
            ..AdversaryMix::collusion()
        },
        3 => AdversaryMix {
            slander_fraction: fraction,
            ..AdversaryMix::slander()
        },
        _ => AdversaryMix {
            whitewash_fraction: fraction,
            ..AdversaryMix::whitewash()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn same_seed_and_mix_replays_bit_for_bit(
        seed in 0u64..1000,
        pick in (0u8..5, 1u8..=3),
        engine_pick in 0u8..3,
    ) {
        let (kind, strength) = pick;
        let engine = match engine_pick {
            0 => EngineKind::Sequential,
            1 => EngineKind::Parallel,
            _ => EngineKind::Sharded,
        };
        let config = scenario_config(seed, mix_for(kind, strength)).with_engine(engine);
        let a = run(config, 4, DefensePolicy::none());
        let b = run(config, 4, DefensePolicy::none());
        prop_assert_eq!(a, b);
    }
}

#[test]
fn zero_fraction_mix_is_bit_identical_to_honest_run() {
    // Non-default structural knobs, but all fractions zero: the run must
    // be indistinguishable from one with no adversary config at all.
    let zero_mix = AdversaryMix {
        sybil_ring: 3,
        sybil_spawn_rate: 0.5,
        collusion_clique: 9,
        slander_factor: 0.7,
        wash_threshold: 0.9,
        ..AdversaryMix::none()
    };
    for engine in [
        EngineKind::Sequential,
        EngineKind::Parallel,
        EngineKind::Sharded,
    ] {
        let honest = scenario_config(11, AdversaryMix::none()).with_engine(engine);
        let zeroed = scenario_config(11, zero_mix).with_engine(engine);

        let a = Scenario::build(honest).unwrap();
        let b = Scenario::build(zeroed).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.population, b.population);
        assert_eq!(a.trust, b.trust);
        assert!(b.adversaries.is_none());

        assert_eq!(
            run(honest, 5, DefensePolicy::none()),
            run(zeroed, 5, DefensePolicy::none()),
            "engine {engine:?}"
        );
    }
}

#[test]
fn engines_agree_bit_for_bit_under_attack() {
    // The most stateful attack paths — spawning sybils and whitewash
    // purges — must not break sequential/parallel equivalence.
    let mix = AdversaryMix {
        sybil_fraction: 0.15,
        whitewash_fraction: 0.1,
        slander_fraction: 0.1,
        ..AdversaryMix::none()
    };
    for defense in [DefensePolicy::none(), DefensePolicy::defended()] {
        let seq = run(
            scenario_config(23, mix).with_engine(EngineKind::Sequential),
            6,
            defense,
        );
        let par = run(
            scenario_config(23, mix).with_engine(EngineKind::Parallel),
            6,
            defense,
        );
        assert_eq!(seq, par, "defense {defense:?}");
        for shards in [1usize, 4, 16] {
            let shd = run_sharded(
                scenario_config(23, mix).with_engine(EngineKind::Sharded),
                6,
                defense,
                shards,
            );
            assert_eq!(seq, shd, "defense {defense:?}, {shards} shards");
        }
    }
}

/// Per-subject mean reputation over honest (non-adversary) observers —
/// the view the operational network acts on.
fn honest_observer_means(sim: &RoundsSimulator, scenario: &Scenario) -> Vec<Option<f64>> {
    let n = scenario.graph.node_count();
    (0..n)
        .map(|s| {
            let (mut acc, mut count) = (0.0, 0usize);
            for o in 0..n {
                if scenario.adversaries.is_adversary(NodeId(o as u32)) {
                    continue;
                }
                if let Some(v) = sim.aggregated(NodeId(o as u32), NodeId(s as u32)) {
                    acc += v;
                    count += 1;
                }
            }
            (count > 0).then(|| acc / count as f64)
        })
        .collect()
}

#[test]
fn stealth_cartel_evades_clamp_and_trim() {
    // The evasion proof behind the audit subsystem: the stealth preset
    // biases every report *inside* the defended clamp window, so the
    // clamp never touches a value and the 20%-per-tail trim cannot
    // outvote a 45% correlated mass — honest reputations (as honest
    // observers see them) move beyond the 0.1 deviation bound the
    // defended runs are elsewhere required to hold. Mirrors the claims
    // gate's stealth arm (N = 250, pinned seed 42).
    let build = |mix: AdversaryMix| {
        Scenario::build(
            ScenarioConfig {
                nodes: 250,
                seed: 42,
                free_rider_fraction: 0.1,
                quality_range: (0.4, 1.0),
                ..ScenarioConfig::default()
            }
            .with_adversary(mix),
        )
        .expect("scenario builds")
    };
    let defended_means = |scenario: &Scenario| {
        let mut sim = RoundsSimulator::new(
            scenario,
            RoundsConfig {
                rounds: 40,
                ..RoundsConfig::default()
            }
            .with_defense(DefensePolicy::defended()),
        );
        let mut rng = scenario.gossip_rng(2);
        sim.run(&mut rng).expect("rounds run");
        honest_observer_means(&sim, scenario)
    };

    let reference = build(AdversaryMix::none());
    let attacked = build(AdversaryMix::stealth());
    let ref_means = defended_means(&reference);
    let atk_means = defended_means(&attacked);

    let (mut acc, mut count) = (0.0, 0usize);
    for v in attacked.graph.nodes() {
        let honest = !attacked.adversaries.is_adversary(v)
            && matches!(attacked.population.behavior(v), Behavior::Honest { .. });
        if !honest {
            continue;
        }
        if let (Some(a), Some(r)) = (atk_means[v.index()], ref_means[v.index()]) {
            acc += (a - r).abs();
            count += 1;
        }
    }
    assert!(count > 100, "too few comparable honest subjects: {count}");
    let deviation = acc / count as f64;
    assert!(
        deviation > 0.1,
        "stealth cartel failed to evade the defense: honest deviation \
         {deviation:.4} never exceeded the 0.1 bound"
    );
}

/// Run a stealth scenario with an audit policy; returns the stats
/// history and the convicted set.
fn run_audited(
    config: ScenarioConfig,
    rounds: usize,
    audit: AuditPolicy,
) -> (Vec<RoundStats>, Vec<(NodeId, u64)>) {
    let scenario = Scenario::build(config).expect("scenario builds");
    let mut sim = RoundsSimulator::new(
        &scenario,
        RoundsConfig {
            rounds,
            ..RoundsConfig::default()
        }
        .with_defense(DefensePolicy::defended())
        .with_audit(audit),
    );
    let mut rng = scenario.gossip_rng(2);
    let stats = sim.run(&mut rng).expect("rounds run");
    (stats, sim.convicted())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The audit layer's three load-bearing properties hold for
    /// arbitrary (seed, clique size, bias, audit rate), not just the
    /// pinned claims configuration:
    ///
    /// * convictions are a deterministic function of the seed — the
    ///   same run replays the identical convicted set, round for round;
    /// * no honest node is ever convicted (honest reports re-verify
    ///   bit-exactly, so no tolerance can strike them);
    /// * a zero audit rate is bit-identical to [`AuditPolicy::off`],
    ///   whatever the other audit knobs say — the subsystem costs
    ///   nothing when disabled.
    #[test]
    fn audits_convict_deterministically_and_never_strike_honest_nodes(
        seed in 0u64..1000,
        clique in 2usize..8,
        bias in 0.2f64..1.0,
        rate in 0.05f64..0.3,
    ) {
        let mix = AdversaryMix {
            stealth_fraction: 0.3,
            stealth_clique: clique,
            stealth_bias: bias,
            ..AdversaryMix::none()
        }.validated().expect("mix is valid");
        let config = scenario_config(seed, mix);
        let audit = AuditPolicy { audit_rate: rate, ..AuditPolicy::standard() };

        let (stats_a, convicted_a) = run_audited(config, 6, audit);
        let (stats_b, convicted_b) = run_audited(config, 6, audit);
        prop_assert_eq!(&stats_a, &stats_b, "audited run must replay bit-for-bit");
        prop_assert_eq!(&convicted_a, &convicted_b, "convictions must be deterministic");

        let scenario = Scenario::build(config).expect("scenario builds");
        for &(node, round) in &convicted_a {
            prop_assert!(
                scenario.adversaries.is_adversary(node),
                "honest node {node} convicted at round {round}"
            );
        }

        let zero_rate = AuditPolicy { audit_rate: 0.0, ..audit };
        let zeroed = run_audited(config, 6, zero_rate);
        let off = run_audited(config, 6, AuditPolicy::off());
        prop_assert_eq!(&zeroed.0, &off.0, "zero-rate stats must match audits-off");
        prop_assert_eq!(&zeroed.1, &off.1, "zero-rate convictions must be empty like audits-off");
        prop_assert!(zeroed.1.is_empty());
    }
}

#[test]
fn whitewashers_wash_and_zero_prior_starves_them() {
    let mix = AdversaryMix::whitewash();
    let (open, _) = run(scenario_config(5, mix), 8, DefensePolicy::none());
    let (defended, _) = run(scenario_config(5, mix), 8, DefensePolicy::defended());

    // The attack actually exercises identity churn.
    assert!(
        open.iter().map(|s| s.washes).sum::<u64>() > 0,
        "no washes happened"
    );
    // Under the optimistic default every fresh identity gets a
    // honeymoon; the zero-prior rule removes it.
    let open_rate = open.last().unwrap().adversary_service_rate();
    let defended_rate = defended.last().unwrap().adversary_service_rate();
    assert!(
        defended_rate < open_rate,
        "zero prior should starve washers: open {open_rate} vs defended {defended_rate}"
    );
    assert!(defended_rate < 0.25, "defended rate {defended_rate}");
    // Honest nodes keep their service under the defense.
    assert!(defended.last().unwrap().honest_service_rate() > 0.75);
}

#[test]
fn slander_residual_shrinks_under_robust_aggregation() {
    let mix = AdversaryMix {
        slander_fraction: 0.3,
        ..AdversaryMix::slander()
    };
    let (_, open) = run(scenario_config(7, mix), 6, DefensePolicy::none());
    let (_, defended) = run(scenario_config(7, mix), 6, DefensePolicy::defended());
    let (open, defended) = (open.unwrap(), defended.unwrap());
    assert!(
        defended < open,
        "robust aggregation should shrink the slander residual: open {open} vs defended {defended}"
    );
}

#[test]
fn sybil_ring_extraction_is_curbed_by_the_defense() {
    let mix = AdversaryMix::sybil();
    let (open, _) = run(scenario_config(9, mix), 8, DefensePolicy::none());
    let (defended, _) = run(scenario_config(9, mix), 8, DefensePolicy::defended());
    let open_rate = open.last().unwrap().adversary_service_rate();
    let defended_rate = defended.last().unwrap().adversary_service_rate();
    assert!(
        defended_rate <= open_rate,
        "defense must not increase sybil service: open {open_rate} vs defended {defended_rate}"
    );
    assert!(
        defended.last().unwrap().honest_service_rate() > 0.75,
        "honest service survived the defense"
    );
}
