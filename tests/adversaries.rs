//! Adversary-subsystem invariants.
//!
//! 1. **Determinism** — the same `(seed, mix, defense)` triple replays
//!    the attack bit-for-bit (per-adversary ChaCha8 streams).
//! 2. **Zero-adversary neutrality** — a mix with all fractions at zero
//!    (whatever its structural knobs say) is bit-identical to the plain
//!    honest run: the adversary plumbing costs nothing when unused.
//! 3. **Engine equivalence** — attacks produce identical results under
//!    the sequential reference driver, the batched parallel engine and
//!    the sharded engine (several shard counts), with and without the
//!    defense policy.
//! 4. **Defenses act** — the robust-aggregation / zero-prior knobs
//!    measurably reduce what attacks extract or distort.

use differential_gossip::gossip::{AdversaryMix, EngineKind};
use differential_gossip::sim::rounds::{DefensePolicy, RoundStats, RoundsConfig, RoundsSimulator};
use differential_gossip::sim::scenario::{Scenario, ScenarioConfig};
use proptest::prelude::*;

fn scenario_config(seed: u64, mix: AdversaryMix) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 120,
        seed,
        free_rider_fraction: 0.1,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    }
    .with_adversary(mix)
}

fn run(
    config: ScenarioConfig,
    rounds: usize,
    defense: DefensePolicy,
) -> (Vec<RoundStats>, Option<f64>) {
    run_sharded(config, rounds, defense, 0)
}

fn run_sharded(
    config: ScenarioConfig,
    rounds: usize,
    defense: DefensePolicy,
    shard_count: usize,
) -> (Vec<RoundStats>, Option<f64>) {
    let scenario = Scenario::build(config).expect("scenario builds");
    let mut sim = RoundsSimulator::new(
        &scenario,
        RoundsConfig {
            rounds,
            ..RoundsConfig::default()
        }
        .with_engine(config.engine)
        .with_defense(defense)
        .with_shards(shard_count),
    );
    let mut rng = scenario.gossip_rng(2);
    let stats = sim.run(&mut rng).expect("rounds run");
    let residual = sim.honest_residual_error();
    (stats, residual)
}

/// Attack mix number `kind` (a preset with jittered fraction, or the
/// all-zero mix).
fn mix_for(kind: u8, strength: u8) -> AdversaryMix {
    let fraction = 0.1 * strength as f64;
    match kind {
        0 => AdversaryMix::none(),
        1 => AdversaryMix {
            sybil_fraction: fraction,
            ..AdversaryMix::sybil()
        },
        2 => AdversaryMix {
            collusion_fraction: fraction,
            ..AdversaryMix::collusion()
        },
        3 => AdversaryMix {
            slander_fraction: fraction,
            ..AdversaryMix::slander()
        },
        _ => AdversaryMix {
            whitewash_fraction: fraction,
            ..AdversaryMix::whitewash()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn same_seed_and_mix_replays_bit_for_bit(
        seed in 0u64..1000,
        pick in (0u8..5, 1u8..=3),
        engine_pick in 0u8..3,
    ) {
        let (kind, strength) = pick;
        let engine = match engine_pick {
            0 => EngineKind::Sequential,
            1 => EngineKind::Parallel,
            _ => EngineKind::Sharded,
        };
        let config = scenario_config(seed, mix_for(kind, strength)).with_engine(engine);
        let a = run(config, 4, DefensePolicy::none());
        let b = run(config, 4, DefensePolicy::none());
        prop_assert_eq!(a, b);
    }
}

#[test]
fn zero_fraction_mix_is_bit_identical_to_honest_run() {
    // Non-default structural knobs, but all fractions zero: the run must
    // be indistinguishable from one with no adversary config at all.
    let zero_mix = AdversaryMix {
        sybil_ring: 3,
        sybil_spawn_rate: 0.5,
        collusion_clique: 9,
        slander_factor: 0.7,
        wash_threshold: 0.9,
        ..AdversaryMix::none()
    };
    for engine in [
        EngineKind::Sequential,
        EngineKind::Parallel,
        EngineKind::Sharded,
    ] {
        let honest = scenario_config(11, AdversaryMix::none()).with_engine(engine);
        let zeroed = scenario_config(11, zero_mix).with_engine(engine);

        let a = Scenario::build(honest).unwrap();
        let b = Scenario::build(zeroed).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.population, b.population);
        assert_eq!(a.trust, b.trust);
        assert!(b.adversaries.is_none());

        assert_eq!(
            run(honest, 5, DefensePolicy::none()),
            run(zeroed, 5, DefensePolicy::none()),
            "engine {engine:?}"
        );
    }
}

#[test]
fn engines_agree_bit_for_bit_under_attack() {
    // The most stateful attack paths — spawning sybils and whitewash
    // purges — must not break sequential/parallel equivalence.
    let mix = AdversaryMix {
        sybil_fraction: 0.15,
        whitewash_fraction: 0.1,
        slander_fraction: 0.1,
        ..AdversaryMix::none()
    };
    for defense in [DefensePolicy::none(), DefensePolicy::defended()] {
        let seq = run(
            scenario_config(23, mix).with_engine(EngineKind::Sequential),
            6,
            defense,
        );
        let par = run(
            scenario_config(23, mix).with_engine(EngineKind::Parallel),
            6,
            defense,
        );
        assert_eq!(seq, par, "defense {defense:?}");
        for shards in [1usize, 4, 16] {
            let shd = run_sharded(
                scenario_config(23, mix).with_engine(EngineKind::Sharded),
                6,
                defense,
                shards,
            );
            assert_eq!(seq, shd, "defense {defense:?}, {shards} shards");
        }
    }
}

#[test]
fn whitewashers_wash_and_zero_prior_starves_them() {
    let mix = AdversaryMix::whitewash();
    let (open, _) = run(scenario_config(5, mix), 8, DefensePolicy::none());
    let (defended, _) = run(scenario_config(5, mix), 8, DefensePolicy::defended());

    // The attack actually exercises identity churn.
    assert!(
        open.iter().map(|s| s.washes).sum::<u64>() > 0,
        "no washes happened"
    );
    // Under the optimistic default every fresh identity gets a
    // honeymoon; the zero-prior rule removes it.
    let open_rate = open.last().unwrap().adversary_service_rate();
    let defended_rate = defended.last().unwrap().adversary_service_rate();
    assert!(
        defended_rate < open_rate,
        "zero prior should starve washers: open {open_rate} vs defended {defended_rate}"
    );
    assert!(defended_rate < 0.25, "defended rate {defended_rate}");
    // Honest nodes keep their service under the defense.
    assert!(defended.last().unwrap().honest_service_rate() > 0.75);
}

#[test]
fn slander_residual_shrinks_under_robust_aggregation() {
    let mix = AdversaryMix {
        slander_fraction: 0.3,
        ..AdversaryMix::slander()
    };
    let (_, open) = run(scenario_config(7, mix), 6, DefensePolicy::none());
    let (_, defended) = run(scenario_config(7, mix), 6, DefensePolicy::defended());
    let (open, defended) = (open.unwrap(), defended.unwrap());
    assert!(
        defended < open,
        "robust aggregation should shrink the slander residual: open {open} vs defended {defended}"
    );
}

#[test]
fn sybil_ring_extraction_is_curbed_by_the_defense() {
    let mix = AdversaryMix::sybil();
    let (open, _) = run(scenario_config(9, mix), 8, DefensePolicy::none());
    let (defended, _) = run(scenario_config(9, mix), 8, DefensePolicy::defended());
    let open_rate = open.last().unwrap().adversary_service_rate();
    let defended_rate = defended.last().unwrap().adversary_service_rate();
    assert!(
        defended_rate <= open_rate,
        "defense must not increase sybil service: open {open_rate} vs defended {defended_rate}"
    );
    assert!(
        defended.last().unwrap().honest_service_rate() > 0.75,
        "honest service survived the defense"
    );
}
