//! The crash-recovery keystone: **kill-at-round-k + resume ≡ straight
//! run, bit for bit**, for every round engine, under every adversary
//! preset and under faulty network profiles.
//!
//! State is compared through the persistence layer itself: both the
//! straight and the resumed session checkpoint their final state into
//! fresh `dg-store` directories, and the loaded [`NodeRecord`]s must
//! match with [`NodeRecord::bits_eq`] (exact f64 bit patterns, not
//! tolerances), alongside exact [`RoundStats`] history equality.
//!
//! The asynchronous deployment's restart contract is different — the
//! continuation is statistical, not bitwise (see
//! `differential_gossip::p2p::checkpoint`) — so what the tokio tests
//! here pin is the part that *is* exact: resume determinism and the
//! mass-conservation ledger balancing across the restart.

use differential_gossip::gossip::pair::GossipPair;
use differential_gossip::gossip::{AdversaryMix, EngineKind, NetworkProfile};
use differential_gossip::p2p::{
    resume_distributed, run_distributed, DistributedConfig, GossipCheckpoint,
};
use differential_gossip::sim::{RunConfig, RunSession};
use differential_gossip::store::{NodeRecord, Store};
use proptest::prelude::*;
use std::path::PathBuf;

const ENGINES: [EngineKind; 4] = [
    EngineKind::Sequential,
    EngineKind::Parallel,
    EngineKind::Sharded,
    EngineKind::Incremental,
];

const ADVERSARIES: [&str; 6] = [
    "none",
    "sybil",
    "collusion",
    "slander",
    "whitewash",
    "stealth",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dg_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(
    engine: EngineKind,
    adversary: AdversaryMix,
    profile: NetworkProfile,
    seed: u64,
) -> RunConfig {
    RunConfig::with_nodes(64)
        .with_seed(seed)
        .with_engine(engine)
        .with_adversary(adversary)
        .with_profile(profile)
        .with_rounds(4)
        .with_requests_per_edge(2)
        .with_free_riders(0.25)
        .with_quality_range(0.4, 1.0)
}

/// Final node records of a session, read back through the store — the
/// comparison deliberately round-trips the serialization layer.
fn final_records(session: &mut RunSession, tag: &str) -> Vec<NodeRecord> {
    let dir = temp_dir(tag);
    session.checkpoint(&dir).expect("final checkpoint");
    let snapshot = Store::open(&dir).load_latest().expect("load final state");
    let _ = std::fs::remove_dir_all(&dir);
    snapshot.records
}

/// Run `config` straight through, and again with a kill (drop) at
/// `kill_round` plus a resume from the on-disk snapshot; assert the two
/// end states are bit-identical.
fn assert_kill_resume_bit_identical(config: RunConfig, kill_round: usize, tag: &str) {
    let mut straight = RunSession::new(config).expect("straight session");
    straight.run().expect("straight run");

    let dir = temp_dir(tag);
    let mut killed = RunSession::new(config).expect("killed session");
    killed.run_to(kill_round).expect("run to kill round");
    killed.checkpoint(&dir).expect("checkpoint before kill");
    // The "kill": all in-memory state is gone, only the store remains.
    drop(killed);

    let mut resumed = RunSession::resume(&dir).expect("resume from store");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(resumed.round(), kill_round, "{tag}: resumed at wrong round");
    resumed.run().expect("resumed run");

    assert_eq!(
        straight.stats()[..kill_round],
        resumed.stats()[..kill_round],
        "{tag}: pre-kill stats history not restored"
    );
    assert_eq!(straight.stats(), resumed.stats(), "{tag}: stats diverged");

    let a = final_records(&mut straight, &format!("{tag}_straight"));
    let b = final_records(&mut resumed, &format!("{tag}_resumed"));
    assert_eq!(a.len(), b.len(), "{tag}: record counts differ");
    for (x, y) in a.iter().zip(&b) {
        assert!(x.bits_eq(y), "{tag}: node {} diverged after resume", x.node);
    }
}

#[test]
fn kill_and_resume_is_bit_identical_for_every_engine_and_adversary() {
    for engine in ENGINES {
        for name in ADVERSARIES {
            let adversary = AdversaryMix::parse(name).expect("known adversary preset");
            let cfg = config(engine, adversary, NetworkProfile::lossless(), 42);
            assert_kill_resume_bit_identical(cfg, 2, &format!("{engine:?}_{name}"));
        }
    }
}

#[test]
fn kill_and_resume_is_bit_identical_under_faulty_network_profiles() {
    for engine in ENGINES {
        for profile in [
            NetworkProfile::lossy(),
            NetworkProfile::partitioned(),
            NetworkProfile::churning(),
        ] {
            let adversary = AdversaryMix::parse("sybil").expect("sybil preset");
            let cfg = config(engine, adversary, profile, 17);
            assert_kill_resume_bit_identical(cfg, 2, &format!("{engine:?}_{}", profile.label()));
        }
    }
}

#[test]
fn kill_and_resume_with_audit_strikes_in_flight() {
    use differential_gossip::trust::audit::AuditPolicy;

    // The audit subsystem's durable state — per-node report logs,
    // accumulated strike counters, the convicted set — must survive the
    // snapshot round-trip mid-conviction: killed after strikes have
    // accrued but before the cartel is fully convicted, the resumed run
    // must land every remaining conviction in exactly the round the
    // straight run does.
    let audit = AuditPolicy {
        audit_rate: 0.1,
        ..AuditPolicy::standard()
    };
    for engine in ENGINES {
        let cfg = config(
            engine,
            AdversaryMix::stealth(),
            NetworkProfile::lossless(),
            42,
        )
        .with_rounds(8)
        .with_audit(audit);
        let tag = format!("{engine:?}_audit_inflight");

        let mut straight = RunSession::new(cfg).expect("straight session");
        straight.run().expect("straight run");
        let kill_round = 4;
        let strikes_at_kill: u64 = straight.stats()[..kill_round]
            .iter()
            .map(|r| r.audit_strikes)
            .sum();
        let convictions_before: u64 = straight.stats()[..kill_round]
            .iter()
            .map(|r| r.convictions)
            .sum();
        let convictions_after: u64 = straight.stats()[kill_round..]
            .iter()
            .map(|r| r.convictions)
            .sum();
        assert!(
            strikes_at_kill > 0,
            "{tag}: no strikes in flight at the kill round"
        );
        assert!(
            convictions_before > 0 && convictions_after > 0,
            "{tag}: convictions must straddle the kill round \
             ({convictions_before} before, {convictions_after} after)"
        );

        assert_kill_resume_bit_identical(cfg, kill_round, &tag);
    }
}

#[test]
fn resume_restores_aggregates_and_residual_exactly() {
    let cfg = config(
        EngineKind::Parallel,
        AdversaryMix::parse("collusion").unwrap(),
        NetworkProfile::lossy(),
        9,
    );
    let mut straight = RunSession::new(cfg).unwrap();
    straight.run().unwrap();

    let dir = temp_dir("aggregates");
    let mut killed = RunSession::new(cfg).unwrap();
    killed.run_to(3).unwrap();
    killed.checkpoint(&dir).unwrap();
    drop(killed);
    let mut resumed = RunSession::resume(&dir).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    resumed.run().unwrap();

    let residual = (
        straight.honest_residual().map(f64::to_bits),
        resumed.honest_residual().map(f64::to_bits),
    );
    assert_eq!(residual.0, residual.1, "honest residual must be bit-equal");
    for observer in 0..cfg.nodes as u32 {
        for subject in 0..cfg.nodes as u32 {
            let a = straight
                .aggregated(observer.into(), subject.into())
                .map(f64::to_bits);
            let b = resumed
                .aggregated(observer.into(), subject.into())
                .map(f64::to_bits);
            assert_eq!(a, b, "aggregate ({observer}, {subject}) diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The property form of the keystone: an arbitrary (engine,
    /// adversary, profile, kill round, seed) combination survives
    /// kill-and-resume bit-for-bit.
    #[test]
    fn kill_resume_property(
        engine_ix in 0usize..4,
        adversary_ix in 0usize..6,
        lossy in 0usize..2,
        kill_round in 1usize..4,
        seed in 0u64..1000,
    ) {
        let engine = ENGINES[engine_ix];
        let adversary = AdversaryMix::parse(ADVERSARIES[adversary_ix]).unwrap();
        let profile = if lossy == 1 {
            NetworkProfile::lossy()
        } else {
            NetworkProfile::lossless()
        };
        let cfg = config(engine, adversary, profile, seed);
        let tag = format!("prop_{engine_ix}_{adversary_ix}_{lossy}_{kill_round}_{seed}");
        assert_kill_resume_bit_identical(cfg, kill_round, &tag);
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn distributed_mass_ledger_balances_across_restart() {
    use differential_gossip::graph::pa;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let graph = pa::preferential_attachment(pa::PaConfig { nodes: 48, m: 2 }, &mut rng)
        .expect("power-law overlay");
    let initial: Vec<GossipPair> = (0..48)
        .map(|i| GossipPair::originator(((i * 11) % 17) as f64 / 17.0))
        .collect();

    let config = DistributedConfig {
        xi: 1e-4,
        seed: 77,
        max_rounds: 6,
        profile: NetworkProfile::lossy(),
        ..DistributedConfig::default()
    };
    let partial = run_distributed(&graph, config, initial)
        .await
        .expect("first segment");
    let ckpt = partial.checkpoint(config.seed);

    // Restart: persist through the store codec, reload, resume.
    let path = std::env::temp_dir().join(format!("dg_crash_p2p_{}.bin", std::process::id()));
    ckpt.save(&path).expect("save checkpoint");
    let ckpt = GossipCheckpoint::load(&path).expect("load checkpoint");
    let _ = std::fs::remove_file(&path);

    let resumed = resume_distributed(
        &graph,
        DistributedConfig {
            max_rounds: 60,
            ..config
        },
        ckpt,
    )
    .await
    .expect("resumed segment");

    // The conservation invariant spans the restart: the surviving mass
    // equals the initial total (post byzantine falsification) corrected
    // by everything the merged ledger saw the faulty transport destroy
    // or duplicate.
    let total = resumed.total_pair();
    let expected = resumed.ledger.expected_total(resumed.initial_total);
    assert!(
        (total.value - expected.value).abs() < 1e-9
            && (total.weight - expected.weight).abs() < 1e-9,
        "mass leaked across restart: {total:?} vs {expected:?}"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn distributed_resume_is_deterministic_after_restart() {
    use differential_gossip::graph::generators;

    let graph = generators::complete(12);
    let initial: Vec<GossipPair> = (0..12)
        .map(|i| GossipPair::originator(i as f64 / 11.0))
        .collect();
    let config = DistributedConfig {
        xi: 1e-10,
        seed: 5,
        max_rounds: 3,
        ..DistributedConfig::default()
    };
    let partial = run_distributed(&graph, config, initial)
        .await
        .expect("first segment");
    let ckpt = partial.checkpoint(config.seed);

    let resume_cfg = DistributedConfig {
        max_rounds: 40,
        ..config
    };
    let a = resume_distributed(&graph, resume_cfg, ckpt.clone())
        .await
        .expect("first resume");
    let b = resume_distributed(&graph, resume_cfg, ckpt)
        .await
        .expect("second resume");
    assert_eq!(
        a, b,
        "resuming the same snapshot twice must be bit-identical"
    );
}
