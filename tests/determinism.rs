//! Reproducibility: every layer is a pure function of its seed.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use differential_gossip::core::algorithms::alg3;
use differential_gossip::gossip::FanoutPolicy;
use differential_gossip::gossip::GossipConfig;
use differential_gossip::sim::experiments::{collusion_experiment, steps_experiment};
use differential_gossip::sim::rounds::{RoundsConfig, RoundsSimulator};
use differential_gossip::sim::scenario::{Scenario, ScenarioConfig};

/// Pin the concrete ChaCha8 stream for the workspace's canonical seed.
///
/// Every experiment in the repository keys its reproducibility off
/// `ChaCha8Rng::seed_from_u64`; if the vendored generator's stream ever
/// changes (seed expansion, word order, round count), every recorded
/// experiment table silently shifts. This test makes such a change loud.
#[test]
fn chacha8_seed_42_stream_is_pinned() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let words: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(
        words,
        [
            3536907876931541756,
            1681417456739323905,
            17856965759995586207,
            13339797155766290778,
        ]
    );

    // The f64 mapping (53 mantissa bits in [0, 1)) is part of the contract
    // too: it is what every simulation actually consumes.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let floats: Vec<f64> = (0..3).map(|_| rng.random::<f64>()).collect();
    for (got, want) in
        floats
            .iter()
            .zip([0.1917361602025135, 0.09114982297259133, 0.968028053549324])
    {
        assert!((got - want).abs() < 1e-15, "{got} vs {want}");
    }

    // Clones continue the stream identically from the fork point.
    let mut a = ChaCha8Rng::seed_from_u64(7);
    a.next_u64();
    let mut b = a.clone();
    assert_eq!(a.next_u64(), b.next_u64());
}

#[test]
fn scenarios_are_bit_reproducible() {
    let cfg = ScenarioConfig {
        nodes: 150,
        seed: 321,
        free_rider_fraction: 0.2,
        far_partners: 5,
        ..ScenarioConfig::default()
    };
    let a = Scenario::build(cfg).expect("scenario");
    let b = Scenario::build(cfg).expect("scenario");
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.trust, b.trust);
    assert_eq!(a.population, b.population);
}

#[test]
fn gossip_runs_are_reproducible_given_the_same_stream() {
    let s = Scenario::build(ScenarioConfig::with_nodes(80).with_seed(9)).expect("scenario");
    let system = s.system().expect("system");
    let config = GossipConfig::differential(1e-6).expect("config");
    let out1 = alg3::run(&system, config, &mut s.gossip_rng(5)).expect("run");
    let out2 = alg3::run(&system, config, &mut s.gossip_rng(5)).expect("run");
    assert_eq!(out1, out2);
    // A different stream gives a different trajectory (but the same limit).
    let out3 = alg3::run(&system, config, &mut s.gossip_rng(6)).expect("run");
    assert!(out1.steps != out3.steps || out1.estimates != out3.estimates);
}

#[test]
fn experiment_sweeps_are_reproducible_despite_rayon() {
    let a =
        steps_experiment(&[100, 300], &[1e-3], &[FanoutPolicy::Differential], 77).expect("sweep");
    let b =
        steps_experiment(&[100, 300], &[1e-3], &[FanoutPolicy::Differential], 77).expect("sweep");
    assert_eq!(a, b);

    let c = collusion_experiment(100, &[0.3], &[3], 13).expect("sweep");
    let d = collusion_experiment(100, &[0.3], &[3], 13).expect("sweep");
    assert_eq!(c, d);
}

#[test]
fn rounds_simulation_is_reproducible() {
    let s = Scenario::build(ScenarioConfig {
        nodes: 60,
        seed: 2,
        free_rider_fraction: 0.2,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    })
    .expect("scenario");
    let run = || {
        let mut sim = RoundsSimulator::new(
            &s,
            RoundsConfig {
                rounds: 3,
                ..RoundsConfig::default()
            },
        );
        let mut rng = s.gossip_rng(8);
        sim.run(&mut rng).expect("rounds")
    };
    assert_eq!(run(), run());
}
