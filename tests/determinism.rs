//! Reproducibility: every layer is a pure function of its seed.

use differential_gossip::core::algorithms::alg3;
use differential_gossip::gossip::GossipConfig;
use differential_gossip::sim::experiments::{collusion_experiment, steps_experiment};
use differential_gossip::sim::rounds::{RoundsConfig, RoundsSimulator};
use differential_gossip::sim::scenario::{Scenario, ScenarioConfig};
use differential_gossip::gossip::FanoutPolicy;

#[test]
fn scenarios_are_bit_reproducible() {
    let cfg = ScenarioConfig {
        nodes: 150,
        seed: 321,
        free_rider_fraction: 0.2,
        far_partners: 5,
        ..ScenarioConfig::default()
    };
    let a = Scenario::build(cfg).expect("scenario");
    let b = Scenario::build(cfg).expect("scenario");
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.trust, b.trust);
    assert_eq!(a.population, b.population);
}

#[test]
fn gossip_runs_are_reproducible_given_the_same_stream() {
    let s = Scenario::build(ScenarioConfig::with_nodes(80).with_seed(9)).expect("scenario");
    let system = s.system().expect("system");
    let config = GossipConfig::differential(1e-6).expect("config");
    let out1 = alg3::run(&system, config, &mut s.gossip_rng(5)).expect("run");
    let out2 = alg3::run(&system, config, &mut s.gossip_rng(5)).expect("run");
    assert_eq!(out1, out2);
    // A different stream gives a different trajectory (but the same limit).
    let out3 = alg3::run(&system, config, &mut s.gossip_rng(6)).expect("run");
    assert!(out1.steps != out3.steps || out1.estimates != out3.estimates);
}

#[test]
fn experiment_sweeps_are_reproducible_despite_rayon() {
    let a = steps_experiment(&[100, 300], &[1e-3], &[FanoutPolicy::Differential], 77)
        .expect("sweep");
    let b = steps_experiment(&[100, 300], &[1e-3], &[FanoutPolicy::Differential], 77)
        .expect("sweep");
    assert_eq!(a, b);

    let c = collusion_experiment(100, &[0.3], &[3], 13).expect("sweep");
    let d = collusion_experiment(100, &[0.3], &[3], 13).expect("sweep");
    assert_eq!(c, d);
}

#[test]
fn rounds_simulation_is_reproducible() {
    let s = Scenario::build(ScenarioConfig {
        nodes: 60,
        seed: 2,
        free_rider_fraction: 0.2,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    })
    .expect("scenario");
    let run = || {
        let mut sim = RoundsSimulator::new(&s, RoundsConfig {
            rounds: 3,
            ..RoundsConfig::default()
        });
        let mut rng = s.gossip_rng(8);
        sim.run(&mut rng).expect("rounds")
    };
    assert_eq!(run(), run());
}
