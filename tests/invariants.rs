//! Property-based integration tests of the cross-crate invariants:
//! mass conservation on arbitrary topologies, push-sum correctness,
//! weight-law bounds feeding Eq. (6), and collusion-metric sanity.

use differential_gossip::core::collusion::{
    average_rms_error, theory, ColludedAggregates, CollusionScheme, GroupAssignment,
};
use differential_gossip::core::reputation::{trust_from_qualities, ReputationSystem};
use differential_gossip::gossip::{FanoutPolicy, GossipConfig, ScalarGossip};
use differential_gossip::graph::{generators, pa, GraphBuilder, NodeId};
use differential_gossip::trust::WeightParams;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An arbitrary connected graph: a random spanning tree plus extra edges.
fn arbitrary_connected_graph(
    nodes: usize,
    extra_edges: &[(usize, usize)],
) -> differential_gossip::graph::Graph {
    let mut b = GraphBuilder::new(nodes);
    for v in 1..nodes {
        // Parent chosen deterministically from the edge material.
        let parent = extra_edges
            .get(v % extra_edges.len().max(1))
            .map(|&(a, _)| a % v)
            .unwrap_or(0);
        b.add_edge(v as u32, parent as u32)
            .expect("valid tree edge");
    }
    for &(a, c) in extra_edges {
        let (a, c) = (a % nodes, c % nodes);
        if a != c {
            b.add_edge(a as u32, c as u32).expect("valid extra edge");
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mass_conservation_on_arbitrary_connected_graphs(
        nodes in 3usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 1..30),
        values in proptest::collection::vec(0.0f64..1.0, 40),
        loss in 0.0f64..0.6,
        seed in 0u64..1000,
    ) {
        let graph = arbitrary_connected_graph(nodes, &edges);
        let vals = &values[..nodes];
        let config = GossipConfig::differential(1e-4).unwrap()
            .with_loss(differential_gossip::gossip::loss::LossModel::new(loss).unwrap());
        let mut engine = ScalarGossip::average(&graph, config, vals).unwrap();
        let before = engine.total_mass();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..25 {
            engine.step(&mut rng);
        }
        let after = engine.total_mass();
        prop_assert!((before.0 - after.0).abs() < 1e-7);
        prop_assert!((before.1 - after.1).abs() < 1e-7);
    }

    #[test]
    fn push_sum_converges_to_the_true_mean(
        nodes in 8usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 5..30),
        values in proptest::collection::vec(0.0f64..1.0, 40),
        seed in 0u64..1000,
    ) {
        let graph = arbitrary_connected_graph(nodes, &edges);
        let vals = &values[..nodes];
        let mean = vals.iter().sum::<f64>() / nodes as f64;
        let out = ScalarGossip::average(
            &graph,
            GossipConfig::differential(1e-9).unwrap(),
            vals,
        )
        .unwrap()
        .run(&mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert!(out.converged);
        prop_assert!(out.max_error(mean) < 1e-3, "max error {}", out.max_error(mean));
    }

    #[test]
    fn gclr_stays_in_unit_interval_for_any_weight_law(
        a in 1.0f64..8.0,
        b in 0.0f64..4.0,
        seed in 0u64..500,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = pa::preferential_attachment(pa::PaConfig { nodes: 30, m: 2 }, &mut rng)
            .unwrap();
        let qualities: Vec<f64> = (0..30).map(|i| i as f64 / 29.0).collect();
        let trust = trust_from_qualities(&graph, &qualities);
        let system =
            ReputationSystem::new(&graph, trust, WeightParams::new(a, b).unwrap()).unwrap();
        for i in graph.nodes() {
            for j in graph.nodes() {
                if let Some(rep) = system.gclr(i, j) {
                    prop_assert!((0.0..=1.0).contains(&rep), "({i},{j}) -> {rep}");
                }
            }
        }
    }

    #[test]
    fn collusion_shrink_factor_bounds(
        n in 10usize..1000,
        excess in 0.0f64..1e6,
    ) {
        let s = theory::shrink_factor(n, excess);
        prop_assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn no_collusion_means_no_error_for_any_matrix(
        nodes in 4usize..25,
        seed in 0u64..500,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = generators::complete(nodes);
        let qualities: Vec<f64> =
            (0..nodes).map(|_| rand::Rng::random_range(&mut rng, 0.05..1.0)).collect();
        let trust = trust_from_qualities(&graph, &qualities);
        let assignment = GroupAssignment::none(nodes);
        let view = ColludedAggregates::new(&trust, &assignment);
        let subjects: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
        let err = average_rms_error(
            nodes,
            &subjects,
            |_, j| view.global_colluded(j),
            |_, j| view.global_clean(j),
        );
        prop_assert_eq!(err, 0.0);
    }

    #[test]
    fn fanout_resolution_is_always_within_degree(
        nodes in 5usize..60,
        seed in 0u64..500,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = pa::preferential_attachment(pa::PaConfig { nodes, m: 2 }, &mut rng)
            .unwrap();
        let fanouts = FanoutPolicy::Differential.resolve(&graph).unwrap();
        for v in graph.nodes() {
            prop_assert!(fanouts[v.index()] >= 1);
            prop_assert!(fanouts[v.index()] <= graph.degree(v).max(1));
        }
    }
}

#[test]
fn collusion_error_increases_with_fraction_on_average() {
    // Deterministic companion to the proptest suite: same scenario, three
    // colluder fractions, strictly increasing error.
    let graph = generators::complete(40);
    let qualities: Vec<f64> = (0..40).map(|i| 0.3 + 0.017 * i as f64).collect();
    let trust = trust_from_qualities(&graph, &qualities);
    let subjects: Vec<NodeId> = (0..40u32).map(NodeId).collect();
    let mut previous = 0.0;
    for fraction in [0.1, 0.3, 0.6] {
        let scheme = CollusionScheme::new(fraction, 4).expect("scheme");
        let assignment =
            GroupAssignment::assign(40, scheme, &mut ChaCha8Rng::seed_from_u64(1)).expect("assign");
        let view = ColludedAggregates::new(&trust, &assignment);
        let err = average_rms_error(
            40,
            &subjects,
            |_, j| view.global_colluded(j),
            |_, j| view.global_clean(j),
        );
        assert!(err > previous, "fraction {fraction}: {err} <= {previous}");
        previous = err;
    }
}
