//! Integration: the multi-round incentive lifecycle and the EigenTrust
//! baseline, cross-checked against differential gossip trust.

use differential_gossip::core::behavior::Behavior;
use differential_gossip::graph::NodeId;
use differential_gossip::sim::baselines::{eigentrust, EigenTrustConfig};
use differential_gossip::sim::rounds::{AggregationMode, RoundsConfig, RoundsSimulator};
use differential_gossip::sim::scenario::{Scenario, ScenarioConfig, TrustSource};

fn scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        nodes: 100,
        seed,
        free_rider_fraction: 0.2,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    })
    .expect("scenario builds")
}

#[test]
fn incentive_loop_starves_free_riders_but_not_honest_peers() {
    let s = scenario(77);
    let mut sim = RoundsSimulator::new(
        &s,
        RoundsConfig {
            rounds: 8,
            ..RoundsConfig::default()
        },
    );
    let mut rng = s.gossip_rng(1);
    let stats = sim.run(&mut rng).expect("rounds");

    // Round 0 serves everyone (no reputations yet).
    assert_eq!(stats[0].refused_honest, 0);
    assert_eq!(stats[0].refused_free_riders, 0);

    let last = stats.last().expect("rounds > 0");
    assert!(
        last.honest_service_rate() > 0.95,
        "{}",
        last.honest_service_rate()
    );
    assert!(
        last.free_rider_service_rate() < 0.1,
        "{}",
        last.free_rider_service_rate()
    );
    // Reputation separation mirrors the service separation.
    assert!(last.mean_rep_honest > 2.0 * last.mean_rep_free_riders);
}

#[test]
fn real_gossip_aggregation_mode_reaches_the_same_separation() {
    let s = Scenario::build(ScenarioConfig {
        nodes: 50,
        seed: 5,
        free_rider_fraction: 0.2,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    })
    .expect("scenario builds");
    let run = |mode: AggregationMode| {
        let mut sim = RoundsSimulator::new(
            &s,
            RoundsConfig {
                rounds: 4,
                aggregation: mode,
                ..RoundsConfig::default()
            }
            .with_xi(1e-7),
        );
        let mut rng = s.gossip_rng(9);
        sim.run(&mut rng).expect("rounds")
    };
    let closed = run(AggregationMode::ClosedForm);
    let gossip = run(AggregationMode::Gossip);
    let last_closed = closed.last().expect("rounds");
    let last_gossip = gossip.last().expect("rounds");
    // Both modes separate the classes; the gossip mode tracks the closed
    // form closely (they see identical transaction streams only in round
    // 0, so compare coarse statistics, not exact values).
    assert!(last_gossip.mean_rep_honest > 2.0 * last_gossip.mean_rep_free_riders);
    assert!(
        (last_gossip.mean_rep_honest - last_closed.mean_rep_honest).abs() < 0.1,
        "gossip {} vs closed {}",
        last_gossip.mean_rep_honest,
        last_closed.mean_rep_honest
    );
}

#[test]
fn eigentrust_and_differential_gossip_agree_on_who_is_bad() {
    let s = Scenario::build(ScenarioConfig {
        nodes: 80,
        seed: 11,
        free_rider_fraction: 0.25,
        quality_range: (0.5, 1.0),
        trust_source: TrustSource::Workload {
            transactions_per_edge: 20,
        },
        ..ScenarioConfig::default()
    })
    .expect("scenario builds");
    let system = s.system().expect("system");

    // Differential gossip trust (closed form = the gossip limit).
    let gclr = system.gclr_matrix();
    // EigenTrust over the same local trust, pre-trusting the two
    // highest-quality peers.
    let qualities = s.population.latent_qualities();
    let mut by_quality: Vec<usize> = (0..80).collect();
    by_quality.sort_by(|&a, &b| qualities[b].total_cmp(&qualities[a]));
    let pretrusted = [NodeId(by_quality[0] as u32), NodeId(by_quality[1] as u32)];
    let et = eigentrust(s.trust(), &pretrusted, &EigenTrustConfig::default());
    assert!(et.converged);

    // Both systems should put the average free rider clearly below the
    // average honest peer.
    let mut honest_et = (0.0, 0usize);
    let mut rider_et = (0.0, 0usize);
    let mut honest_dg = (0.0, 0usize);
    let mut rider_dg = (0.0, 0usize);
    for (node, behavior) in s.population.iter() {
        let dg_rep = gclr[0]
            .iter()
            .find(|(j, _)| *j == node)
            .map(|&(_, r)| r)
            .unwrap_or(0.0);
        let et_rep = et.scores[node.index()];
        if matches!(behavior, Behavior::FreeRider { .. }) {
            rider_et = (rider_et.0 + et_rep, rider_et.1 + 1);
            rider_dg = (rider_dg.0 + dg_rep, rider_dg.1 + 1);
        } else {
            honest_et = (honest_et.0 + et_rep, honest_et.1 + 1);
            honest_dg = (honest_dg.0 + dg_rep, honest_dg.1 + 1);
        }
    }
    let mean = |(sum, cnt): (f64, usize)| sum / cnt.max(1) as f64;
    assert!(
        mean(honest_et) > 2.0 * mean(rider_et),
        "EigenTrust failed to separate"
    );
    assert!(
        mean(honest_dg) > 2.0 * mean(rider_dg),
        "DGT failed to separate"
    );
}

trait TrustAccess {
    fn trust(&self) -> &differential_gossip::trust::TrustMatrix;
}

impl TrustAccess for Scenario {
    fn trust(&self) -> &differential_gossip::trust::TrustMatrix {
        &self.trust
    }
}
