//! End-to-end: scenario construction → workload trust estimation → all
//! four aggregation algorithms → agreement with the analytical limits.

use differential_gossip::core::algorithms::{alg1, alg2, alg3, alg4};
use differential_gossip::core::ReputationSystem;
use differential_gossip::gossip::GossipConfig;
use differential_gossip::graph::NodeId;
use differential_gossip::sim::scenario::{Scenario, ScenarioConfig, TrustSource};

fn scenario() -> Scenario {
    Scenario::build(ScenarioConfig {
        nodes: 60,
        seed: 424242,
        trust_source: TrustSource::Workload {
            transactions_per_edge: 25,
        },
        ..ScenarioConfig::default()
    })
    .expect("scenario builds")
}

fn config() -> GossipConfig {
    GossipConfig::differential(1e-9).expect("valid config")
}

#[test]
fn alg1_matches_closed_form_on_workload_trust() {
    let s = scenario();
    let system = s.system().expect("system");
    let subject = NodeId(3);
    let reference = system
        .global_reputation(subject)
        .expect("node 3 has neighbours, hence opinions");
    let mut rng = s.gossip_rng(1);
    let out = alg1::run(&system, subject, config(), &mut rng).expect("alg1");
    assert!(out.converged);
    for (i, est) in out.estimates.iter().enumerate() {
        let est = est.expect("mass everywhere after convergence");
        assert!(
            (est - reference).abs() < 1e-3,
            "node {i}: {est} vs {reference}"
        );
    }
}

#[test]
fn alg2_blends_neighbour_reports() {
    let s = scenario();
    let system = s.system().expect("system");
    let subject = NodeId(10);
    let mut rng = s.gossip_rng(2);
    let out = alg2::run(&system, subject, config(), &mut rng).expect("alg2");
    assert!(out.converged);
    for i in 0..60u32 {
        let est = out.estimates[i as usize].expect("mass everywhere");
        let reference = system.gclr(NodeId(i), subject).expect("defined");
        assert!(
            (est - reference).abs() < 1e-2,
            "observer {i}: {est} vs {reference}"
        );
    }
}

#[test]
fn alg3_and_alg4_cover_every_rated_subject() {
    let s = scenario();
    let system = s.system().expect("system");
    let mut rng = s.gossip_rng(3);
    let v3 = alg3::run(&system, config(), &mut rng).expect("alg3");
    let v4 = alg4::run(&system, config(), &mut rng).expect("alg4");
    assert!(v3.converged && v4.converged);

    // Every node got rated by its neighbours in the workload, so every
    // node appears as a subject at every observer.
    for observer in 0..60usize {
        assert_eq!(v3.estimates[observer].len(), 60, "observer {observer} (v3)");
        assert_eq!(v4.estimates[observer].len(), 60, "observer {observer} (v4)");
    }

    // Variation 3 is observer-independent (global); Variation 4 differs
    // across observers but stays within [0, 1] and correlates with v3.
    for j in 0..60u32 {
        let g3 = v3.estimate(NodeId(0), NodeId(j)).expect("estimate");
        for observer in 1..60u32 {
            let other = v3.estimate(NodeId(observer), NodeId(j)).expect("estimate");
            assert!(
                (g3 - other).abs() < 1e-3,
                "v3 not global at ({observer},{j})"
            );
        }
        let g4 = v4.estimate(NodeId(0), NodeId(j)).expect("estimate");
        assert!((0.0..=1.0).contains(&g4));
    }
}

#[test]
fn estimated_reputation_tracks_latent_quality() {
    let s = scenario();
    let system = s.system().expect("system");
    let mut rng = s.gossip_rng(4);
    let v3 = alg3::run(&system, config(), &mut rng).expect("alg3");
    let qualities = s.population.latent_qualities();

    // Spearman-like check: the top-quality decile outranks the bottom
    // decile in aggregated reputation.
    let mut by_quality: Vec<usize> = (0..60).collect();
    by_quality.sort_by(|&a, &b| qualities[a].total_cmp(&qualities[b]));
    let rep = |i: usize| v3.estimate(NodeId(0), NodeId(i as u32)).expect("estimate");
    let bottom: f64 = by_quality[..6].iter().map(|&i| rep(i)).sum::<f64>() / 6.0;
    let top: f64 = by_quality[54..].iter().map(|&i| rep(i)).sum::<f64>() / 6.0;
    assert!(
        top > bottom + 0.2,
        "top decile {top} should clearly outrank bottom {bottom}"
    );
}

#[test]
fn neutral_weights_make_gclr_equal_global_everywhere() {
    let mut cfg = ScenarioConfig {
        nodes: 40,
        seed: 7,
        ..ScenarioConfig::default()
    };
    cfg.weight_a = 1.0;
    cfg.weight_b = 0.0;
    let s = Scenario::build(cfg).expect("scenario");
    let system = s.system().expect("system");
    assert!(system.is_neutral());
    for j in s.graph.nodes() {
        let Some(global) = system.global_reputation(j) else {
            continue;
        };
        for i in s.graph.nodes() {
            let gclr = system.gclr(i, j).expect("defined when opinions exist");
            assert!(
                (gclr - global).abs() < 1e-12,
                "({i}, {j}): {gclr} vs {global}"
            );
        }
    }
}

#[test]
fn dimension_mismatch_is_reported() {
    let s = scenario();
    let trust = differential_gossip::trust::TrustMatrix::new(10); // wrong size
    let err = ReputationSystem::new(&s.graph, trust, s.weights);
    assert!(err.is_err());
}
