//! Vendored minimal subset of the `rand` 0.9 API.
//!
//! The build environment has no crates.io access, so this crate provides
//! exactly the surface the workspace uses: [`RngCore`], [`Rng`]
//! (`random`, `random_range`, `random_bool`, `sample`-free), [`SeedableRng`],
//! [`seq::SliceRandom::shuffle`] and [`seq::index::sample`]. Generators are
//! deterministic; statistical quality is adequate for simulation but this is
//! **not** a cryptographic library.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible uniformly "at random" by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange {
    /// The element type.
    type Output;
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniformly random value within `range`.
    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.draw(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from the full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 (the same scheme
    /// upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Construct by drawing the seed from another RNG.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related helpers: shuffling and index sampling.

    use crate::{Rng, RngCore};

    /// Extension trait adding shuffling to slices.
    pub trait SliceRandom {
        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! Sampling of distinct indices from `0..length`.

        use crate::{Rng, RngCore};

        /// Distinct indices produced by [`sample`].
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterate over the sampled indices.
            pub fn iter(&self) -> std::slice::Iter<'_, usize> {
                self.0.iter()
            }

            /// Convert into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices uniformly from `0..length`
        /// (partial Fisher–Yates). Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut indices: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                indices.swap(i, j);
            }
            indices.truncate(amount);
            IndexVec(indices)
        }
    }
}

pub mod rngs {
    //! Simple non-cryptographic generators.

    use crate::{RngCore, SeedableRng};

    /// xoshiro256++-style small fast generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state would be a fixed point.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 1, 2];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.random_range(5usize..17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = Counter(11);
        let s = sample(&mut rng, 10, 4);
        let v = s.into_vec();
        assert_eq!(v.len(), 4);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "duplicates in {v:?}");
        assert!(v.iter().all(|&i| i < 10));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = crate::rngs::SmallRng::seed_from_u64(42);
        let mut b = crate::rngs::SmallRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
