//! Vendored `#[derive(Error)]` macro (no syn/quote).
//!
//! Supports the enum forms this workspace uses:
//!
//! * `#[error("fmt string with {named} or {0} placeholders")]` on unit,
//!   tuple and struct variants (positional `{0}` placeholders are rewritten
//!   to the generated `_0` bindings),
//! * `#[error(transparent)]` delegating `Display` to the single field,
//! * `#[from]` on a single-field variant, generating a `From` impl and
//!   wiring `Error::source()`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum DisplayAttr {
    /// `#[error("...", args...)]` — the raw literal plus trailing args.
    Format(String),
    /// `#[error(transparent)]`
    Transparent,
}

#[derive(Debug, Clone)]
enum VariantFields {
    Unit,
    /// Tuple fields; the flag marks `#[from]`/`#[source]` per field, the
    /// string holds the field's type tokens.
    Tuple(Vec<(bool, String)>),
    /// Named fields: (has_from, name, type tokens).
    Named(Vec<(bool, String, String)>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    display: DisplayAttr,
    fields: VariantFields,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Leading attributes of a token run: returns (attr bodies, rest).
fn take_attrs(tokens: &[TokenTree]) -> (Vec<Vec<TokenTree>>, &[TokenTree]) {
    let mut attrs = Vec::new();
    let mut rest = tokens;
    loop {
        match rest {
            [TokenTree::Punct(p), TokenTree::Group(g), tail @ ..] if p.as_char() == '#' => {
                attrs.push(g.stream().into_iter().collect());
                rest = tail;
            }
            _ => return (attrs, rest),
        }
    }
}

/// Is this attr body (`error(...)` / `from` / `doc ...`) the given ident?
fn attr_ident(body: &[TokenTree]) -> Option<String> {
    match body.first() {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_display(body: &[TokenTree]) -> Result<DisplayAttr, String> {
    // body = [error, (args)]
    let args = match body.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        other => return Err(format!("malformed #[error] attribute: {other:?}")),
    };
    match args.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "transparent" => {
            Ok(DisplayAttr::Transparent)
        }
        Some(TokenTree::Literal(_)) => {
            // Keep the full arg list verbatim (literal + any format args).
            Ok(DisplayAttr::Format(tokens_to_string(&args)))
        }
        other => Err(format!("unsupported #[error] form: {other:?}")),
    }
}

fn field_has_from(attrs: &[Vec<TokenTree>]) -> bool {
    attrs
        .iter()
        .any(|a| matches!(attr_ident(a).as_deref(), Some("from") | Some("source")))
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

fn parse_fields(group: &proc_macro::Group) -> Result<VariantFields, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match group.delimiter() {
        Delimiter::Parenthesis => {
            let mut fields = Vec::new();
            for seg in split_commas(&tokens) {
                let (attrs, rest) = take_attrs(&seg);
                if rest.is_empty() {
                    continue;
                }
                fields.push((field_has_from(&attrs), tokens_to_string(rest)));
            }
            Ok(VariantFields::Tuple(fields))
        }
        Delimiter::Brace => {
            let mut fields = Vec::new();
            for seg in split_commas(&tokens) {
                let (attrs, rest) = take_attrs(&seg);
                if rest.is_empty() {
                    continue;
                }
                let name = match rest.first() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => return Err(format!("unsupported field: {other:?}")),
                };
                // rest = name ':' type...
                let ty = tokens_to_string(rest.get(2..).unwrap_or(&[]));
                fields.push((field_has_from(&attrs), name, ty));
            }
            Ok(VariantFields::Named(fields))
        }
        other => Err(format!("unsupported field delimiter {other:?}")),
    }
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for seg in split_commas(tokens) {
        let (attrs, rest) = take_attrs(&seg);
        if rest.is_empty() {
            continue;
        }
        let name = match &rest[0] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("unsupported variant: {other:?}")),
        };
        let display = attrs
            .iter()
            .find(|a| attr_ident(a).as_deref() == Some("error"))
            .map(|a| parse_display(a))
            .transpose()?
            .ok_or_else(|| format!("variant `{name}` is missing #[error(...)]"))?;
        let fields = match rest.get(1) {
            None => VariantFields::Unit,
            Some(TokenTree::Group(g)) => parse_fields(g)?,
            other => return Err(format!("unsupported variant body: {other:?}")),
        };
        variants.push(Variant {
            name,
            display,
            fields,
        });
    }
    Ok(variants)
}

/// Rewrite positional `{0}` / `{1:...}` placeholders to `{_0}` bindings
/// inside the *literal* part of a format-arg list.
fn rewrite_positional(fmt_args: &str) -> String {
    let mut out = String::with_capacity(fmt_args.len() + 8);
    let mut chars = fmt_args.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '{' {
            if let Some(&next) = chars.peek() {
                if next == '{' {
                    // Escaped brace.
                    out.push(chars.next().unwrap());
                } else if next.is_ascii_digit() {
                    out.push('_');
                }
            }
        }
    }
    out
}

/// Generate `Display`, `Error` and `From` impls for the enum.
fn generate(name: &str, variants: &[Variant]) -> Result<String, String> {
    let mut display_arms = Vec::new();
    let mut source_arms = Vec::new();
    let mut from_impls = Vec::new();

    for v in variants {
        let vn = &v.name;
        let (pattern, transparent_binding) = match &v.fields {
            VariantFields::Unit => (format!("{name}::{vn}"), None),
            VariantFields::Tuple(fields) => {
                let binds: Vec<String> = (0..fields.len()).map(|i| format!("_{i}")).collect();
                (
                    format!("{name}::{vn}({})", binds.join(", ")),
                    Some("_0".to_string()),
                )
            }
            VariantFields::Named(fields) => {
                let binds: Vec<String> = fields.iter().map(|(_, n, _)| n.clone()).collect();
                (
                    format!("{name}::{vn} {{ {} }}", binds.join(", ")),
                    fields.first().map(|(_, n, _)| n.clone()),
                )
            }
        };

        match &v.display {
            DisplayAttr::Format(fmt_args) => {
                let rewritten = rewrite_positional(fmt_args);
                display_arms.push(format!("{pattern} => ::core::write!(__f, {rewritten}),"));
            }
            DisplayAttr::Transparent => {
                let bind = transparent_binding
                    .clone()
                    .ok_or_else(|| format!("transparent variant `{vn}` has no field"))?;
                display_arms.push(format!(
                    "{pattern} => ::core::fmt::Display::fmt({bind}, __f),"
                ));
            }
        }

        // source(): transparent and #[from]/#[source] fields delegate.
        let source_field = match (&v.display, &v.fields) {
            (DisplayAttr::Transparent, VariantFields::Tuple(_)) => Some("_0".to_string()),
            (_, VariantFields::Tuple(fields)) => fields
                .iter()
                .position(|(from, _)| *from)
                .map(|i| format!("_{i}")),
            (_, VariantFields::Named(fields)) => fields
                .iter()
                .find(|(from, _, _)| *from)
                .map(|(_, n, _)| n.clone()),
            _ => None,
        };
        if let Some(field) = source_field {
            source_arms.push(format!(
                "{pattern} => ::core::option::Option::Some({field}),"
            ));
        }

        // From impls for #[from] single-field variants.
        match &v.fields {
            VariantFields::Tuple(fields) => {
                if fields.len() == 1 && fields[0].0 {
                    let ty = &fields[0].1;
                    from_impls.push(format!(
                        "#[automatically_derived]\n\
                         impl ::core::convert::From<{ty}> for {name} {{\n\
                         fn from(value: {ty}) -> Self {{ {name}::{vn}(value) }}\n}}"
                    ));
                }
            }
            VariantFields::Named(fields) => {
                if fields.len() == 1 && fields[0].0 {
                    let (_, fname, ty) = &fields[0];
                    from_impls.push(format!(
                        "#[automatically_derived]\n\
                         impl ::core::convert::From<{ty}> for {name} {{\n\
                         fn from(value: {ty}) -> Self {{ {name}::{vn} {{ {fname}: value }} }}\n}}"
                    ));
                }
            }
            VariantFields::Unit => {}
        }
    }

    let source_body = if source_arms.is_empty() {
        "::core::option::Option::None".to_string()
    } else {
        format!(
            "#[allow(unused_variables)]\nmatch self {{\n{}\n_ => ::core::option::Option::None,\n}}",
            source_arms.join("\n")
        )
    };

    Ok(format!(
        "#[automatically_derived]\n\
         impl ::core::fmt::Display for {name} {{\n\
         #[allow(unused_variables, clippy::used_underscore_binding)]\n\
         fn fmt(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
         match self {{\n{display}\n}}\n}}\n}}\n\
         #[automatically_derived]\n\
         impl ::std::error::Error for {name} {{\n\
         fn source(&self) -> ::core::option::Option<&(dyn ::std::error::Error + 'static)> {{\n\
         {source_body}\n}}\n}}\n\
         {from_impls}",
        display = display_arms.join("\n"),
        from_impls = from_impls.join("\n")
    ))
}

/// Derive `Display` + `std::error::Error` (+ `From` for `#[from]` fields).
#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    // Find `enum Name { ... }`.
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "enum" {
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => return compile_error(&format!("expected enum name, got {other:?}")),
                };
                let body = match tokens.get(i + 2) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        g.stream().into_iter().collect::<Vec<_>>()
                    }
                    other => return compile_error(&format!("expected enum body, got {other:?}")),
                };
                return match parse_variants(&body).and_then(|vs| generate(&name, &vs)) {
                    Ok(code) => code.parse().unwrap_or_else(|e| {
                        compile_error(&format!("thiserror generation failed: {e}"))
                    }),
                    Err(e) => compile_error(&e),
                };
            }
            if id.to_string() == "struct" {
                return compile_error(
                    "vendored thiserror derive supports enums only (structs unused here)",
                );
            }
        }
        i += 1;
    }
    compile_error("could not find enum declaration")
}
