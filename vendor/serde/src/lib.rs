//! Vendored minimal `serde` facade.
//!
//! Upstream serde's serializer/visitor architecture is replaced by a single
//! JSON-shaped [`__value::Value`] intermediate: `Serialize` lowers a value
//! into it, `Deserialize` lifts one out of it. The vendored `serde_json`
//! crate supplies the text round-trip. This supports exactly the container
//! attributes the workspace uses (`transparent`, `try_from`/`into`).

pub use serde_derive::{Deserialize, Serialize};

#[doc(hidden)]
pub mod __value {
    //! The JSON-shaped intermediate value model.

    use std::fmt;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (stored as `f64`; integers print without a decimal
        /// point).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object; insertion order is preserved.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Member lookup for objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        fn write_compact(&self, out: &mut String) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Number(n) => write_number(*n, out),
                Value::String(s) => write_json_string(s, out),
                Value::Array(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write_compact(out);
                    }
                    out.push(']');
                }
                Value::Object(entries) => {
                    out.push('{');
                    for (i, (k, v)) in entries.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write_json_string(k, out);
                        out.push(':');
                        v.write_compact(out);
                    }
                    out.push('}');
                }
            }
        }

        fn write_pretty(&self, out: &mut String, indent: usize) {
            const STEP: usize = 2;
            let pad = |out: &mut String, level: usize| {
                for _ in 0..level * STEP {
                    out.push(' ');
                }
            };
            match self {
                Value::Array(items) if !items.is_empty() => {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(",\n");
                        }
                        pad(out, indent + 1);
                        item.write_pretty(out, indent + 1);
                    }
                    out.push('\n');
                    pad(out, indent);
                    out.push(']');
                }
                Value::Object(entries) if !entries.is_empty() => {
                    out.push_str("{\n");
                    for (i, (k, v)) in entries.iter().enumerate() {
                        if i > 0 {
                            out.push_str(",\n");
                        }
                        pad(out, indent + 1);
                        write_json_string(k, out);
                        out.push_str(": ");
                        v.write_pretty(out, indent + 1);
                    }
                    out.push('\n');
                    pad(out, indent);
                    out.push('}');
                }
                other => other.write_compact(out),
            }
        }

        /// Render as pretty-printed JSON (2-space indent).
        pub fn to_string_pretty(&self) -> String {
            let mut out = String::new();
            self.write_pretty(&mut out, 0);
            out
        }
    }

    fn write_number(n: f64, out: &mut String) {
        use std::fmt::Write as _;
        if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 && n.is_finite() {
            let _ = write!(out, "{}", n as i64);
        } else if n.is_finite() {
            let _ = write!(out, "{n}");
        } else {
            // JSON has no NaN/Infinity; null is the conventional fallback.
            out.push_str("null");
        }
    }

    fn write_json_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    use std::fmt::Write as _;
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    impl fmt::Display for Value {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let mut out = String::new();
            self.write_compact(&mut out);
            f.write_str(&out)
        }
    }

    /// Deserialization error.
    #[derive(Debug, Clone, PartialEq)]
    pub struct DeError {
        msg: String,
    }

    impl DeError {
        /// Construct from any message.
        pub fn custom(msg: impl fmt::Display) -> Self {
            Self {
                msg: msg.to_string(),
            }
        }
    }

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deserialization error: {}", self.msg)
        }
    }

    impl std::error::Error for DeError {}

    /// Helper used by derived code: fetch an object field or error.
    pub fn expect_field<'v>(v: &'v Value, ty: &str, field: &str) -> Result<&'v Value, DeError> {
        v.get(field)
            .ok_or_else(|| DeError::custom(format!("missing field `{field}` for `{ty}`")))
    }

    /// Keys usable for JSON object maps (`BTreeMap` serialization).
    pub trait MapKey: Ord + Sized {
        /// Render as an object key.
        fn to_key(&self) -> String;
        /// Parse back from an object key.
        fn from_key(key: &str) -> Result<Self, DeError>;
    }

    impl MapKey for String {
        fn to_key(&self) -> String {
            self.clone()
        }

        fn from_key(key: &str) -> Result<Self, DeError> {
            Ok(key.to_owned())
        }
    }

    macro_rules! impl_map_key_int {
        ($($t:ty),*) => {$(
            impl MapKey for $t {
                fn to_key(&self) -> String {
                    self.to_string()
                }

                fn from_key(key: &str) -> Result<Self, DeError> {
                    key.parse()
                        .map_err(|_| DeError::custom(format!("invalid integer key `{key}`")))
                }
            }
        )*};
    }
    impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

use __value::{DeError, MapKey, Value};
use std::collections::{BTreeMap, HashMap};

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Lower into the JSON value model.
    fn __to_value(&self) -> Value;
}

/// Types that can lift themselves out of a [`Value`].
pub trait Deserialize: Sized {
    /// Lift out of the JSON value model.
    fn __from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn __to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn __from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other}"))),
        }
    }
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn __from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {}"),
                        other
                    ))),
                }
            }
        }
    )*};
}
impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn __to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn __from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other}"))),
        }
    }
}

impl Serialize for str {
    fn __to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn __to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn __to_value(&self) -> Value {
        (**self).__to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn __from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::__from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn __to_value(&self) -> Value {
        match self {
            Some(v) => v.__to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn __from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::__from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn __to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.__to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn __from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx,)+].len();
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected {expected}-tuple, got {} items",
                                items.len()
                            )));
                        }
                        Ok(($($name::__from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::custom(format!("expected array, got {other}"))),
                }
            }
        }
    )*};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn __to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.__to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn __from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::__from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other}"))),
        }
    }
}

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn __to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.__to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: MapKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn __from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::__from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other}"))),
        }
    }
}

impl Serialize for Value {
    fn __to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn __from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::__from_value(&42u32.__to_value()).unwrap(), 42);
        assert_eq!(f64::__from_value(&0.75f64.__to_value()).unwrap(), 0.75);
        assert!(bool::__from_value(&true.__to_value()).unwrap());
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::__from_value(&v.__to_value()).unwrap(), v);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(1u32.__to_value().to_string(), "1");
        assert_eq!((-3i64).__to_value().to_string(), "-3");
        assert_eq!(1.5f64.__to_value().to_string(), "1.5");
    }

    #[test]
    fn btreemap_uses_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(7u32, 0.5f64);
        assert_eq!(m.__to_value().to_string(), "{\"7\":0.5}");
        let back = BTreeMap::<u32, f64>::__from_value(&m.__to_value()).unwrap();
        assert_eq!(back, m);
    }
}
