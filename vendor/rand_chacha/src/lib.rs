//! Vendored ChaCha-based RNGs (`ChaCha8Rng` / `ChaCha12Rng` / `ChaCha20Rng`)
//! over the vendored `rand` core traits.
//!
//! This is a real ChaCha keystream implementation (RFC 8439 block function
//! with the round count cut to 8/12/20), so the statistical quality matches
//! upstream. Output is deterministic for a given seed but is **not**
//! guaranteed word-for-word identical to the upstream `rand_chacha` stream.

use rand::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: 16 output words from key, counter and `ROUNDS`.
fn block<const ROUNDS: usize>(key: &[u32; 8], counter: u64, out: &mut [u32; 16]) {
    let mut state: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = state[i].wrapping_add(initial[i]);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                block::<$rounds>(&self.key, self.counter, &mut self.buffer);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                Self {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16, // force refill on first draw
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: the fast simulation RNG."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds (full-strength).");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rfc8439_chacha20_block_matches() {
        // RFC 8439 §2.3.2 test vector: key 00 01 .. 1f, counter 1,
        // nonce 0 (our stream uses a zero nonce, and the RFC vector's
        // nonce bytes are zero except a 0x09/0x4a that we can't set —
        // so check the *structure* instead: 20-round block with zero
        // key/counter is a fixed known-good value computed once.
        let key = [0u32; 8];
        let mut out = [0u32; 16];
        super::block::<20>(&key, 0, &mut out);
        // First word of ChaCha20 keystream for all-zero key/nonce/counter
        // (little-endian word of the well-known vector
        // 76 b8 e0 ad a0 f1 3d 90 ...).
        assert_eq!(out[0].to_le_bytes(), [0x76, 0xb8, 0xe0, 0xad]);
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi, "poor coverage of the unit interval");
    }
}
