//! Vendored minimal `thiserror` facade.
//!
//! Re-exports the vendored `Error` derive, which implements
//! `core::fmt::Display`, `std::error::Error` (with `source()`), and `From`
//! for `#[from]` fields — covering the `#[error("...")]`,
//! `#[error(transparent)]` and `#[from]` forms this workspace uses.

pub use thiserror_impl::Error;
