//! Vendored multi-threaded subset of `rayon`.
//!
//! Provides the surface this workspace uses — `par_iter` /
//! `into_par_iter` with `map` / `filter` / `for_each` / `sum` /
//! `collect`, plus `ThreadPoolBuilder` → `ThreadPool::install` — backed
//! by `std::thread::scope` instead of a work-stealing deque. Each
//! adaptor stage materialises its input, splits it into one contiguous
//! chunk per worker, maps the chunks on scoped threads and concatenates
//! the results in order, so **output order always matches input order**
//! regardless of thread count. Every experiment additionally seeds
//! per-item RNG streams, so results are bit-for-bit reproducible either
//! way; only wall-clock changes.
//!
//! With one worker (or one-element inputs) everything runs inline on the
//! calling thread — zero spawn overhead — which keeps the `Sequential`
//! engine honest when benchmarked against the fan-out path on small
//! machines.

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel iterators fan out over: the
/// innermost [`ThreadPool::install`] override, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|t| match t.get() {
        Some(n) => n,
        None => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    })
}

/// Error from [`ThreadPoolBuilder::build`] (kept for API compatibility;
/// the vendored builder cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped-thread pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (0 = use available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = (n > 0).then_some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle fixing the fan-out width of parallel iterators run inside
/// [`install`](ThreadPool::install). Workers are spawned per parallel
/// region with `std::thread::scope`, not kept alive in between.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count governing every parallel
    /// iterator it executes. Nested installs restore the outer setting,
    /// and the restore also happens on unwind (a caught panic inside
    /// `op` must not leave the width pinned for unrelated later work).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|t| t.replace(self.num_threads)));
        op()
    }

    /// The fan-out width parallel iterators will use under this pool.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
    }
}

/// Apply `f` to every item, fanning out over the current thread count;
/// the output preserves input order exactly.
fn parallel_map_vec<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut out: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut flat = Vec::with_capacity(out.iter().map(Vec::len).sum());
    for chunk in &mut out {
        flat.append(chunk);
    }
    flat
}

/// A parallel iterator: an ordered batch of items plus a deferred
/// per-item computation.
pub trait ParallelIterator: Sized + Send {
    /// The item type produced.
    type Item: Send;

    /// Execute the pipeline, returning items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Map each item through `f` (applied in parallel).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Keep only items satisfying `pred`.
    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, pred }
    }

    /// Run `f` on every item for its side effect.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        parallel_map_vec(self.run(), &|item| f(item));
    }

    /// Collect into any `FromIterator` target, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Sum the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }

    /// Number of items currently in the batch.
    fn count(self) -> usize {
        self.run().len()
    }
}

/// Base parallel iterator over an owned, materialised batch.
pub struct IntoParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Parallel `map` adaptor.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map_vec(self.base.run(), &self.f)
    }
}

/// Parallel `filter` adaptor.
pub struct Filter<P, F> {
    base: P,
    pred: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync + Send,
{
    type Item = P::Item;

    fn run(self) -> Vec<P::Item> {
        parallel_map_vec(self.base.run(), &|item| (self.pred)(&item).then_some(item))
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Materialise into an ordered parallel batch.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = IntoParIter<I::Item>;

    fn into_par_iter(self) -> IntoParIter<I::Item> {
        IntoParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send + 'a;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Iterate by reference.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = IntoParIter<Self::Item>;

    fn par_iter(&'a self) -> IntoParIter<Self::Item> {
        IntoParIter {
            items: self.into_iter().collect(),
        }
    }
}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn by_value_matches_sequential() {
        let doubled: Vec<i32> = (0..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn by_ref_matches_sequential() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn order_is_preserved_at_every_thread_count() {
        let expect: Vec<usize> = (0..1000).map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 16] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<usize> =
                pool.install(|| (0..1000).into_par_iter().map(|x| x * x).collect());
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn work_actually_fans_out_over_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..64).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
        assert!(ids.into_inner().unwrap().len() > 1, "never left one thread");
    }

    #[test]
    fn filter_keeps_order() {
        let odd: Vec<i32> = (0..20).into_par_iter().filter(|x| x % 2 == 1).collect();
        assert_eq!(odd, vec![1, 3, 5, 7, 9, 11, 13, 15, 17, 19]);
    }

    #[test]
    fn collect_into_result_short_circuit_semantics() {
        let ok: Result<Vec<i32>, String> = (0..4).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), vec![0, 1, 2, 3]);
        let err: Result<Vec<i32>, String> = (0..4)
            .into_par_iter()
            .map(|x| {
                if x == 2 {
                    Err("boom".to_owned())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn install_override_nests_and_restores() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn install_override_is_restored_on_panic() {
        let ambient = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let caught = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), ambient);
    }
}
