//! Vendored multi-threaded subset of `rayon`.
//!
//! Provides the surface this workspace uses — `par_iter` /
//! `into_par_iter` with `map` / `filter` / `for_each` / `sum` /
//! `collect`, plus `ThreadPoolBuilder` → `ThreadPool::install` and the
//! cost-aware [`map_weighted`] — backed by a **work-stealing block
//! scheduler** over `std::thread::scope` workers.
//!
//! # Scheduling model
//!
//! Input items are split into contiguous *blocks*, each tagged with its
//! global start index. Every worker owns a mutex-guarded deque seeded
//! with a contiguous run of blocks; it pops from the **front** of its
//! own deque (lowest indices first, preserving the cache-friendly sweep
//! order of the old chunked scheduler) and, when its deque runs dry,
//! **steals from the back** of a victim's deque (the work the victim
//! would reach last). Blocks never re-enter a deque, so once every
//! deque is empty a worker can retire.
//!
//! Two seeding policies share that executor:
//!
//! * the unweighted adaptors ([`ParallelIterator::map`] etc.) split the
//!   input into `OVERPARTITION` blocks per worker — enough
//!   granularity for stealing to even out moderate imbalance without
//!   giving up contiguous sweeps;
//! * [`map_weighted`] makes every item its own block and seeds the
//!   deques greedily by **descending caller-estimated cost** (classic
//!   LPT assignment, ties broken by ascending index so the seeding is
//!   deterministic). This is the shard scheduler of the round engines:
//!   per-shard cost estimates place the heavy shards first and stealing
//!   mops up the estimation error.
//!
//! # Determinism
//!
//! Every block carries its global start index and workers commit
//! results *by index*: whatever order blocks execute or migrate in, the
//! output vector is assembled in input order. **Output order and
//! content are therefore independent of thread count, steal order and
//! timing.** Every experiment additionally seeds per-item RNG streams,
//! so results are bit-for-bit reproducible either way; only wall-clock
//! changes (pinned by `tests/engine_equivalence.rs` at the workspace
//! level and the order tests below).
//!
//! With one worker (or one-element inputs) everything runs inline on
//! the calling thread — zero spawn overhead — which keeps the
//! `Sequential` engine honest when benchmarked against the fan-out path
//! on small machines.
//!
//! # Pool-width propagation (nested regions)
//!
//! The effective width is a thread-local override installed by
//! [`ThreadPool::install`]. Workers **inherit the spawning region's
//! effective width**, so a parallel region nested inside a worker
//! honours the innermost `install` instead of silently falling back to
//! the machine width (the historical bug: the override lived only on
//! the calling thread, so nested regions ignored the pool; pinned by
//! `workers_inherit_the_installed_width`). An `install` *inside* a
//! worker still takes precedence for the code it wraps — innermost
//! wins.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::Mutex;

thread_local! {
    /// Thread-count override: installed by [`ThreadPool::install`] on
    /// the calling thread and *inherited* by spawned workers, so nested
    /// parallel regions honour the innermost pool.
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel iterators fan out over: the
/// innermost [`ThreadPool::install`] override (inherited across worker
/// spawns), else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|t| match t.get() {
        Some(n) => n,
        None => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    })
}

/// Error from [`ThreadPoolBuilder::build`] (kept for API compatibility;
/// the vendored builder cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped-thread pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (0 = use available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = (n > 0).then_some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle fixing the fan-out width of parallel iterators run inside
/// [`install`](ThreadPool::install). Workers are spawned per parallel
/// region with `std::thread::scope`, not kept alive in between.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count governing every parallel
    /// iterator it executes — including regions nested inside workers,
    /// which inherit the width. Nested installs restore the outer
    /// setting, and the restore also happens on unwind (a caught panic
    /// inside `op` must not leave the width pinned for unrelated later
    /// work).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|t| t.replace(self.num_threads)));
        op()
    }

    /// The fan-out width parallel iterators will use under this pool.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
    }
}

/// Blocks seeded per worker by the unweighted adaptors: enough
/// granularity for stealing to even out moderate per-item imbalance
/// without giving up contiguous sweeps.
const OVERPARTITION: usize = 4;

/// One schedulable unit: a contiguous run of items plus the global
/// index of its first item (the result commit offset).
struct Block<T> {
    start: usize,
    items: Vec<T>,
}

/// Execute seeded deques on `threads` scoped workers, stealing between
/// them, and commit the results in global input order.
fn execute_blocks<T: Send, R: Send>(
    deques: Vec<VecDeque<Block<T>>>,
    total: usize,
    f: &(impl Fn(T) -> R + Sync),
) -> Vec<R> {
    let threads = deques.len();
    let deques: Vec<Mutex<VecDeque<Block<T>>>> = deques.into_iter().map(Mutex::new).collect();
    let deques = &deques;
    // Workers inherit the *effective* width so nested parallel regions
    // honour the innermost installed pool instead of the machine width.
    let inherited = current_num_threads();
    let mut done: Vec<Vec<(usize, Vec<R>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                scope.spawn(move || {
                    POOL_THREADS.with(|t| t.set(Some(inherited)));
                    let mut out: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        // Own work first: pop the lowest-index block
                        // (front) to keep the sweep contiguous.
                        let block = deques[me].lock().expect("deque poisoned").pop_front();
                        let block = match block {
                            Some(b) => Some(b),
                            // Steal from the back of the first
                            // non-empty victim: the work its owner
                            // would reach last.
                            None => (1..threads).find_map(|d| {
                                deques[(me + d) % threads]
                                    .lock()
                                    .expect("deque poisoned")
                                    .pop_back()
                            }),
                        };
                        match block {
                            Some(b) => {
                                out.push((b.start, b.items.into_iter().map(f).collect()));
                            }
                            // Blocks never re-enter a deque, so one
                            // empty sweep means no work is left.
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    // Deterministic commit: every block lands at its start index,
    // regardless of which worker ran it or in what order.
    let mut chunks: Vec<(usize, Vec<R>)> = done.iter_mut().flat_map(std::mem::take).collect();
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut flat = Vec::with_capacity(total);
    for (start, mut chunk) in chunks {
        debug_assert_eq!(start, flat.len(), "blocks must tile the input");
        flat.append(&mut chunk);
    }
    flat
}

/// Apply `f` to every item, fanning out over the current thread count
/// with block stealing; the output preserves input order exactly.
fn parallel_map_vec<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let total = items.len();
    // OVERPARTITION blocks per worker, seeded as one contiguous run per
    // worker deque (worker w starts where the old chunked scheduler
    // would have started it; stealing replaces the old hard boundary).
    let blocks = (threads * OVERPARTITION).min(total);
    let block_len = total.div_ceil(blocks);
    let per_worker = blocks.div_ceil(threads);
    let mut deques: Vec<VecDeque<Block<T>>> = (0..threads).map(|_| VecDeque::new()).collect();
    let mut items = items;
    let mut start = total;
    // Split from the back so each split_off is O(moved suffix).
    let mut rev_blocks: Vec<Block<T>> = Vec::with_capacity(blocks);
    while !items.is_empty() {
        let at = items.len().saturating_sub(block_len);
        let chunk = items.split_off(at);
        start -= chunk.len();
        rev_blocks.push(Block {
            start,
            items: chunk,
        });
    }
    for (b, block) in rev_blocks.into_iter().rev().enumerate() {
        deques[(b / per_worker).min(threads - 1)].push_back(block);
    }
    execute_blocks(deques, total, f)
}

/// Map `items` through `f` on the current thread count, scheduling by
/// caller-estimated per-item `costs`: every item is its own block,
/// blocks are assigned to worker deques greedily by descending cost
/// (LPT; ties broken by ascending index, so seeding is deterministic)
/// and work-stealing absorbs whatever the estimates got wrong. The
/// output preserves input order exactly — like every adaptor here, the
/// result is independent of thread count and steal order.
///
/// This is the shard scheduler of the round engines: they pass per-shard
/// cost estimates (previous-round nnz + active-node counts) so one hot
/// shard no longer serialises the round.
///
/// # Panics
///
/// Panics if `costs.len() != items.len()`.
pub fn map_weighted<T: Send, R: Send>(
    items: Vec<T>,
    costs: &[u64],
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    assert_eq!(
        costs.len(),
        items.len(),
        "map_weighted: every item needs a cost"
    );
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(&f).collect();
    }
    let total = items.len();
    // LPT seeding: place items descending by cost onto the currently
    // lightest deque. Deterministic: sort is total (cost desc, index
    // asc) and the lightest-bin scan always takes the first minimum.
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_unstable_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut load = vec![0u64; threads];
    for idx in order {
        let w = (0..threads)
            .min_by_key(|&w| load[w])
            .expect("at least one worker");
        load[w] += costs[idx].max(1);
        assignment[w].push(idx);
    }
    // Each deque executes its items in ascending index order (front
    // pop), heavy-first only across deques, which keeps per-worker
    // sweeps roughly contiguous.
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut deques: Vec<VecDeque<Block<T>>> = Vec::with_capacity(threads);
    for mut bin in assignment {
        bin.sort_unstable();
        deques.push(
            bin.into_iter()
                .map(|idx| Block {
                    start: idx,
                    items: vec![slots[idx].take().expect("each index assigned once")],
                })
                .collect(),
        );
    }
    execute_blocks(deques, total, &f)
}

/// A parallel iterator: an ordered batch of items plus a deferred
/// per-item computation.
pub trait ParallelIterator: Sized + Send {
    /// The item type produced.
    type Item: Send;

    /// Execute the pipeline, returning items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Map each item through `f` (applied in parallel).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Keep only items satisfying `pred`.
    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, pred }
    }

    /// Run `f` on every item for its side effect.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        parallel_map_vec(self.run(), &|item| f(item));
    }

    /// Collect into any `FromIterator` target, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Sum the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }

    /// Number of items currently in the batch.
    fn count(self) -> usize {
        self.run().len()
    }
}

/// Base parallel iterator over an owned, materialised batch.
pub struct IntoParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Parallel `map` adaptor.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map_vec(self.base.run(), &self.f)
    }
}

/// Parallel `filter` adaptor.
pub struct Filter<P, F> {
    base: P,
    pred: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync + Send,
{
    type Item = P::Item;

    fn run(self) -> Vec<P::Item> {
        parallel_map_vec(self.base.run(), &|item| (self.pred)(&item).then_some(item))
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Materialise into an ordered parallel batch.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = IntoParIter<I::Item>;

    fn into_par_iter(self) -> IntoParIter<I::Item> {
        IntoParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send + 'a;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Iterate by reference.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = IntoParIter<Self::Item>;

    fn par_iter(&'a self) -> IntoParIter<Self::Item> {
        IntoParIter {
            items: self.into_iter().collect(),
        }
    }
}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn by_value_matches_sequential() {
        let doubled: Vec<i32> = (0..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn by_ref_matches_sequential() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn order_is_preserved_at_every_thread_count() {
        let expect: Vec<usize> = (0..1000).map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 16] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<usize> =
                pool.install(|| (0..1000).into_par_iter().map(|x| x * x).collect());
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn order_survives_forced_stealing() {
        // One pathological head item keeps worker 0 busy while the
        // others drain the rest of its deque by stealing; the output
        // must still be in input order.
        for threads in [2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let expect: Vec<u64> = (0..500u64).collect();
            let got: Vec<u64> = pool.install(|| {
                (0..500u64)
                    .into_par_iter()
                    .map(|x| {
                        if x == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(20));
                        }
                        x
                    })
                    .collect()
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn work_actually_fans_out_over_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..64).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
        assert!(ids.into_inner().unwrap().len() > 1, "never left one thread");
    }

    #[test]
    fn stealing_spreads_a_hot_deque() {
        // All the heavy work is seeded into ONE worker's deque region
        // (the first chunk); with stealing, other threads must end up
        // executing some of it.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..64u64)
                .into_par_iter()
                .map(|x| {
                    // Heavy head: the first quarter (worker 0's seed) is
                    // 20x the work of the rest.
                    let spins = if x < 16 { 200_000 } else { 10_000 };
                    let mut acc = x;
                    for i in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    ids.lock().unwrap().insert(std::thread::current().id());
                    acc
                })
                .for_each(drop);
        });
        assert!(
            ids.into_inner().unwrap().len() > 1,
            "hot deque never got stolen from"
        );
    }

    #[test]
    fn filter_keeps_order() {
        let odd: Vec<i32> = (0..20).into_par_iter().filter(|x| x % 2 == 1).collect();
        assert_eq!(odd, vec![1, 3, 5, 7, 9, 11, 13, 15, 17, 19]);
    }

    #[test]
    fn collect_into_result_short_circuit_semantics() {
        let ok: Result<Vec<i32>, String> = (0..4).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), vec![0, 1, 2, 3]);
        let err: Result<Vec<i32>, String> = (0..4)
            .into_par_iter()
            .map(|x| {
                if x == 2 {
                    Err("boom".to_owned())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn map_weighted_preserves_order_for_any_cost_shape() {
        let cost_shapes: [fn(usize) -> u64; 4] = [
            |_| 1,                              // uniform
            |i| 100 - i as u64 % 100,           // descending
            |i| i as u64,                       // ascending
            |i| if i == 7 { 1_000 } else { 1 }, // one hot item
        ];
        for shape in cost_shapes {
            let costs: Vec<u64> = (0..200).map(shape).collect();
            for threads in [1, 2, 3, 8] {
                let pool = ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let got: Vec<usize> =
                    pool.install(|| map_weighted((0..200usize).collect(), &costs, |x| x * 3));
                let expect: Vec<usize> = (0..200).map(|x| x * 3).collect();
                assert_eq!(got, expect, "threads = {threads}");
            }
        }
    }

    #[test]
    fn map_weighted_runs_on_multiple_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids = Mutex::new(HashSet::new());
        let costs: Vec<u64> = (0..64).map(|i| 1 + i % 7).collect();
        pool.install(|| {
            map_weighted((0..64u64).collect(), &costs, |x| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
                x
            })
        });
        assert!(ids.into_inner().unwrap().len() > 1, "never left one thread");
    }

    #[test]
    #[should_panic(expected = "every item needs a cost")]
    fn map_weighted_rejects_mismatched_costs() {
        map_weighted(vec![1, 2, 3], &[1, 2], |x| x);
    }

    #[test]
    fn install_override_nests_and_restores() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn workers_inherit_the_installed_width() {
        // Regression: the width override used to live only on the
        // calling thread, so a parallel region nested inside a worker
        // silently ignored the pool and used the machine width.
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let widths: Vec<usize> = pool.install(|| {
            (0..8)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(
            widths.iter().all(|&w| w == 3),
            "workers saw widths {widths:?}, expected all 3"
        );
    }

    #[test]
    fn nested_install_inside_a_worker_wins() {
        // Innermost pool takes precedence even when the install happens
        // on a worker thread of an outer region.
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let widths: Vec<(usize, usize)> = outer.install(|| {
            (0..4)
                .into_par_iter()
                .map(|_| {
                    let before = current_num_threads();
                    let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
                    let inside = inner.install(current_num_threads);
                    assert_eq!(current_num_threads(), before, "restore after install");
                    (before, inside)
                })
                .collect()
        });
        for (before, inside) in widths {
            assert_eq!(before, 2);
            assert_eq!(inside, 5);
        }
    }

    #[test]
    fn install_override_is_restored_on_panic() {
        let ambient = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let caught = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), ambient);
    }
}
