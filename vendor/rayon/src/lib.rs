//! Vendored sequential stand-in for `rayon`.
//!
//! `into_par_iter()` / `par_iter()` return the ordinary sequential
//! iterators, so all adaptor chains (`map`, `flat_map`, `collect`, ...)
//! compile and run unchanged — just on one core. Every experiment seeds
//! per-combo RNGs precisely so results are identical either way; only
//! wall-clock differs. Swapping in real rayon later is a manifest change.

/// Conversion into a "parallel" (here: sequential) iterator by value.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Iterate by value.
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<I: IntoIterator> IntoParallelIterator for I {}

/// Conversion into a "parallel" (here: sequential) iterator by reference.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed iterator type.
    type Iter: Iterator;

    /// Iterate by reference.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn by_value_matches_sequential() {
        let doubled: Vec<i32> = (0..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn by_ref_matches_sequential() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 6);
    }
}
