//! Vendored `#[tokio::test]` attribute macro.
//!
//! Rewrites `async fn name() { body }` into a plain `#[test]` fn that
//! drives the body with the vendored runtime's `block_on`. Attribute
//! arguments (`flavor`, `worker_threads`, ...) are accepted and ignored —
//! the vendored runtime is thread-per-task regardless.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Attribute macro backing `#[tokio::test]`.
#[proc_macro_attribute]
pub fn test(_args: TokenStream, item: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();

    // Split: [passthrough attrs / vis ...] "async" "fn" name "(...)" [-> ret] "{...}"
    let async_pos = tokens
        .iter()
        .position(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "async"));
    let Some(async_pos) = async_pos else {
        return compile_error("#[tokio::test] requires an `async fn`");
    };
    let fn_name = match tokens.get(async_pos + 2) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return compile_error(&format!("expected fn name, got {other:?}")),
    };
    let body = match tokens.last() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => return compile_error(&format!("expected fn body, got {other:?}")),
    };

    // Everything before `async` (doc comments, other attributes, visibility)
    // passes through unchanged.
    let prefix: TokenStream = tokens[..async_pos].iter().cloned().collect();

    let wrapper_body: TokenStream = "::tokio::runtime::Runtime::new()\
         .expect(\"vendored runtime\")\
         .block_on(async move { __tokio_test_body })"
        .parse()
        .unwrap();
    // Substitute the real body for the placeholder ident.
    let wrapper_body: TokenStream = wrapper_body
        .into_iter()
        .map(|t| substitute(t, &body))
        .collect();

    let mut out = TokenStream::new();
    out.extend(
        "#[::core::prelude::v1::test]"
            .parse::<TokenStream>()
            .unwrap(),
    );
    out.extend(prefix);
    out.extend(format!("fn {fn_name}()").parse::<TokenStream>().unwrap());
    out.extend([TokenTree::Group(Group::new(Delimiter::Brace, wrapper_body))]);
    out
}

/// Recursively replace the `__tokio_test_body` placeholder ident.
fn substitute(tree: TokenTree, body: &TokenStream) -> TokenTree {
    match tree {
        TokenTree::Ident(ref id) if id.to_string() == "__tokio_test_body" => {
            TokenTree::Group(Group::new(Delimiter::Brace, body.clone()))
        }
        TokenTree::Group(g) => {
            let inner: TokenStream = g
                .stream()
                .into_iter()
                .map(|t| substitute(t, body))
                .collect();
            TokenTree::Group(Group::new(g.delimiter(), inner))
        }
        other => other,
    }
}
