//! Vendored minimal `criterion` harness.
//!
//! Keeps the bench-definition API (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_with_input`, `Bencher::iter`) so
//! the workspace's benches compile and run offline. Measurement is a
//! simple best-of-N wall clock — adequate for relative comparisons, not a
//! statistical replacement for real criterion.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing driver handed to the bench closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    best: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping the best of the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            drop(out);
            self.best = Some(match self.best {
                Some(best) if best <= elapsed => best,
                _ => elapsed,
            });
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed repetitions per benchmark (criterion-compatible
    /// knob; the vendored harness keeps the best observation).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size.min(self.criterion.max_samples),
            best: None,
        };
        f(&mut bencher, input);
        self.report(&id, bencher.best);
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size.min(self.criterion.max_samples),
            best: None,
        };
        f(&mut bencher);
        self.report(&id, bencher.best);
        self
    }

    fn report(&self, id: &BenchmarkId, best: Option<Duration>) {
        match best {
            Some(best) => println!("{}/{}: best {:?}", self.name, id, best),
            None => println!("{}/{}: no samples", self.name, id),
        }
    }

    /// Finish the group.
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: the vendored harness is for smoke-timing, and
        // several benches build 50k-node graphs per iteration.
        Self { max_samples: 3 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 3,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.max_samples,
            best: None,
        };
        f(&mut bencher);
        match bencher.best {
            Some(best) => println!("{name}: best {best:?}"),
            None => println!("{name}: no samples"),
        }
        self
    }

    /// Accepted for criterion CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Define a benchmark group function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
            b.iter(|| runs += 1)
        });
        group.finish();
        assert!(runs >= 1);
    }
}
