//! Vendored minimal property-testing harness.
//!
//! Keeps the `proptest!` / `prop_assert!` macro surface and the strategy
//! expressions this workspace uses (numeric ranges, tuples,
//! `collection::vec`, `num::f64::ANY`), driven by a deterministic seeded
//! RNG. No shrinking: a failing case panics with the generated inputs in
//! the message instead.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG for test-case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; proptest runs are reproducible per test name.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `0..span` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Override the case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed length or a range.
    pub trait LenSpec {
        /// Draw a length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl LenSpec for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl LenSpec for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy generating vectors of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Vector strategy from an element strategy and a length spec.
    pub fn vec<S: Strategy, L: LenSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: LenSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.draw_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod num {
    //! Numeric special strategies.

    pub mod f64 {
        //! `f64` strategies.

        use crate::{Strategy, TestRng};

        /// Arbitrary `f64` bit patterns: NaNs, infinities, subnormals and
        /// ordinary values all occur.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The any-`f64` strategy value.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;

            fn sample(&self, rng: &mut TestRng) -> f64 {
                // Mix raw bit patterns (which are mostly huge/odd values)
                // with ordinary magnitudes so both regimes are exercised.
                match rng.next_u64() % 4 {
                    0 => f64::from_bits(rng.next_u64()),
                    1 => (rng.unit_f64() - 0.5) * 4.0,
                    2 => (rng.unit_f64() - 0.5) * 2.0e12,
                    _ => match rng.next_u64() % 4 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => f64::NEG_INFINITY,
                        _ => 0.0,
                    },
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob import mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Deterministic per-test seed derived from the test name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Property-test definition macro (vendored subset of `proptest!`).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            for __case in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )+
                let __inputs = format!(
                    concat!("case {} of ", stringify!($name), ": ", $( stringify!($arg), " = {:?} " ),+),
                    __case, $( &$arg ),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!("proptest failure inputs: {__inputs}");
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Assertion macro; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion macro.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality assertion macro.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{Strategy, TestRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3usize..40).sample(&mut rng);
            assert!((3..40).contains(&v));
            let f = (0.0f64..=1.0).sample(&mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::new(2);
        let s = crate::collection::vec(0.0f64..1.0, 1..30);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..30).contains(&v.len()));
        }
        let fixed = crate::collection::vec(0usize..5, 7usize);
        assert_eq!(fixed.sample(&mut rng).len(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0usize..10, pair in (0u64..5, 1.0f64..2.0)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5);
            prop_assert!((1.0..2.0).contains(&pair.1));
        }
    }
}
