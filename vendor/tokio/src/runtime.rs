//! The multi-threaded reactor: a fixed pool of workers polling a
//! shared run queue.
//!
//! Every [`crate::spawn`]ed future becomes a `Task` on a `Pool`'s
//! injector queue. Workers pop tasks and poll them with a waker that
//! re-enqueues the task on wake, so a `Pending` future costs nothing
//! until whatever it waits on (a channel send, a join completion)
//! wakes it — no thread is parked per task, and hundreds of idle peer
//! tasks share a handful of OS threads.
//!
//! [`Runtime::block_on`] drives the outer future on the calling thread
//! with a park/unpark waker while entering the runtime's context, so
//! `tokio::spawn` from inside (or from the workers themselves) lands
//! on the same pool. Code that spawns without any runtime entered
//! falls back to a lazily-started global pool.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::pin;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Wake, Waker};

use crate::task::Task;

/// Shared scheduler state: the injector run queue plus worker parking.
pub(crate) struct Pool {
    inner: Mutex<PoolInner>,
    condvar: Condvar,
}

struct PoolInner {
    queue: VecDeque<Arc<Task>>,
    shutdown: bool,
}

impl Pool {
    fn new() -> Self {
        Self {
            inner: Mutex::new(PoolInner {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            condvar: Condvar::new(),
        }
    }

    /// Enqueue a runnable task and wake one parked worker. Tasks
    /// scheduled after shutdown are dropped, like tokio's.
    pub(crate) fn schedule(&self, task: Arc<Task>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown {
            return;
        }
        inner.queue.push_back(task);
        drop(inner);
        self.condvar.notify_one();
    }

    fn shut_down(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.shutdown = true;
        // Queued-but-unpolled tasks are dropped, like tokio's runtime
        // drop; their JoinHandles resolve to a join error.
        inner.queue.clear();
        drop(inner);
        self.condvar.notify_all();
    }
}

/// One worker: pop, poll, repeat; park on the condvar when idle.
fn worker_loop(pool: Arc<Pool>) {
    let _ctx = context_enter(Arc::clone(&pool));
    loop {
        let task = {
            let mut inner = pool.inner.lock().unwrap();
            loop {
                if let Some(task) = inner.queue.pop_front() {
                    break task;
                }
                if inner.shutdown {
                    return;
                }
                inner = pool.condvar.wait(inner).unwrap();
            }
        };
        task.run();
    }
}

fn start_workers(pool: &Arc<Pool>, workers: usize) -> Vec<std::thread::JoinHandle<()>> {
    (0..workers)
        .map(|i| {
            let pool = Arc::clone(pool);
            std::thread::Builder::new()
                .name(format!("tokio-worker-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("spawn runtime worker")
        })
        .collect()
}

fn default_worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

// ---------------------------------------------------------------------
// Ambient runtime context.

thread_local! {
    static CONTEXT: std::cell::RefCell<Option<Arc<Pool>>> =
        const { std::cell::RefCell::new(None) };
}

struct ContextGuard {
    prev: Option<Arc<Pool>>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|slot| *slot.borrow_mut() = self.prev.take());
    }
}

fn context_enter(pool: Arc<Pool>) -> ContextGuard {
    CONTEXT.with(|slot| ContextGuard {
        prev: slot.borrow_mut().replace(pool),
    })
}

/// The pool `spawn` should target from this thread: the entered
/// runtime's when inside `block_on` or a worker, else the global
/// fallback pool.
pub(crate) fn current_pool() -> Arc<Pool> {
    CONTEXT
        .with(|slot| slot.borrow().clone())
        .unwrap_or_else(global_pool)
}

/// The lazily-started process-wide fallback pool (never shut down).
fn global_pool() -> Arc<Pool> {
    static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| {
        let pool = Arc::new(Pool::new());
        // Detached: the global pool lives for the process.
        drop(start_workers(&pool, default_worker_count()));
        pool
    }))
}

// ---------------------------------------------------------------------
// block_on.

struct ThreadWaker {
    thread: std::thread::Thread,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.thread.unpark();
    }
}

/// Drive a future to completion on the current thread, parking between
/// polls.
pub(crate) fn block_on_impl<F: Future>(future: F) -> F::Output {
    let mut future = pin!(future);
    let waker = Waker::from(Arc::new(ThreadWaker {
        thread: std::thread::current(),
    }));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

/// A worker pool plus the right to shut it down.
#[derive(Debug)]
pub struct Runtime {
    pool: Arc<Pool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Create a multi-threaded runtime with the default worker count.
    pub fn new() -> std::io::Result<Runtime> {
        Builder::new_multi_thread().build()
    }

    /// Run `future` to completion on the calling thread, with this
    /// runtime's pool entered so `tokio::spawn` targets it.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        let _ctx = context_enter(Arc::clone(&self.pool));
        block_on_impl(future)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.pool.shut_down();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Builder mirroring tokio's runtime configuration surface.
#[derive(Debug)]
pub struct Builder {
    workers: usize,
}

impl Builder {
    /// Multi-thread flavor.
    pub fn new_multi_thread() -> Builder {
        Builder {
            workers: default_worker_count(),
        }
    }

    /// Current-thread flavor (approximated with one worker; the
    /// workspace's futures never require thread affinity).
    pub fn new_current_thread() -> Builder {
        Builder { workers: 1 }
    }

    /// Number of pool workers.
    pub fn worker_threads(&mut self, n: usize) -> &mut Builder {
        self.workers = n.max(1);
        self
    }

    /// Accepted for API compatibility (no optional drivers to enable).
    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    /// Build the runtime: start the workers.
    pub fn build(&mut self) -> std::io::Result<Runtime> {
        let pool = Arc::new(Pool::new());
        let workers = start_workers(&pool, self.workers);
        Ok(Runtime { pool, workers })
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Pool")
    }
}
