//! Synchronization primitives.

pub mod mpsc {
    //! Multi-producer, single-consumer channels.
    //!
    //! Two flavors, both with **waker-based** receive futures (a
    //! pending `recv().await` parks the *task*, not the worker
    //! thread — the sender wakes it through the registered waker):
    //!
    //! * [`unbounded_channel`] — sends never fail for capacity;
    //! * [`channel`] — bounded; [`Sender::try_send`] fails fast with
    //!   [`error::TrySendError::Full`] instead of blocking, which is
    //!   the backpressure primitive the serve layer sheds load with.

    use std::collections::VecDeque;
    use std::fmt;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    pub use self::error::{SendError, TryRecvError, TrySendError};

    pub mod error {
        //! Channel error types.

        use std::fmt;

        /// Error returned by sends when the receiver is gone.
        pub struct SendError<T>(pub T);

        impl<T> fmt::Debug for SendError<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("SendError(..)")
            }
        }

        impl<T> fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("channel closed")
            }
        }

        /// Error returned by [`try_send`](super::Sender::try_send).
        pub enum TrySendError<T> {
            /// The bounded channel is at capacity; the value is
            /// returned to the caller, which must shed or retry.
            Full(T),
            /// The receiver was dropped.
            Closed(T),
        }

        impl<T> TrySendError<T> {
            /// The value that could not be sent.
            pub fn into_inner(self) -> T {
                match self {
                    TrySendError::Full(v) | TrySendError::Closed(v) => v,
                }
            }
        }

        impl<T> fmt::Debug for TrySendError<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self {
                    TrySendError::Full(_) => f.write_str("Full(..)"),
                    TrySendError::Closed(_) => f.write_str("Closed(..)"),
                }
            }
        }

        impl<T> fmt::Display for TrySendError<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self {
                    TrySendError::Full(_) => f.write_str("no available capacity"),
                    TrySendError::Closed(_) => f.write_str("channel closed"),
                }
            }
        }

        /// Error returned by `try_recv`.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub enum TryRecvError {
            /// No message available right now.
            Empty,
            /// All senders dropped and the queue is drained.
            Disconnected,
        }
    }

    /// Queue plus receiver waker, guarded by one lock so a send can
    /// never slip between a receiver's emptiness check and its waker
    /// registration (no lost wakeups).
    struct Inner<T> {
        queue: VecDeque<T>,
        recv_waker: Option<Waker>,
        receiver_alive: bool,
        /// Bounded flavor only: `usize::MAX` means unbounded.
        capacity: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        senders: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn new(capacity: usize) -> Arc<Self> {
            Arc::new(Shared {
                inner: Mutex::new(Inner {
                    queue: VecDeque::new(),
                    recv_waker: None,
                    receiver_alive: true,
                    capacity,
                }),
                senders: AtomicUsize::new(1),
            })
        }

        /// Push unconditionally (unbounded path).
        fn push(&self, value: T) -> Result<(), error::SendError<T>> {
            let mut inner = self.inner.lock().unwrap();
            if !inner.receiver_alive {
                return Err(error::SendError(value));
            }
            inner.queue.push_back(value);
            let waker = inner.recv_waker.take();
            drop(inner);
            if let Some(waker) = waker {
                waker.wake();
            }
            Ok(())
        }

        /// Push if below capacity (bounded path).
        fn try_push(&self, value: T) -> Result<(), error::TrySendError<T>> {
            let mut inner = self.inner.lock().unwrap();
            if !inner.receiver_alive {
                return Err(error::TrySendError::Closed(value));
            }
            if inner.queue.len() >= inner.capacity {
                return Err(error::TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            let waker = inner.recv_waker.take();
            drop(inner);
            if let Some(waker) = waker {
                waker.wake();
            }
            Ok(())
        }

        fn pop(&self) -> Result<T, error::TryRecvError> {
            let mut inner = self.inner.lock().unwrap();
            match inner.queue.pop_front() {
                Some(v) => Ok(v),
                None => {
                    if self.senders.load(Ordering::Acquire) == 0 {
                        Err(error::TryRecvError::Disconnected)
                    } else {
                        Err(error::TryRecvError::Empty)
                    }
                }
            }
        }

        /// One `Recv` poll: pop, detect disconnect, or register the
        /// waker — all under the queue lock.
        fn poll_pop(&self, cx: &mut Context<'_>) -> Poll<Option<T>> {
            let mut inner = self.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                return Poll::Ready(Some(v));
            }
            if self.senders.load(Ordering::Acquire) == 0 {
                return Poll::Ready(None);
            }
            inner.recv_waker = Some(cx.waker().clone());
            Poll::Pending
        }

        fn sender_dropped(&self) {
            if self.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: a pending receiver must resolve to
                // `None`.
                let waker = self.inner.lock().unwrap().recv_waker.take();
                if let Some(waker) = waker {
                    waker.wake();
                }
            }
        }

        fn receiver_dropped(&self) {
            self.inner.lock().unwrap().receiver_alive = false;
        }
    }

    // -----------------------------------------------------------------
    // Unbounded flavor.

    /// Sending half of an unbounded channel.
    pub struct UnboundedSender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct UnboundedReceiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
        let shared = Shared::new(usize::MAX);
        (
            UnboundedSender {
                shared: Arc::clone(&shared),
            },
            UnboundedReceiver { shared },
        )
    }

    impl<T> UnboundedSender<T> {
        /// Queue a message. Fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.shared.push(value)
        }
    }

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for UnboundedSender<T> {
        fn drop(&mut self) {
            self.shared.sender_dropped();
        }
    }

    impl<T> fmt::Debug for UnboundedSender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("UnboundedSender")
        }
    }

    impl<T> fmt::Debug for UnboundedReceiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("UnboundedReceiver")
        }
    }

    impl<T> UnboundedReceiver<T> {
        /// Receive the next message, resolving when one arrives or all
        /// senders are dropped.
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv {
                shared: &self.shared,
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            self.shared.pop()
        }
    }

    impl<T> Drop for UnboundedReceiver<T> {
        fn drop(&mut self) {
            self.shared.receiver_dropped();
        }
    }

    // -----------------------------------------------------------------
    // Bounded flavor.

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create a bounded channel holding at most `capacity` queued
    /// messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "mpsc bounded channel requires capacity > 0");
        let shared = Shared::new(capacity);
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Queue a message if there is capacity, failing fast with
        /// [`TrySendError::Full`] otherwise — never blocks, never
        /// drops silently.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.shared.try_push(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.sender_dropped();
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next message, resolving when one arrives or all
        /// senders are dropped.
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv {
                shared: &self.shared,
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            self.shared.pop()
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receiver_dropped();
        }
    }

    /// Future returned by `recv`: registers the receiver's waker under
    /// the queue lock, so a concurrent send always finds it.
    pub struct Recv<'a, T> {
        shared: &'a Arc<Shared<T>>,
    }

    impl<T> Future for Recv<'_, T> {
        type Output = Option<T>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            self.shared.poll_pop(cx)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, mut rx) = unbounded_channel();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_returns_none_after_senders_drop() {
            let (tx, mut rx) = unbounded_channel::<u8>();
            drop(tx);
            let out = crate::runtime::Runtime::new().unwrap().block_on(rx.recv());
            assert_eq!(out, None);
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded_channel::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn spawn_runs_concurrently() {
            let (tx, mut rx) = unbounded_channel();
            let handle = crate::spawn(async move {
                tx.send(41).unwrap();
                41
            });
            let got = crate::runtime::Runtime::new().unwrap().block_on(rx.recv());
            assert_eq!(got, Some(41));
            assert_eq!(handle.join_blocking().unwrap(), 41);
        }

        #[test]
        fn pending_recv_wakes_on_send() {
            let rt = crate::runtime::Runtime::new().unwrap();
            let (tx, mut rx) = unbounded_channel();
            let got = rt.block_on(async move {
                let handle = crate::spawn(async move { rx.recv().await });
                // The receiver task is almost certainly parked Pending
                // by the time this send lands; the registered waker
                // must resurrect it.
                std::thread::sleep(std::time::Duration::from_millis(20));
                tx.send(9u32).unwrap();
                handle.await.unwrap()
            });
            assert_eq!(got, Some(9));
        }

        #[test]
        fn bounded_sheds_at_capacity() {
            let (tx, mut rx) = channel::<u8>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            // Draining one slot restores capacity for exactly one.
            tx.try_send(4).unwrap();
            assert!(matches!(tx.try_send(5), Err(TrySendError::Full(5))));
        }

        #[test]
        fn bounded_closed_after_receiver_drop() {
            let (tx, rx) = channel::<u8>(1);
            drop(rx);
            assert!(matches!(tx.try_send(1), Err(TrySendError::Closed(1))));
        }

        #[test]
        fn bounded_recv_drains_then_disconnects() {
            let (tx, mut rx) = channel::<u8>(4);
            tx.try_send(7).unwrap();
            drop(tx);
            let rt = crate::runtime::Runtime::new().unwrap();
            assert_eq!(rt.block_on(rx.recv()), Some(7));
            assert_eq!(rt.block_on(rx.recv()), None);
        }

        #[test]
        fn many_tasks_multiplex_over_few_workers() {
            // 64 ping-pong pairs on 2 workers: only a waker-based
            // scheduler can run this without 64 parked threads.
            let rt = crate::runtime::Builder::new_multi_thread()
                .worker_threads(2)
                .build()
                .unwrap();
            let total: u64 = rt.block_on(async {
                let mut handles = Vec::new();
                for i in 0..64u64 {
                    let (tx, mut rx) = unbounded_channel();
                    handles.push(crate::spawn(async move { rx.recv().await.unwrap() }));
                    crate::spawn(async move {
                        tx.send(i).unwrap();
                    });
                }
                let mut sum = 0;
                for handle in handles {
                    sum += handle.await.unwrap();
                }
                sum
            });
            assert_eq!(total, (0..64).sum());
        }
    }
}
