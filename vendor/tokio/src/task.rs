//! Tasks: pool-scheduled futures, waker-based join handles, and
//! dedicated threads for blocking work.

use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::runtime::current_pool;

/// One spawned future on a pool's run queue.
///
/// `queued` deduplicates wakes: a task is enqueued at most once at a
/// time, and a wake that lands *during* a poll re-enqueues it (the
/// flag is cleared before polling), so no wakeup is ever lost.
pub(crate) struct Task {
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    queued: AtomicBool,
    pool: std::sync::Weak<crate::runtime::Pool>,
}

impl Task {
    /// Poll the task once on the calling worker.
    pub(crate) fn run(self: &Arc<Self>) {
        // Clear the queued flag *before* polling: a wake arriving
        // mid-poll must re-enqueue, because this poll may already have
        // inspected (and missed) the state that wake signals.
        self.queued.store(false, Ordering::Release);
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        let mut slot = self.future.lock().unwrap();
        let Some(future) = slot.as_mut() else {
            return; // already completed; a late wake raced us
        };
        match catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(&mut cx))) {
            Ok(Poll::Pending) => {}
            // Completed or panicked (join handles observe panics via
            // the CatchUnwind wrapper inside the future itself; this
            // outer catch just keeps the worker alive).
            Ok(Poll::Ready(())) | Err(_) => *slot = None,
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            if let Some(pool) = self.pool.upgrade() {
                pool.schedule(self);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Join handles.

struct JoinInner<T> {
    result: Option<Result<T, JoinError>>,
    waker: Option<Waker>,
}

struct JoinState<T> {
    inner: Mutex<JoinInner<T>>,
    condvar: Condvar,
}

impl<T> JoinState<T> {
    fn new() -> Self {
        Self {
            inner: Mutex::new(JoinInner {
                result: None,
                waker: None,
            }),
            condvar: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<T, JoinError>) {
        let mut inner = self.inner.lock().unwrap();
        inner.result = Some(result);
        let waker = inner.waker.take();
        drop(inner);
        self.condvar.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// Handle to a spawned task. Await it, or [`join_blocking`] it from
/// synchronous code. Dropping the handle detaches the task.
///
/// [`join_blocking`]: JoinHandle::join_blocking
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle")
    }
}

/// Error produced when a spawned task panicked (or its runtime was
/// dropped before the task ran).
#[derive(Debug)]
pub struct JoinError {
    _private: (),
}

impl JoinError {
    fn panicked() -> Self {
        JoinError { _private: () }
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("task panicked")
    }
}

impl std::error::Error for JoinError {}

impl<T> JoinHandle<T> {
    /// Block the calling thread until the task finishes.
    pub fn join_blocking(self) -> Result<T, JoinError> {
        let mut inner = self.state.inner.lock().unwrap();
        loop {
            if let Some(result) = inner.result.take() {
                return result;
            }
            inner = self.state.condvar.wait(inner).unwrap();
        }
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.state.inner.lock().unwrap();
        if let Some(result) = inner.result.take() {
            return Poll::Ready(result);
        }
        inner.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Per-poll `catch_unwind` wrapper so a panicking future resolves its
/// join handle instead of killing a worker silently.
struct CatchUnwind<F: Future> {
    inner: Pin<Box<F>>,
}

impl<F: Future> Future for CatchUnwind<F> {
    type Output = Result<F::Output, ()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match catch_unwind(AssertUnwindSafe(|| this.inner.as_mut().poll(cx))) {
            Ok(Poll::Ready(out)) => Poll::Ready(Ok(out)),
            Ok(Poll::Pending) => Poll::Pending,
            Err(_) => Poll::Ready(Err(())),
        }
    }
}

/// Spawn a future onto the ambient runtime's worker pool (the runtime
/// entered via `block_on`, the worker's own, or the global fallback).
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let pool = current_pool();
    let state = Arc::new(JoinState::new());
    let completion = Arc::clone(&state);
    let wrapped = async move {
        let result = CatchUnwind {
            inner: Box::pin(future),
        }
        .await;
        completion.complete(result.map_err(|()| JoinError::panicked()));
    };
    let task = Arc::new(Task {
        future: Mutex::new(Some(Box::pin(wrapped))),
        queued: AtomicBool::new(true),
        pool: Arc::downgrade(&pool),
    });
    pool.schedule(task);
    JoinHandle { state }
}

/// Run a blocking closure on a dedicated OS thread, off the worker
/// pool, returning a handle to await (or block on) its result.
pub fn spawn_blocking<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let state = Arc::new(JoinState::new());
    let completion = Arc::clone(&state);
    std::thread::Builder::new()
        .name("tokio-blocking".to_string())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            completion.complete(result.map_err(|_| JoinError::panicked()));
        })
        .expect("spawn blocking thread");
    JoinHandle { state }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawn_completes_and_joins() {
        let handle = crate::spawn(async { 41 });
        assert_eq!(handle.join_blocking().unwrap(), 41);
    }

    #[test]
    fn join_handle_awaits() {
        let rt = crate::runtime::Runtime::new().unwrap();
        let out = rt.block_on(async {
            let handle = crate::spawn(async { 7u32 });
            handle.await.unwrap()
        });
        assert_eq!(out, 7);
    }

    #[test]
    fn panicking_task_reports_join_error() {
        let handle = crate::spawn(async { panic!("boom") });
        assert!(handle.join_blocking().is_err());
    }

    #[test]
    fn spawn_blocking_runs_off_pool() {
        let handle = crate::task::spawn_blocking(|| 13u8);
        assert_eq!(handle.join_blocking().unwrap(), 13);
    }
}
