//! Vendored minimal `tokio` subset.
//!
//! Implements exactly what the workspace's p2p layer needs: unbounded mpsc
//! channels with async `recv`, [`spawn`] (one OS thread per task — the peer
//! counts here are in the hundreds, well within thread limits), a
//! [`runtime`] with `block_on`, and the `#[tokio::test]` attribute.
//!
//! Channel receive futures resolve by blocking the calling thread on a
//! condvar; combined with thread-per-task spawning, every future completes
//! in a single `poll`, so the executor never needs a reactor.

pub use tokio_macros::test;

pub mod sync {
    //! Synchronization primitives.

    pub mod mpsc {
        //! Multi-producer, single-consumer channels.

        use std::collections::VecDeque;
        use std::fmt;
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::sync::{Arc, Condvar, Mutex};
        use std::task::{Context, Poll};

        struct Shared<T> {
            queue: Mutex<VecDeque<T>>,
            senders: AtomicUsize,
            receiver_alive: AtomicBool,
            condvar: Condvar,
        }

        /// Sending half of an unbounded channel.
        pub struct UnboundedSender<T> {
            shared: Arc<Shared<T>>,
        }

        /// Receiving half of an unbounded channel.
        pub struct UnboundedReceiver<T> {
            shared: Arc<Shared<T>>,
        }

        /// Error returned by [`UnboundedSender::send`] when the receiver is
        /// gone.
        pub struct SendError<T>(pub T);

        impl<T> fmt::Debug for SendError<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("SendError(..)")
            }
        }

        impl<T> fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("channel closed")
            }
        }

        /// Error returned by [`UnboundedReceiver::try_recv`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub enum TryRecvError {
            /// No message available right now.
            Empty,
            /// All senders dropped and the queue is drained.
            Disconnected,
        }

        /// Create an unbounded channel.
        pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
            let shared = Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                senders: AtomicUsize::new(1),
                receiver_alive: AtomicBool::new(true),
                condvar: Condvar::new(),
            });
            (
                UnboundedSender {
                    shared: Arc::clone(&shared),
                },
                UnboundedReceiver { shared },
            )
        }

        impl<T> UnboundedSender<T> {
            /// Queue a message. Fails only if the receiver was dropped.
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                // Check under the queue lock so a concurrent receiver drop
                // cannot race the push (the receiver takes the same lock
                // before marking itself dead).
                let mut queue = self.shared.queue.lock().unwrap();
                if !self.shared.receiver_alive.load(Ordering::Acquire) {
                    return Err(SendError(value));
                }
                queue.push_back(value);
                drop(queue);
                self.shared.condvar.notify_one();
                Ok(())
            }
        }

        impl<T> Clone for UnboundedSender<T> {
            fn clone(&self) -> Self {
                self.shared.senders.fetch_add(1, Ordering::AcqRel);
                Self {
                    shared: Arc::clone(&self.shared),
                }
            }
        }

        impl<T> Drop for UnboundedSender<T> {
            fn drop(&mut self) {
                self.shared.senders.fetch_sub(1, Ordering::AcqRel);
                self.shared.condvar.notify_all();
            }
        }

        impl<T> fmt::Debug for UnboundedSender<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("UnboundedSender")
            }
        }

        impl<T> fmt::Debug for UnboundedReceiver<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("UnboundedReceiver")
            }
        }

        impl<T> UnboundedReceiver<T> {
            /// Receive the next message, waiting until one arrives or all
            /// senders are dropped.
            pub fn recv(&mut self) -> Recv<'_, T> {
                Recv { receiver: self }
            }

            /// Non-blocking receive.
            pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
                let mut queue = self.shared.queue.lock().unwrap();
                match queue.pop_front() {
                    Some(v) => Ok(v),
                    None => {
                        if self.shared.senders.load(Ordering::Acquire) == 0 {
                            Err(TryRecvError::Disconnected)
                        } else {
                            Err(TryRecvError::Empty)
                        }
                    }
                }
            }

            fn recv_blocking(&mut self) -> Option<T> {
                let mut queue = self.shared.queue.lock().unwrap();
                loop {
                    if let Some(v) = queue.pop_front() {
                        return Some(v);
                    }
                    if self.shared.senders.load(Ordering::Acquire) == 0 {
                        return None;
                    }
                    queue = self.shared.condvar.wait(queue).unwrap();
                }
            }
        }

        impl<T> Drop for UnboundedReceiver<T> {
            fn drop(&mut self) {
                let _queue = self.shared.queue.lock().unwrap();
                self.shared.receiver_alive.store(false, Ordering::Release);
            }
        }

        /// Future returned by [`UnboundedReceiver::recv`]. Resolves by
        /// blocking the polling thread (thread-per-task executor).
        pub struct Recv<'a, T> {
            receiver: &'a mut UnboundedReceiver<T>,
        }

        impl<T> Future for Recv<'_, T> {
            type Output = Option<T>;

            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
                let this = self.get_mut();
                Poll::Ready(this.receiver.recv_blocking())
            }
        }
    }
}

pub mod runtime {
    //! A trivial executor: futures are polled on the calling thread; any
    //! `Pending` parks until the waker fires.

    use std::future::Future;
    use std::pin::pin;
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};

    struct ThreadWaker {
        thread: std::thread::Thread,
    }

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.thread.unpark();
        }
    }

    /// Drive a future to completion on the current thread.
    pub(crate) fn block_on_impl<F: Future>(future: F) -> F::Output {
        let mut future = pin!(future);
        let waker = Waker::from(Arc::new(ThreadWaker {
            thread: std::thread::current(),
        }));
        let mut cx = Context::from_waker(&waker);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(out) => return out,
                Poll::Pending => std::thread::park(),
            }
        }
    }

    /// Handle to the (trivial) runtime.
    #[derive(Debug)]
    pub struct Runtime {
        _private: (),
    }

    impl Runtime {
        /// Create a runtime.
        pub fn new() -> std::io::Result<Runtime> {
            Ok(Runtime { _private: () })
        }

        /// Run `future` to completion.
        pub fn block_on<F: Future>(&self, future: F) -> F::Output {
            block_on_impl(future)
        }
    }

    /// Builder mirroring tokio's runtime configuration surface.
    #[derive(Debug, Default)]
    pub struct Builder {
        _private: (),
    }

    impl Builder {
        /// Multi-thread flavor (tasks each get an OS thread regardless).
        pub fn new_multi_thread() -> Builder {
            Builder::default()
        }

        /// Current-thread flavor.
        pub fn new_current_thread() -> Builder {
            Builder::default()
        }

        /// Accepted for API compatibility; tasks are thread-per-task.
        pub fn worker_threads(&mut self, _n: usize) -> &mut Builder {
            self
        }

        /// Accepted for API compatibility.
        pub fn enable_all(&mut self) -> &mut Builder {
            self
        }

        /// Build the runtime.
        pub fn build(&mut self) -> std::io::Result<Runtime> {
            Runtime::new()
        }
    }
}

/// Handle to a spawned task.
#[derive(Debug)]
pub struct JoinHandle<T> {
    inner: Option<std::thread::JoinHandle<T>>,
}

/// Error produced when a spawned task panicked.
#[derive(Debug)]
pub struct JoinError {
    _private: (),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("task panicked")
    }
}

impl std::error::Error for JoinError {}

impl<T> JoinHandle<T> {
    /// Block until the task finishes.
    pub fn join_blocking(mut self) -> Result<T, JoinError> {
        self.inner
            .take()
            .expect("already joined")
            .join()
            .map_err(|_| JoinError { _private: () })
    }
}

impl<T> std::future::Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        let this = self.get_mut();
        let handle = this.inner.take().expect("polled after completion");
        std::task::Poll::Ready(handle.join().map_err(|_| JoinError { _private: () }))
    }
}

/// Spawn a future on its own OS thread.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: std::future::Future + Send + 'static,
    F::Output: Send + 'static,
{
    let inner = std::thread::spawn(move || runtime::block_on_impl(future));
    JoinHandle { inner: Some(inner) }
}

#[cfg(test)]
mod tests {
    use super::sync::mpsc;

    #[test]
    fn send_recv_in_order() {
        let (tx, mut rx) = mpsc::unbounded_channel();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(mpsc::TryRecvError::Empty));
    }

    #[test]
    fn recv_returns_none_after_senders_drop() {
        let (tx, mut rx) = mpsc::unbounded_channel::<u8>();
        drop(tx);
        let out = crate::runtime::Runtime::new().unwrap().block_on(rx.recv());
        assert_eq!(out, None);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = mpsc::unbounded_channel::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn spawn_runs_concurrently() {
        let (tx, mut rx) = mpsc::unbounded_channel();
        let handle = crate::spawn(async move {
            tx.send(41).unwrap();
            41
        });
        let got = crate::runtime::Runtime::new().unwrap().block_on(rx.recv());
        assert_eq!(got, Some(41));
        assert_eq!(handle.join_blocking().unwrap(), 41);
    }
}
