//! Vendored minimal `tokio` subset.
//!
//! A real multi-threaded reactor (offline build — see README.md): a
//! fixed worker pool polls tasks from a shared run queue, channel
//! receive futures register wakers instead of blocking their polling
//! thread, and `spawn` enqueues onto the ambient runtime's pool (the
//! runtime entered via [`runtime::Runtime::block_on`], a worker of that
//! runtime, or a lazily-started global fallback pool).
//!
//! Implemented surface, driven by what the workspace needs:
//!
//! * [`sync::mpsc`] — unbounded channels (the p2p control plane) and
//!   **bounded** channels whose [`try_send`](sync::mpsc::Sender::try_send)
//!   fails fast with [`TrySendError::Full`](sync::mpsc::error::TrySendError)
//!   (the serve layer's ingest backpressure primitive);
//! * [`spawn`] — tasks multiplexed over the pool, with waker-based
//!   [`JoinHandle`]s (await or [`JoinHandle::join_blocking`]);
//! * [`task::spawn_blocking`] — blocking work on a dedicated OS thread
//!   so connection I/O never stalls the cooperative workers;
//! * [`runtime`] — `Runtime::block_on`, `Builder` with an honoured
//!   `worker_threads`, and the `#[tokio::test]` attribute.

pub use tokio_macros::test;

pub mod runtime;
pub mod sync;
pub mod task;

pub use task::{spawn, JoinError, JoinHandle};
