//! Vendored `Serialize` / `Deserialize` derive macros.
//!
//! Dependency-free (no syn/quote): the item is parsed with a small manual
//! token walk, and the impls are generated as source strings. Supports what
//! the workspace actually derives: non-generic structs (named, tuple/newtype)
//! and enums (unit, tuple, struct variants), the container attributes
//! `#[serde(transparent)]` and `#[serde(try_from = "T", into = "T")]`, and
//! the field attribute `#[serde(default)]` (missing object members fall
//! back to `Default::default()` instead of erroring).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    /// `#[serde(default)]`: on deserialization a missing member falls
    /// back to `Default::default()`.
    default: bool,
}

#[derive(Debug, Clone)]
enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Container {
    name: String,
    shape: Shape,
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Split a token sequence on top-level commas (angle-bracket aware, so
/// commas inside generic types like `Vec<BTreeMap<u32, T>>` don't split).
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Strip leading `#[...]` attribute pairs from a token slice.
fn strip_attrs(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut rest = tokens;
    loop {
        match rest {
            [TokenTree::Punct(p), TokenTree::Group(_), tail @ ..] if p.as_char() == '#' => {
                rest = tail;
            }
            _ => return rest,
        }
    }
}

/// Whether a field's leading attributes include `#[serde(default)]`.
fn has_serde_default(tokens: &[TokenTree]) -> bool {
    let mut rest = tokens;
    while let [TokenTree::Punct(p), TokenTree::Group(attr), tail @ ..] = rest {
        if p.as_char() != '#' {
            break;
        }
        let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
        if let [TokenTree::Ident(id), TokenTree::Group(args)] = inner.as_slice() {
            if id.to_string() == "serde" {
                let body: Vec<TokenTree> = args.stream().into_iter().collect();
                for seg in split_commas(&body) {
                    if matches!(seg.as_slice(),
                        [TokenTree::Ident(id)] if id.to_string() == "default")
                    {
                        return true;
                    }
                }
            }
        }
        rest = tail;
    }
    false
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut names = Vec::new();
    for raw_field in split_commas(group_tokens) {
        let default = has_serde_default(&raw_field);
        let field = strip_attrs(&raw_field);
        if field.is_empty() {
            continue;
        }
        // [pub [(..)]] name ':' type...
        let mut idx = 0;
        if let TokenTree::Ident(id) = &field[idx] {
            if id.to_string() == "pub" {
                idx += 1;
                if let Some(TokenTree::Group(g)) = field.get(idx) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        idx += 1;
                    }
                }
            }
        }
        match field.get(idx) {
            Some(TokenTree::Ident(name)) => names.push(Field {
                name: name.to_string(),
                default,
            }),
            other => return Err(format!("unsupported field syntax: {other:?}")),
        }
    }
    Ok(names)
}

fn parse_tuple_fields(group_tokens: &[TokenTree]) -> usize {
    split_commas(group_tokens)
        .iter()
        .filter(|seg| !strip_attrs(seg).is_empty())
        .count()
}

fn parse_variants(group_tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for seg in split_commas(group_tokens) {
        let seg = strip_attrs(&seg);
        if seg.is_empty() {
            continue;
        }
        let name = match &seg[0] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("unsupported variant syntax: {other:?}")),
        };
        let fields = match seg.get(1) {
            None => Fields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Fields::Named(
                parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>())?,
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Fields::Tuple(
                parse_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            other => return Err(format!("unsupported variant body: {other:?}")),
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

/// Extract `transparent` / `try_from` / `into` from a `#[serde(...)]` body.
fn parse_serde_attr(container: &mut Container, body: &[TokenTree]) {
    for seg in split_commas(body) {
        match seg.as_slice() {
            [TokenTree::Ident(id)] if id.to_string() == "transparent" => {
                container.transparent = true;
            }
            [TokenTree::Ident(id), TokenTree::Punct(eq), TokenTree::Literal(lit)]
                if eq.as_char() == '=' =>
            {
                let ty = lit.to_string().trim_matches('"').to_string();
                match id.to_string().as_str() {
                    "try_from" => container.try_from = Some(ty),
                    "into" => container.into = Some(ty),
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

fn parse_container(input: TokenStream) -> Result<Container, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut container = Container {
        name: String::new(),
        shape: Shape::Struct(Fields::Unit),
        transparent: false,
        try_from: None,
        into: None,
    };
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let [TokenTree::Ident(id), TokenTree::Group(args)] = inner.as_slice() {
                        if id.to_string() == "serde" {
                            let body: Vec<TokenTree> = args.stream().into_iter().collect();
                            parse_serde_attr(&mut container, &body);
                        }
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let is_struct = id.to_string() == "struct";
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => return Err(format!("expected type name, got {other:?}")),
                };
                if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
                    if p.as_char() == '<' {
                        return Err(format!(
                            "vendored serde derive does not support generics (type `{name}`)"
                        ));
                    }
                }
                container.name = name;
                let body = tokens.get(i + 2);
                container.shape = match body {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if is_struct {
                            Shape::Struct(Fields::Named(parse_named_fields(&inner)?))
                        } else {
                            Shape::Enum(parse_variants(&inner)?)
                        }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Shape::Struct(Fields::Tuple(parse_tuple_fields(&inner)))
                    }
                    other => return Err(format!("unsupported type body: {other:?}")),
                };
                return Ok(container);
            }
            _ => i += 1,
        }
    }
    Err("could not find struct/enum declaration".to_string())
}

const VALUE: &str = "::serde::__value::Value";
const DE_ERROR: &str = "::serde::__value::DeError";

/// Deserialization initialiser for one named field: required fields go
/// through `expect_field`, `#[serde(default)]` fields fall back to
/// `Default::default()` when the member is absent.
fn named_field_init(container: &str, field: &Field, value_expr: &str) -> String {
    let f = &field.name;
    if field.default {
        format!(
            "{f}: match {value_expr}.get({f:?}) {{\
             ::core::option::Option::Some(__fv) => \
             ::serde::Deserialize::__from_value(__fv)?, \
             ::core::option::Option::None => ::core::default::Default::default() }}"
        )
    } else {
        format!(
            "{f}: ::serde::Deserialize::__from_value(\
             ::serde::__value::expect_field({value_expr}, {container:?}, {f:?})?)?"
        )
    }
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = if let Some(into_ty) = &c.into {
        format!(
            "let __intermediate: {into_ty} = \
             <{into_ty} as ::core::convert::From<{name}>>::from(\
             ::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::__to_value(&__intermediate)"
        )
    } else {
        match &c.shape {
            Shape::Struct(Fields::Named(fields)) => {
                if c.transparent && fields.len() == 1 {
                    format!("::serde::Serialize::__to_value(&self.{})", fields[0].name)
                } else {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let f = &f.name;
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::__to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("{VALUE}::Object(::std::vec![{}])", entries.join(", "))
                }
            }
            Shape::Struct(Fields::Tuple(1)) => {
                "::serde::Serialize::__to_value(&self.0)".to_string()
            }
            Shape::Struct(Fields::Tuple(n)) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::__to_value(&self.{i})"))
                    .collect();
                format!("{VALUE}::Array(::std::vec![{}])", items.join(", "))
            }
            Shape::Struct(Fields::Unit) => {
                format!("{VALUE}::String(::std::string::String::from({name:?}))")
            }
            Shape::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vn = &v.name;
                        match &v.fields {
                            Fields::Unit => format!(
                                "{name}::{vn} => {VALUE}::String(\
                                 ::std::string::String::from({vn:?})),"
                            ),
                            Fields::Tuple(1) => format!(
                                "{name}::{vn}(__f0) => {VALUE}::Object(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Serialize::__to_value(__f0))]),"
                            ),
                            Fields::Tuple(n) => {
                                let binds: Vec<String> =
                                    (0..*n).map(|i| format!("__f{i}")).collect();
                                let items: Vec<String> = (0..*n)
                                    .map(|i| format!("::serde::Serialize::__to_value(__f{i})"))
                                    .collect();
                                format!(
                                    "{name}::{vn}({}) => {VALUE}::Object(::std::vec![(\
                                     ::std::string::String::from({vn:?}), \
                                     {VALUE}::Array(::std::vec![{}]))]),",
                                    binds.join(", "),
                                    items.join(", ")
                                )
                            }
                            Fields::Named(fields) => {
                                let binds = fields
                                    .iter()
                                    .map(|f| f.name.clone())
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                let entries: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        let f = &f.name;
                                        format!(
                                            "(::std::string::String::from({f:?}), \
                                             ::serde::Serialize::__to_value({f}))"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{vn} {{ {binds} }} => {VALUE}::Object(::std::vec![(\
                                     ::std::string::String::from({vn:?}), \
                                     {VALUE}::Object(::std::vec![{}]))]),",
                                    entries.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{\n{}\n}}", arms.join("\n"))
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn __to_value(&self) -> {VALUE} {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = if let Some(from_ty) = &c.try_from {
        format!(
            "let __raw: {from_ty} = ::serde::Deserialize::__from_value(__v)?;\n\
             <{name} as ::core::convert::TryFrom<{from_ty}>>::try_from(__raw)\
             .map_err(|e| {DE_ERROR}::custom(e))"
        )
    } else {
        match &c.shape {
            Shape::Struct(Fields::Named(fields)) => {
                if c.transparent && fields.len() == 1 {
                    format!(
                        "::core::result::Result::Ok({name} {{ {}: \
                         ::serde::Deserialize::__from_value(__v)? }})",
                        fields[0].name
                    )
                } else {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| named_field_init(name, f, "__v"))
                        .collect();
                    format!(
                        "::core::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            }
            Shape::Struct(Fields::Tuple(1)) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::__from_value(__v)?))"
            ),
            Shape::Struct(Fields::Tuple(n)) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::__from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "match __v {{\n\
                     {VALUE}::Array(__items) if __items.len() == {n} => \
                     ::core::result::Result::Ok({name}({})),\n\
                     __other => ::core::result::Result::Err({DE_ERROR}::custom(\
                     ::std::format!(\"expected {n}-element array for {name}, got {{}}\", __other))),\n\
                     }}",
                    inits.join(", ")
                )
            }
            Shape::Struct(Fields::Unit) => {
                format!("::core::result::Result::Ok({name})")
            }
            Shape::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.fields, Fields::Unit))
                    .map(|v| {
                        let vn = &v.name;
                        format!("{vn:?} => return ::core::result::Result::Ok({name}::{vn}),")
                    })
                    .collect();
                let payload_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let vn = &v.name;
                        match &v.fields {
                            Fields::Unit => None,
                            Fields::Tuple(1) => Some(format!(
                                "{vn:?} => return ::core::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::__from_value(__inner)?)),"
                            )),
                            Fields::Tuple(n) => {
                                let inits: Vec<String> = (0..*n)
                                    .map(|i| {
                                        format!(
                                            "::serde::Deserialize::__from_value(&__items[{i}])?"
                                        )
                                    })
                                    .collect();
                                Some(format!(
                                    "{vn:?} => match __inner {{\n\
                                     {VALUE}::Array(__items) if __items.len() == {n} => \
                                     return ::core::result::Result::Ok({name}::{vn}({})),\n\
                                     _ => {{}}\n\
                                     }},",
                                    inits.join(", ")
                                ))
                            }
                            Fields::Named(fields) => {
                                let inits: Vec<String> = fields
                                    .iter()
                                    .map(|f| named_field_init(name, f, "__inner"))
                                    .collect();
                                Some(format!(
                                    "{vn:?} => return ::core::result::Result::Ok(\
                                     {name}::{vn} {{ {} }}),",
                                    inits.join(", ")
                                ))
                            }
                        }
                    })
                    .collect();
                format!(
                    "if let {VALUE}::String(__s) = __v {{\n\
                     match __s.as_str() {{\n{}\n_ => {{}}\n}}\n\
                     }}\n\
                     if let {VALUE}::Object(__entries) = __v {{\n\
                     if __entries.len() == 1 {{\n\
                     let (__k, __inner) = &__entries[0];\n\
                     let _ = __inner;\n\
                     match __k.as_str() {{\n{}\n_ => {{}}\n}}\n\
                     }}\n\
                     }}\n\
                     ::core::result::Result::Err({DE_ERROR}::custom(\
                     ::std::format!(\"invalid value for enum {name}: {{}}\", __v)))",
                    unit_arms.join("\n"),
                    payload_arms.join("\n")
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         #[allow(unused_variables)]\n\
         fn __from_value(__v: &{VALUE}) -> ::core::result::Result<Self, {DE_ERROR}> {{\n\
         {body}\n}}\n}}"
    )
}

/// Derive `Serialize` (lowering into the vendored serde value model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_container(input) {
        Ok(c) => gen_serialize(&c)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde derive generation failed: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derive `Deserialize` (lifting out of the vendored serde value model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_container(input) {
        Ok(c) => gen_deserialize(&c)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde derive generation failed: {e}"))),
        Err(e) => compile_error(&e),
    }
}
