//! Vendored minimal `serde_json`: compact/pretty serialization, a JSON
//! parser, [`Value`] and the [`json!`] macro, over the vendored `serde`
//! value model.

pub use serde::__value::Value;

use serde::__value::DeError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced by (de)serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e)
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.__to_value().to_string())
}

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.__to_value().to_string_pretty())
}

/// Lower any serializable value into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.__to_value()
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::__from_value(&value)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| self.err(e))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| self.err(e))?,
                                16,
                            )
                            .map_err(|e| self.err(e))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.err(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| self.err(e))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Build a [`Value`] from a JSON-ish literal. Supports object literals with
/// string-literal keys and expression values, array literals, `null`, and
/// bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(from_str::<f64>("0.75").unwrap(), 0.75);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
    }

    #[test]
    fn round_trips_nested() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.5], vec![]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2.5],[]]");
        assert_eq!(from_str::<Vec<Vec<f64>>>(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("0.75 trailing").is_err());
        assert!(from_str::<f64>("[").is_err());
        assert!(from_str::<u32>("\"nan\"").is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let step = 3usize;
        let v = json!({ "step": step, "psi": 1.5 });
        assert_eq!(v.to_string(), "{\"step\":3,\"psi\":1.5}");
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1, 2]).to_string(), "[1,2]");
    }

    #[test]
    fn pretty_print_indents() {
        let v = json!({ "a": 1 });
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": 1\n}");
    }
}
