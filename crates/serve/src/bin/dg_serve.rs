//! `dg_serve` — run the reputation service against a live simulation.
//!
//! ```text
//! dg_serve [--nodes N] [--seed S] [--engine sequential|parallel|sharded|incremental]
//!          [--rounds R] [--addr HOST:PORT] [--ingest-capacity C]
//!          [--round-interval-ms MS] [--traffic uniform|skewed]
//! ```
//!
//! Binds the endpoint, then drives one round every interval (default
//! 1000 ms), printing a stats line per round. `--rounds 0` (default)
//! runs until killed; otherwise the server exits after R rounds.

use dg_gossip::EngineKind;
use dg_serve::{ServeOptions, Server};
use dg_sim::{RunConfig, TrafficModel};

fn usage() -> ! {
    eprintln!(
        "usage: dg_serve [--nodes N] [--seed S] [--engine KIND] [--rounds R] \
         [--addr HOST:PORT] [--ingest-capacity C] [--round-interval-ms MS] \
         [--traffic uniform|skewed]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{flag}: cannot parse {value:?}");
            usage();
        }
    }
}

fn main() {
    let mut config = RunConfig::default();
    let mut opts = ServeOptions::default();
    let mut rounds = 0usize;
    let mut interval_ms = 1000u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => config.nodes = parse("--nodes", args.next()),
            "--seed" => config.seed = parse("--seed", args.next()),
            "--rounds" => rounds = parse("--rounds", args.next()),
            "--addr" => opts.addr = parse("--addr", args.next()),
            "--ingest-capacity" => opts.ingest_capacity = parse("--ingest-capacity", args.next()),
            "--round-interval-ms" => interval_ms = parse("--round-interval-ms", args.next()),
            "--engine" => {
                config.engine = match args.next().as_deref() {
                    Some("sequential") => EngineKind::Sequential,
                    Some("parallel") => EngineKind::Parallel,
                    Some("sharded") => EngineKind::Sharded,
                    Some("incremental") => EngineKind::Incremental,
                    _ => usage(),
                }
            }
            "--traffic" => {
                config.traffic = match args.next().as_deref() {
                    Some("uniform") => TrafficModel::full(),
                    Some("skewed") => TrafficModel::full().with_activity(0.1).with_zipf(0.8),
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }

    let mut server = match Server::start(config, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dg_serve: {e}");
            std::process::exit(1);
        }
    };
    println!("dg_serve listening on {}", server.local_addr());

    loop {
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        match server.run_round() {
            Ok(stat) => {
                println!(
                    "round {:>4}  ingested {:>6}  shed {:>6}  honest-rate {:.3}",
                    stat.round + 1,
                    stat.ingested_reports,
                    stat.ingest_shed,
                    stat.honest_service_rate(),
                );
            }
            Err(e) => {
                eprintln!("dg_serve: round failed: {e}");
                std::process::exit(1);
            }
        }
        if rounds != 0 && server.session().round() >= rounds {
            break;
        }
    }
}
