//! A small blocking client: the test suites' and the bench harness's
//! view of the service.
//!
//! Requests are written into a buffer; [`Client::call`] flushes per
//! request, while [`Client::send`] + [`Client::recv`] let callers
//! pipeline — queue a batch, [`flush`](Client::flush) once, then read
//! the batch of responses in order (the server answers in request
//! order per connection).

use crate::proto::{read_response, write_request, Request, Response};
use dg_store::wire::WireError;
use dg_trust::prelude::TransactionOutcome;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a [`Server`](crate::Server).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// This connection's ingest source id (the `from` half of the
    /// replay tag).
    source: u64,
    /// Next ingest sequence number.
    seq: u64,
}

impl Client {
    /// Connect, identifying ingest submissions as `source`.
    pub fn connect(addr: impl ToSocketAddrs, source: u64) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            source,
            seq: 0,
        })
    }

    /// Queue one request (buffered; flush before waiting on replies).
    pub fn send(&mut self, request: &Request) -> Result<(), WireError> {
        write_request(&mut self.writer, request)
    }

    /// Push every queued request onto the wire.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Read the next response.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        read_response(&mut self.reader)
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, WireError> {
        self.send(request)?;
        self.flush()?;
        self.recv()
    }

    /// Query one subject's reputation.
    pub fn reputation(&mut self, subject: u32) -> Result<Response, WireError> {
        self.call(&Request::Reputation { subject })
    }

    /// Query the `k` highest-reputation subjects.
    pub fn top_k(&mut self, k: u32) -> Result<Response, WireError> {
        self.call(&Request::TopK { k })
    }

    /// Query a nearest-rank percentile.
    pub fn percentile(&mut self, p: f64) -> Result<Response, WireError> {
        self.call(&Request::Percentile { p })
    }

    /// Submit one transaction report, stamped with this connection's
    /// `(source, seq)` replay tag (`seq` auto-increments).
    pub fn ingest(
        &mut self,
        requester: u32,
        provider: u32,
        outcome: TransactionOutcome,
    ) -> Result<Response, WireError> {
        let seq = self.seq;
        self.seq += 1;
        self.call(&Request::Ingest {
            source: self.source,
            seq,
            requester,
            provider,
            outcome,
        })
    }
}
