//! The TCP server: snapshot-backed query handlers, bounded-channel
//! ingest, an explicitly-driven round engine.
//!
//! Division of labour (see `docs/SERVING.md`):
//!
//! * **Connection handlers** (one [`tokio::task::spawn_blocking`]
//!   thread each) answer queries straight from the shared
//!   [`SnapshotCell`] — they clone an `Arc` per request and never
//!   touch the engine, so readers cannot block a round and a round
//!   cannot tear a read. Ingest submissions go into the bounded
//!   [`tokio::sync::mpsc`] channel via `try_send`: a full channel
//!   answers [`Response::Busy`] — typed shedding, never blocking the
//!   handler, never dropping silently (every shed is counted into the
//!   next round's [`RoundStats::ingest_shed`]).
//! * **The round engine** stays on the caller's thread:
//!   [`Server::run_round`] drains the ingest channel into the
//!   [`ServeSession`] (which sorts by `(source, seq, ...)` — arrival
//!   order cannot affect the run), advances one round, and publishes
//!   the round's snapshot. The `dg_serve` binary calls it in a loop;
//!   tests call it while readers hammer the query endpoints.

use crate::proto::{read_request, write_response, Request, Response};
use dg_graph::NodeId;
use dg_sim::rounds::RoundStats;
use dg_sim::session::SessionError;
use dg_sim::{IngestReport, RunConfig, ServeSession};
use dg_store::wire::WireError;
use dg_trust::SnapshotCell;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::mpsc;
use tokio::sync::mpsc::error::TrySendError;

/// How the server listens and sheds.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Ingest channel capacity: submissions beyond this between two
    /// rounds are answered [`Response::Busy`].
    pub ingest_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            ingest_capacity: 1024,
        }
    }
}

/// Starting or driving the server failed.
#[derive(Debug)]
pub enum ServeError {
    /// Socket setup failed.
    Io(std::io::Error),
    /// The underlying session rejected the config or a round failed.
    Session(SessionError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Session(e) => write!(f, "session error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> Self {
        ServeError::Session(e)
    }
}

/// A running reputation service (see the module docs).
pub struct Server {
    session: ServeSession,
    ingest_rx: mpsc::Receiver<IngestReport>,
    /// Kept so the channel never reports "all senders dropped" while
    /// the server lives; handlers clone it.
    _ingest_tx: mpsc::Sender<IngestReport>,
    shed: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    acceptor: Option<tokio::task::JoinHandle<()>>,
}

impl Server {
    /// Build the session, bind the listener and start accepting
    /// connections. The engine does **not** free-run: drive it with
    /// [`run_round`](Self::run_round).
    pub fn start(config: RunConfig, opts: ServeOptions) -> Result<Self, ServeError> {
        let session = ServeSession::new(config)?;
        let nodes = session.session().config().nodes;
        let listener = TcpListener::bind(&opts.addr)?;
        // Non-blocking accept so shutdown is a flag check away.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (ingest_tx, ingest_rx) = mpsc::channel(opts.ingest_capacity.max(1));
        let shed = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let cell = session.snapshots();

        let acceptor = {
            let tx = ingest_tx.clone();
            let shed = Arc::clone(&shed);
            let shutdown = Arc::clone(&shutdown);
            tokio::task::spawn_blocking(move || {
                accept_loop(listener, cell, tx, shed, shutdown, nodes)
            })
        };

        Ok(Self {
            session,
            ingest_rx,
            _ingest_tx: ingest_tx,
            shed,
            shutdown,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped session (stats, config, round).
    pub fn session(&self) -> &ServeSession {
        &self.session
    }

    /// The snapshot cell the query handlers answer from.
    pub fn snapshots(&self) -> Arc<SnapshotCell> {
        self.session.snapshots()
    }

    /// Drain the ingest channel into the session and run one round
    /// (sorting and folding the drained reports, stamping the ingest
    /// counters, publishing the round's snapshot).
    pub fn run_round(&mut self) -> Result<&RoundStats, ServeError> {
        while let Ok(report) = self.ingest_rx.try_recv() {
            // Handlers validated ids before sending; a failure here
            // would mean they and the session disagree.
            self.session
                .ingest(report)
                .expect("handler-validated report");
        }
        self.session.note_shed(self.shed.swap(0, Ordering::AcqRel));
        Ok(self.session.run_round()?)
    }

    /// Run rounds until `round` rounds have completed.
    pub fn run_to(&mut self, round: usize) -> Result<(), ServeError> {
        while self.session.round() < round {
            self.run_round()?;
        }
        Ok(())
    }

    /// Stop accepting connections and join the acceptor. Open
    /// connections finish on their own threads when their clients
    /// disconnect.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join_blocking();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    cell: Arc<SnapshotCell>,
    tx: mpsc::Sender<IngestReport>,
    shed: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    nodes: usize,
) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let cell = Arc::clone(&cell);
                let tx = tx.clone();
                let shed = Arc::clone(&shed);
                tokio::task::spawn_blocking(move || {
                    let _ = handle_connection(stream, cell, tx, shed, nodes);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Serve one connection until EOF or a framing error. Responses are
/// written through a buffer that flushes only when no further request
/// is already buffered, so pipelined clients pay one syscall per
/// batch, not per query.
fn handle_connection(
    stream: TcpStream,
    cell: Arc<SnapshotCell>,
    tx: mpsc::Sender<IngestReport>,
    shed: Arc<AtomicU64>,
    nodes: usize,
) -> std::io::Result<()> {
    // The listener was non-blocking; the handler wants blocking io.
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let response = match read_request(&mut reader) {
            Ok(request) => respond(&request, &cell, &tx, &shed, nodes),
            Err(WireError::Io(_)) => break, // EOF / reset: client left.
            Err(e) => {
                // Malformed frame: answer once, then drop the
                // connection — framing is unrecoverable.
                let _ = write_response(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                let _ = writer.flush();
                break;
            }
        };
        if write_response(&mut writer, &response).is_err() {
            break;
        }
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
    }
    Ok(())
}

fn respond(
    request: &Request,
    cell: &SnapshotCell,
    tx: &mpsc::Sender<IngestReport>,
    shed: &AtomicU64,
    nodes: usize,
) -> Response {
    match *request {
        Request::Reputation { subject } => {
            let snap = cell.load();
            if subject as usize >= nodes {
                return Response::Error {
                    message: format!("unknown node {subject}"),
                };
            }
            Response::Reputation {
                round: snap.round(),
                reputation: snap.reputation(NodeId(subject)),
            }
        }
        Request::TopK { k } => {
            let snap = cell.load();
            Response::TopK {
                round: snap.round(),
                entries: snap
                    .top_k(k as usize)
                    .into_iter()
                    .map(|(id, rep)| (id.0, rep))
                    .collect(),
            }
        }
        Request::Percentile { p } => {
            let snap = cell.load();
            Response::Percentile {
                round: snap.round(),
                value: snap.percentile(p),
            }
        }
        Request::Ingest {
            source,
            seq,
            requester,
            provider,
            outcome,
        } => {
            if requester as usize >= nodes || provider as usize >= nodes {
                return Response::Error {
                    message: format!("unknown node {}", requester.max(provider)),
                };
            }
            if requester == provider {
                return Response::Error {
                    message: format!("node {requester} reporting about itself"),
                };
            }
            let report = IngestReport {
                from: source,
                seq,
                requester: NodeId(requester),
                provider: NodeId(provider),
                outcome,
            };
            match tx.try_send(report) {
                Ok(()) => Response::IngestAccepted {
                    round: cell.load().round(),
                },
                Err(TrySendError::Full(_)) => {
                    shed.fetch_add(1, Ordering::AcqRel);
                    Response::Busy
                }
                Err(TrySendError::Closed(_)) => Response::Error {
                    message: "server shutting down".into(),
                },
            }
        }
    }
}
