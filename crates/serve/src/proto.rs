//! The length-framed request/response protocol.
//!
//! Every message is one [`dg_store::wire`] frame — the store's
//! magic/kind/version/length/checksum envelope lifted onto a stream —
//! with a serve-specific kind byte ([`KIND_REQUEST`] /
//! [`KIND_RESPONSE`]) and a [`ByteWriter`]-encoded payload. Reusing the
//! snapshot framing means a serve endpoint inherits the store's
//! corruption detection for free: truncation, garbling and
//! cross-wiring all surface as typed [`WireError`]s, never as
//! misparsed garbage.
//!
//! Query responses carry the **round** of the snapshot they were
//! answered from, so a client can assert round-atomicity: every answer
//! derived from one response is internally consistent with that round,
//! and rounds only move forward per connection.

use dg_store::wire::{read_wire_frame, write_wire_frame, WireError};
use dg_store::{ByteReader, ByteWriter};
use dg_trust::prelude::TransactionOutcome;
use std::io::{Read, Write};

/// Frame kind of a client→server message.
pub const KIND_REQUEST: u8 = 0x21;
/// Frame kind of a server→client message.
pub const KIND_RESPONSE: u8 = 0x22;

/// Requests are small and fixed-shape; anything longer is garbage.
pub const MAX_REQUEST_PAYLOAD: usize = 1024;
/// Responses are bounded by `top_k` over the scored subjects
/// (12 bytes per entry); 64 MiB covers five million entries.
pub const MAX_RESPONSE_PAYLOAD: usize = 64 << 20;

/// One client request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// The subject's network-wide mean reputation.
    Reputation {
        /// Subject node id.
        subject: u32,
    },
    /// The `k` highest-reputation subjects, descending.
    TopK {
        /// How many entries to return (clamped to the scored count).
        k: u32,
    },
    /// Nearest-rank percentile over the scored subjects.
    Percentile {
        /// Percentile in `[0, 1]`.
        p: f64,
    },
    /// Submit one transaction report for the next round.
    Ingest {
        /// Ingest source id (the client's replay identity).
        source: u64,
        /// The source's own sequence number for this report.
        seq: u64,
        /// The node the report folds into.
        requester: u32,
        /// The provider the requester transacted with.
        provider: u32,
        /// What the requester observed.
        outcome: TransactionOutcome,
    },
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Reputation`].
    Reputation {
        /// The snapshot round this was answered from.
        round: u64,
        /// The subject's mean reputation (`None` while unscored).
        reputation: Option<f64>,
    },
    /// Answer to [`Request::TopK`].
    TopK {
        /// The snapshot round this was answered from.
        round: u64,
        /// `(subject, reputation)` descending; ties toward smaller ids.
        entries: Vec<(u32, f64)>,
    },
    /// Answer to [`Request::Percentile`].
    Percentile {
        /// The snapshot round this was answered from.
        round: u64,
        /// The percentile value (`None` while nothing is scored or the
        /// requested `p` is out of range).
        value: Option<f64>,
    },
    /// The ingest was accepted into the next round's buffer.
    IngestAccepted {
        /// Latest completed round when the report was accepted (it
        /// folds into a later round).
        round: u64,
    },
    /// The ingest channel is full: the report was **shed, not queued**
    /// — resubmit later. Queries are never busy.
    Busy,
    /// The request was malformed or rejected.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

fn put_outcome(w: &mut ByteWriter, outcome: TransactionOutcome) {
    match outcome {
        TransactionOutcome::Refused => w.put_u8(0),
        TransactionOutcome::Served { quality } => {
            w.put_u8(1);
            w.put_f64(quality);
        }
    }
}

fn get_outcome(r: &mut ByteReader<'_>) -> Result<TransactionOutcome, String> {
    match r.get_u8("outcome tag")? {
        0 => Ok(TransactionOutcome::Refused),
        1 => Ok(TransactionOutcome::Served {
            quality: r.get_f64("outcome quality")?,
        }),
        tag => Err(format!("bad outcome tag {tag}")),
    }
}

impl Request {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match *self {
            Request::Reputation { subject } => {
                w.put_u8(1);
                w.put_u32(subject);
            }
            Request::TopK { k } => {
                w.put_u8(2);
                w.put_u32(k);
            }
            Request::Percentile { p } => {
                w.put_u8(3);
                w.put_f64(p);
            }
            Request::Ingest {
                source,
                seq,
                requester,
                provider,
                outcome,
            } => {
                w.put_u8(4);
                w.put_u64(source);
                w.put_u64(seq);
                w.put_u32(requester);
                w.put_u32(provider);
                put_outcome(&mut w, outcome);
            }
        }
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader::new(bytes);
        let req = match r.get_u8("request tag")? {
            1 => Request::Reputation {
                subject: r.get_u32("subject")?,
            },
            2 => Request::TopK { k: r.get_u32("k")? },
            3 => Request::Percentile { p: r.get_f64("p")? },
            4 => Request::Ingest {
                source: r.get_u64("source")?,
                seq: r.get_u64("seq")?,
                requester: r.get_u32("requester")?,
                provider: r.get_u32("provider")?,
                outcome: get_outcome(&mut r)?,
            },
            tag => return Err(format!("bad request tag {tag}")),
        };
        if !r.is_empty() {
            return Err("trailing bytes after request".into());
        }
        Ok(req)
    }
}

impl Response {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Reputation { round, reputation } => {
                w.put_u8(1);
                w.put_u64(*round);
                w.put_opt_f64(*reputation);
            }
            Response::TopK { round, entries } => {
                w.put_u8(2);
                w.put_u64(*round);
                w.put_u32(entries.len() as u32);
                for &(subject, rep) in entries {
                    w.put_u32(subject);
                    w.put_f64(rep);
                }
            }
            Response::Percentile { round, value } => {
                w.put_u8(3);
                w.put_u64(*round);
                w.put_opt_f64(*value);
            }
            Response::IngestAccepted { round } => {
                w.put_u8(4);
                w.put_u64(*round);
            }
            Response::Busy => w.put_u8(5),
            Response::Error { message } => {
                w.put_u8(6);
                let bytes = message.as_bytes();
                w.put_u32(bytes.len() as u32);
                for &b in bytes {
                    w.put_u8(b);
                }
            }
        }
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader::new(bytes);
        let resp = match r.get_u8("response tag")? {
            1 => Response::Reputation {
                round: r.get_u64("round")?,
                reputation: r.get_opt_f64("reputation")?,
            },
            2 => {
                let round = r.get_u64("round")?;
                let len = r.get_len("top-k entries", 12)?;
                let mut entries = Vec::with_capacity(len);
                for _ in 0..len {
                    let subject = r.get_u32("entry subject")?;
                    let rep = r.get_f64("entry reputation")?;
                    entries.push((subject, rep));
                }
                Response::TopK { round, entries }
            }
            3 => Response::Percentile {
                round: r.get_u64("round")?,
                value: r.get_opt_f64("value")?,
            },
            4 => Response::IngestAccepted {
                round: r.get_u64("round")?,
            },
            5 => Response::Busy,
            6 => {
                let len = r.get_len("error message", 1)?;
                let mut bytes = Vec::with_capacity(len);
                for _ in 0..len {
                    bytes.push(r.get_u8("error byte")?);
                }
                Response::Error {
                    message: String::from_utf8_lossy(&bytes).into_owned(),
                }
            }
            tag => return Err(format!("bad response tag {tag}")),
        };
        if !r.is_empty() {
            return Err("trailing bytes after response".into());
        }
        Ok(resp)
    }
}

fn corrupt(reason: String) -> WireError {
    WireError::Corrupt(reason)
}

/// Write one request frame.
pub fn write_request<W: Write>(w: &mut W, request: &Request) -> Result<(), WireError> {
    Ok(write_wire_frame(w, KIND_REQUEST, &request.encode())?)
}

/// Read one request frame.
pub fn read_request<R: Read>(r: &mut R) -> Result<Request, WireError> {
    let (kind, payload) = read_wire_frame(r, MAX_REQUEST_PAYLOAD)?;
    if kind != KIND_REQUEST {
        return Err(corrupt(format!(
            "frame kind {kind:#04x} where a request ({KIND_REQUEST:#04x}) was expected"
        )));
    }
    Request::decode(&payload).map_err(corrupt)
}

/// Write one response frame.
pub fn write_response<W: Write>(w: &mut W, response: &Response) -> Result<(), WireError> {
    Ok(write_wire_frame(w, KIND_RESPONSE, &response.encode())?)
}

/// Read one response frame.
pub fn read_response<R: Read>(r: &mut R) -> Result<Response, WireError> {
    let (kind, payload) = read_wire_frame(r, MAX_RESPONSE_PAYLOAD)?;
    if kind != KIND_RESPONSE {
        return Err(corrupt(format!(
            "frame kind {kind:#04x} where a response ({KIND_RESPONSE:#04x}) was expected"
        )));
    }
    Response::decode(&payload).map_err(corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Reputation { subject: 7 },
            Request::TopK { k: 10 },
            Request::Percentile { p: 0.5 },
            Request::Ingest {
                source: 3,
                seq: 41,
                requester: 1,
                provider: 2,
                outcome: TransactionOutcome::Served { quality: 0.75 },
            },
            Request::Ingest {
                source: 0,
                seq: 0,
                requester: 9,
                provider: 4,
                outcome: TransactionOutcome::Refused,
            },
        ];
        let mut buf = Vec::new();
        for req in &requests {
            write_request(&mut buf, req).expect("writes");
        }
        let mut r = &buf[..];
        for req in &requests {
            assert_eq!(&read_request(&mut r).expect("reads"), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Reputation {
                round: 3,
                reputation: Some(0.25),
            },
            Response::Reputation {
                round: 0,
                reputation: None,
            },
            Response::TopK {
                round: 9,
                entries: vec![(4, 0.9), (1, 0.5)],
            },
            Response::Percentile {
                round: 2,
                value: Some(0.125),
            },
            Response::IngestAccepted { round: 5 },
            Response::Busy,
            Response::Error {
                message: "unknown node 99".into(),
            },
        ];
        let mut buf = Vec::new();
        for resp in &responses {
            write_response(&mut buf, resp).expect("writes");
        }
        let mut r = &buf[..];
        for resp in &responses {
            assert_eq!(&read_response(&mut r).expect("reads"), resp);
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::TopK { k: 1 }).expect("writes");
        let err = read_response(&mut &buf[..]).expect_err("kind mismatch");
        assert!(matches!(err, WireError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn garbage_payload_is_rejected() {
        let mut buf = Vec::new();
        dg_store::wire::write_wire_frame(&mut buf, KIND_REQUEST, &[99]).expect("writes");
        let err = read_request(&mut &buf[..]).expect_err("bad tag");
        assert!(matches!(err, WireError::Corrupt(_)), "{err:?}");
    }
}
