//! # dg-serve — reputation as a service
//!
//! The round engines compute reputations; this crate serves them. A
//! [`Server`] wraps a [`ServeSession`](dg_sim::ServeSession) (any of
//! the four bit-identical engines) behind one TCP endpoint speaking a
//! length-framed binary protocol ([`proto`], reusing `dg-store`'s
//! frame envelope):
//!
//! * **Queries** — `reputation(X)`, `top_k(n)`, `percentile(p)` —
//!   answer from the latest *completed* round's immutable
//!   [`ReputationSnapshot`](dg_trust::ReputationSnapshot), published
//!   through a double-buffered
//!   [`SnapshotCell`](dg_trust::SnapshotCell): readers clone an `Arc`,
//!   never lock against the engine, and can never observe a torn
//!   round. Every response carries the round it was answered from.
//! * **Ingest** — externally-submitted transaction reports flow
//!   through a bounded channel into the next round's estimate phase,
//!   deterministically ordered by their `(source, seq)` replay tag: a
//!   replayed ingest log reproduces the run bit for bit, on any
//!   engine. A full channel answers a typed
//!   [`Busy`](proto::Response::Busy) — load is shed and counted
//!   ([`RoundStats::ingest_shed`](dg_sim::rounds::RoundStats)), never
//!   silently dropped, and handlers never block.
//!
//! Consistency contract, in one line: **round-atomic, round-stale by
//! at most one** — every answer reflects exactly one completed round,
//! and a reader racing `finish_round` sees either the previous round
//! or the new one, whole. See `docs/SERVING.md` for the protocol and
//! the consistency model, and `tests/serve.rs` (workspace root) for
//! the torn-read and replay-determinism suites.

#![warn(missing_docs)]

mod client;
pub mod proto;
mod server;

pub use client::Client;
pub use proto::{Request, Response};
pub use server::{ServeError, ServeOptions, Server};
