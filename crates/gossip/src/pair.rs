//! The gossip pair `(y, g)` of Section 4.1.1.
//!
//! Every node carries a *gossip value* `y` and a *gossip weight* `g`;
//! push-sum repeatedly splits and re-sums these pairs, and the tracked
//! quantity is the ratio `y / g`. When `g = 0` the paper uses the sentinel
//! ratio `u = 10` (an impossible value for trust ratios, which live in
//! `[0, 1]`).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// The paper's sentinel ratio for nodes whose gossip weight is still zero.
pub const RATIO_SENTINEL: f64 = 10.0;

/// A push-sum gossip pair `(y, g)`.
///
/// ```
/// use dg_gossip::{GossipPair, RATIO_SENTINEL};
///
/// // An originator carries its value with unit gossip weight …
/// let p = GossipPair::originator(0.6);
/// assert_eq!(p.ratio(), 0.6);
///
/// // … splitting into k+1 shares preserves both the tracked ratio and
/// // the total mass (the push-sum invariant).
/// let share = p.share(3);
/// assert_eq!(share.ratio(), 0.6);
/// let reassembled = share + share + share;
/// assert!((reassembled.value - p.value).abs() < 1e-12);
/// assert!((reassembled.weight - p.weight).abs() < 1e-12);
///
/// // Zero-weight pairs report the paper's sentinel ratio u = 10.
/// assert_eq!(GossipPair::passive(0.6).ratio(), RATIO_SENTINEL);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GossipPair {
    /// Gossip value `y` (starts as the local feedback `t_ij`, or 0).
    pub value: f64,
    /// Gossip weight `g` (starts as 1 for designated originators, else 0).
    pub weight: f64,
}

impl GossipPair {
    /// The additive identity `(0, 0)`.
    pub const ZERO: GossipPair = GossipPair {
        value: 0.0,
        weight: 0.0,
    };

    /// Pair carrying feedback `y` with unit gossip weight.
    pub fn originator(value: f64) -> Self {
        Self { value, weight: 1.0 }
    }

    /// Pair carrying feedback `y` with zero gossip weight (used by
    /// Algorithm 2, where only one node gets weight 1).
    pub fn passive(value: f64) -> Self {
        Self { value, weight: 0.0 }
    }

    /// The tracked ratio `y / g`, or the paper's sentinel 10 when `g = 0`.
    #[inline]
    pub fn ratio(&self) -> f64 {
        if self.weight == 0.0 {
            RATIO_SENTINEL
        } else {
            self.value / self.weight
        }
    }

    /// Split into `shares` equal parts (`shares ≥ 1`): the `(1/(k+1))·pair`
    /// share sent to each of the `k` chosen neighbours and to the node
    /// itself.
    #[inline]
    pub fn share(&self, shares: usize) -> GossipPair {
        let f = 1.0 / shares as f64;
        GossipPair {
            value: self.value * f,
            weight: self.weight * f,
        }
    }

    /// Whether both components are exactly zero (nothing to diffuse yet).
    pub fn is_zero(&self) -> bool {
        self.value == 0.0 && self.weight == 0.0
    }
}

impl Add for GossipPair {
    type Output = GossipPair;
    fn add(self, rhs: GossipPair) -> GossipPair {
        GossipPair {
            value: self.value + rhs.value,
            weight: self.weight + rhs.weight,
        }
    }
}

impl AddAssign for GossipPair {
    fn add_assign(&mut self, rhs: GossipPair) {
        self.value += rhs.value;
        self.weight += rhs.weight;
    }
}

impl std::iter::Sum for GossipPair {
    fn sum<I: Iterator<Item = GossipPair>>(iter: I) -> GossipPair {
        iter.fold(GossipPair::ZERO, |acc, p| acc + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ratio_uses_sentinel_for_zero_weight() {
        assert_eq!(GossipPair::passive(0.7).ratio(), RATIO_SENTINEL);
        assert_eq!(GossipPair::ZERO.ratio(), RATIO_SENTINEL);
        assert!((GossipPair::originator(0.7).ratio() - 0.7).abs() < 1e-15);
    }

    #[test]
    fn share_splits_mass_exactly() {
        let p = GossipPair::originator(0.9);
        let s = p.share(3);
        let reassembled = s + s + s;
        assert!((reassembled.value - p.value).abs() < 1e-12);
        assert!((reassembled.weight - p.weight).abs() < 1e-12);
    }

    #[test]
    fn share_preserves_ratio() {
        let p = GossipPair::originator(0.42);
        assert!((p.share(5).ratio() - p.ratio()).abs() < 1e-12);
    }

    #[test]
    fn sum_of_pairs() {
        let pairs = [
            GossipPair::originator(0.2),
            GossipPair::originator(0.4),
            GossipPair::passive(0.9),
        ];
        let total: GossipPair = pairs.into_iter().sum();
        assert!((total.value - 1.5).abs() < 1e-12);
        assert!((total.weight - 2.0).abs() < 1e-12);
        assert!((total.ratio() - 0.75).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn share_is_mass_conserving(v in -10.0..10.0f64, w in 0.0..10.0f64, k in 1usize..20) {
            let p = GossipPair { value: v, weight: w };
            let s = p.share(k);
            let total = (0..k).map(|_| s).sum::<GossipPair>();
            prop_assert!((total.value - v).abs() < 1e-9);
            prop_assert!((total.weight - w).abs() < 1e-9);
        }
    }
}
