//! Rumor-spreading engines for the Theorem 5.1 ablation.
//!
//! Chierichetti et al. (the paper's \[25\]) showed that on PA graphs push
//! alone and pull alone are slow, while push-pull informs everyone in
//! `O((log₂N)²)` steps. Theorem 5.1 claims differential push matches
//! push-pull *without* pulling. This module measures the spreading time
//! of a single rumor under each protocol so the ablation harness can
//! verify the ordering empirically.

use crate::error::GossipError;
use crate::fanout::FanoutPolicy;
use dg_graph::{Graph, NodeId};
use rand::seq::index::sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Rumor-spreading protocol variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpreadProtocol {
    /// Informed nodes push to one random neighbour per step.
    Push,
    /// Uninformed nodes pull from one random neighbour per step.
    Pull,
    /// Both of the above simultaneously.
    PushPull,
    /// Informed nodes push to `k_i` (differential fan-out) random
    /// neighbours per step.
    DifferentialPush,
}

impl SpreadProtocol {
    /// Label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            SpreadProtocol::Push => "push",
            SpreadProtocol::Pull => "pull",
            SpreadProtocol::PushPull => "push-pull",
            SpreadProtocol::DifferentialPush => "differential-push",
        }
    }
}

/// Result of a spreading run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpreadOutcome {
    /// Steps until everyone was informed (or the cap).
    pub steps: usize,
    /// Whether all nodes were informed within the cap.
    pub complete: bool,
    /// Informed-node count after each step.
    pub informed_per_step: Vec<usize>,
}

/// Spread a rumor from `source` until every node is informed or
/// `max_steps` is reached.
///
/// # Errors
/// Propagates fan-out resolution errors (empty graphs are fine — the
/// run completes instantly when `source` is the only node).
pub fn spread<R: Rng + ?Sized>(
    graph: &Graph,
    protocol: SpreadProtocol,
    source: NodeId,
    max_steps: usize,
    rng: &mut R,
) -> Result<SpreadOutcome, GossipError> {
    let n = graph.node_count();
    let fanouts = match protocol {
        SpreadProtocol::DifferentialPush => FanoutPolicy::Differential.resolve(graph)?,
        _ => vec![1; n],
    };
    let mut informed = vec![false; n];
    if source.index() < n {
        informed[source.index()] = true;
    }
    let mut informed_count = informed.iter().filter(|&&b| b).count();
    let mut trace = Vec::new();
    let mut steps = 0;

    while informed_count < n && steps < max_steps {
        let mut next = informed.clone();
        let pushes = matches!(
            protocol,
            SpreadProtocol::Push | SpreadProtocol::PushPull | SpreadProtocol::DifferentialPush
        );
        let pulls = matches!(protocol, SpreadProtocol::Pull | SpreadProtocol::PushPull);

        if pushes {
            for i in 0..n {
                if !informed[i] {
                    continue;
                }
                let ns = graph.neighbours(NodeId(i as u32));
                if ns.is_empty() {
                    continue;
                }
                let k = fanouts[i].min(ns.len());
                for idx in sample(rng, ns.len(), k) {
                    next[ns[idx] as usize] = true;
                }
            }
        }
        if pulls {
            for i in 0..n {
                if informed[i] {
                    continue;
                }
                let ns = graph.neighbours(NodeId(i as u32));
                if ns.is_empty() {
                    continue;
                }
                let pick = ns[rng.random_range(0..ns.len())] as usize;
                if informed[pick] {
                    next[i] = true;
                }
            }
        }

        informed = next;
        informed_count = informed.iter().filter(|&&b| b).count();
        steps += 1;
        trace.push(informed_count);
    }

    Ok(SpreadOutcome {
        steps,
        complete: informed_count == n,
        informed_per_step: trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_graph::{generators, pa};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn all_protocols_complete_on_complete_graph() {
        let g = generators::complete(30);
        for p in [
            SpreadProtocol::Push,
            SpreadProtocol::Pull,
            SpreadProtocol::PushPull,
            SpreadProtocol::DifferentialPush,
        ] {
            let out = spread(&g, p, NodeId(0), 1000, &mut rng(1)).unwrap();
            assert!(out.complete, "{} did not complete", p.label());
        }
    }

    #[test]
    fn informed_count_is_monotone() {
        let g =
            pa::preferential_attachment(pa::PaConfig { nodes: 200, m: 2 }, &mut rng(2)).unwrap();
        let out = spread(&g, SpreadProtocol::PushPull, NodeId(5), 1000, &mut rng(3)).unwrap();
        assert!(out.complete);
        for w in out.informed_per_step.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn differential_not_slower_than_push_on_pa() {
        let g =
            pa::preferential_attachment(pa::PaConfig { nodes: 1000, m: 2 }, &mut rng(4)).unwrap();
        // Average over several runs to damp randomness.
        let avg = |protocol: SpreadProtocol| -> f64 {
            (0..5)
                .map(|s| {
                    spread(&g, protocol, NodeId(0), 10_000, &mut rng(100 + s))
                        .unwrap()
                        .steps as f64
                })
                .sum::<f64>()
                / 5.0
        };
        let push = avg(SpreadProtocol::Push);
        let diff = avg(SpreadProtocol::DifferentialPush);
        assert!(
            diff <= push,
            "differential {diff} should not be slower than push {push}"
        );
    }

    #[test]
    fn spreading_time_is_polylog_on_pa() {
        let g =
            pa::preferential_attachment(pa::PaConfig { nodes: 2000, m: 2 }, &mut rng(5)).unwrap();
        let out = spread(
            &g,
            SpreadProtocol::DifferentialPush,
            NodeId(0),
            10_000,
            &mut rng(6),
        )
        .unwrap();
        assert!(out.complete);
        let log2n = (2000f64).log2();
        assert!(
            (out.steps as f64) <= log2n * log2n,
            "steps {} exceeds (log2 N)^2 = {}",
            out.steps,
            log2n * log2n
        );
    }

    #[test]
    fn single_node_graph_is_instantly_complete() {
        let g = dg_graph::GraphBuilder::new(1).build();
        let out = spread(&g, SpreadProtocol::Push, NodeId(0), 10, &mut rng(7)).unwrap();
        assert!(out.complete);
        assert_eq!(out.steps, 0);
    }
}
