//! The contribution-vector potential `ψ_n` of Theorem 5.2.
//!
//! The appendix proof tracks, for every node `j`, a contribution vector
//! `c_{n,·,j}` recording how much of each node `i`'s original mass has
//! reached `j` after `n` steps. Convergence is equivalent to every
//! contribution approaching `g_{n,j}/N`, and the potential
//!
//! ```text
//! ψ_n = Σ_{j,i} (c_{n,i,j} − g_{n,j}/N)²
//! ```
//!
//! decays geometrically (`E[ψ_{n+1}|ψ_n] ≤ ψ_n/(p+1) + K` for `p`-push).
//! This module simulates push gossip while tracking the full `N × N`
//! contribution matrix, so the ablation harness can plot the decay and
//! check the `ψ_0 = N − 1` starting point. Memory is `O(N²)` — use small
//! `N`.

use crate::error::GossipError;
use crate::fanout::FanoutPolicy;
use dg_graph::{Graph, NodeId};
use rand::seq::index::sample;
use rand::Rng;

/// Tracks contribution vectors under push gossip.
#[derive(Debug, Clone)]
pub struct PotentialTracker<'g> {
    graph: &'g Graph,
    fanouts: Vec<usize>,
    /// `contrib[j][i]` = contribution of node `i` present at node `j`.
    contrib: Vec<Vec<f64>>,
}

impl<'g> PotentialTracker<'g> {
    /// Start with the identity contribution matrix (each node holds
    /// exactly its own unit contribution), the `ψ_0 = N − 1` state.
    pub fn new(graph: &'g Graph, fanout: FanoutPolicy) -> Result<Self, GossipError> {
        let n = graph.node_count();
        let fanouts = fanout.resolve(graph)?;
        let mut contrib = vec![vec![0.0; n]; n];
        for (j, row) in contrib.iter_mut().enumerate() {
            row[j] = 1.0;
        }
        Ok(Self {
            graph,
            fanouts,
            contrib,
        })
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Gossip weight at node `j` (`g_{n,j} = Σ_i c_{n,i,j}`).
    pub fn weight(&self, j: NodeId) -> f64 {
        self.contrib[j.index()].iter().sum()
    }

    /// Current potential `ψ_n`.
    pub fn potential(&self) -> f64 {
        let n = self.node_count() as f64;
        self.contrib
            .iter()
            .map(|row| {
                let g: f64 = row.iter().sum();
                let target = g / n;
                row.iter()
                    .map(|&c| (c - target) * (c - target))
                    .sum::<f64>()
            })
            .sum()
    }

    /// Maximum relative contribution imbalance
    /// `max_{i,j} |c_{n,i,j}/‖c_{n,·,j}‖₁ − 1/N|` (the ξ-uniformity of
    /// Theorem 5.2). `None` while some node still has zero weight.
    pub fn max_imbalance(&self) -> Option<f64> {
        let n = self.node_count() as f64;
        let mut worst: f64 = 0.0;
        for row in &self.contrib {
            let norm: f64 = row.iter().sum();
            if norm == 0.0 {
                return None;
            }
            for &c in row {
                worst = worst.max((c / norm - 1.0 / n).abs());
            }
        }
        Some(worst)
    }

    /// One push-gossip step over the contribution matrix.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.node_count();
        let mut inbox = vec![vec![0.0; n]; n];
        for j in 0..n {
            let row = &self.contrib[j];
            let neighbours = self.graph.neighbours(NodeId(j as u32));
            let k = self.fanouts[j].min(neighbours.len());
            if k == 0 {
                for (slot, &c) in inbox[j].iter_mut().zip(row) {
                    *slot += c;
                }
                continue;
            }
            let f = 1.0 / (k + 1) as f64;
            for (slot, &c) in inbox[j].iter_mut().zip(row) {
                *slot += c * f;
            }
            for idx in sample(rng, neighbours.len(), k) {
                let target = neighbours[idx] as usize;
                for (slot, &c) in inbox[target].iter_mut().zip(row) {
                    *slot += c * f;
                }
            }
        }
        self.contrib = inbox;
    }

    /// Run `steps` steps, returning the potential after each (index 0 =
    /// `ψ_0` before any step).
    pub fn trace<R: Rng + ?Sized>(&mut self, steps: usize, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::with_capacity(steps + 1);
        out.push(self.potential());
        for _ in 0..steps {
            self.step(rng);
            out.push(self.potential());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_graph::{generators, pa};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn initial_potential_is_n_minus_one() {
        // Appendix: ψ₀ = N − 1.
        for n in [5usize, 10, 37] {
            let g = generators::complete(n);
            let t = PotentialTracker::new(&g, FanoutPolicy::Uniform(1)).unwrap();
            assert!((t.potential() - (n as f64 - 1.0)).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn mass_conservation_of_contributions() {
        let g = pa::preferential_attachment(pa::PaConfig { nodes: 40, m: 2 }, &mut rng(1)).unwrap();
        let mut t = PotentialTracker::new(&g, FanoutPolicy::Differential).unwrap();
        for _ in 0..20 {
            t.step(&mut rng(2));
        }
        // Column sums (each node's total contribution across the network)
        // must stay 1; total weight must stay N.
        let n = t.node_count();
        for i in 0..n {
            let col: f64 = (0..n).map(|j| t.contrib[j][i]).sum();
            assert!((col - 1.0).abs() < 1e-9, "contribution of node {i} = {col}");
        }
        let total_weight: f64 = (0..n).map(|j| t.weight(NodeId(j as u32))).sum();
        assert!((total_weight - n as f64).abs() < 1e-9);
    }

    #[test]
    fn potential_decays_geometrically_on_average() {
        let g = generators::complete(30);
        let mut t = PotentialTracker::new(&g, FanoutPolicy::Uniform(1)).unwrap();
        let trace = t.trace(40, &mut rng(3));
        // After 40 steps of 1-push on a complete graph, ψ should have
        // fallen by orders of magnitude from ψ₀ = 29.
        assert!(trace[40] < trace[0] * 1e-3, "ψ_40 = {}", trace[40]);
        // And the imbalance bound of Theorem 5.2 should be tiny.
        assert!(t.max_imbalance().unwrap() < 1e-2);
    }

    #[test]
    fn differential_decays_at_least_as_fast_as_push_on_pa() {
        let g = pa::preferential_attachment(pa::PaConfig { nodes: 60, m: 2 }, &mut rng(4)).unwrap();
        let steps = 30;
        let avg_final = |policy: FanoutPolicy, seed: u64| -> f64 {
            (0..3)
                .map(|s| {
                    let mut t = PotentialTracker::new(&g, policy).unwrap();
                    *t.trace(steps, &mut rng(seed + s)).last().unwrap()
                })
                .sum::<f64>()
                / 3.0
        };
        let push = avg_final(FanoutPolicy::Uniform(1), 10);
        let diff = avg_final(FanoutPolicy::Differential, 10);
        assert!(
            diff <= push * 1.5,
            "differential ψ {diff} much worse than push {push}"
        );
    }
}
