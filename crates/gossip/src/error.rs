//! Error type for gossip engines.

use thiserror::Error;

/// Errors produced by gossip engine configuration and initialisation.
#[derive(Debug, Error, PartialEq)]
pub enum GossipError {
    /// The error tolerance must be a positive finite number.
    #[error("error tolerance xi must be positive and finite, got {0}")]
    InvalidTolerance(f64),

    /// Loss probability outside `[0, 1)`.
    #[error("loss probability {0} outside [0, 1)")]
    InvalidLossProbability(f64),

    /// Initial state length didn't match the graph.
    #[error("initial state has {given} entries but the graph has {expected} nodes")]
    StateSizeMismatch {
        /// Entries supplied.
        given: usize,
        /// Nodes in the graph.
        expected: usize,
    },

    /// A uniform fan-out of zero pushes can never diffuse anything.
    #[error("uniform fan-out must be at least 1")]
    ZeroFanout,

    /// Gossip weight must be non-negative (it is a probability mass).
    #[error("gossip weights must be non-negative and finite, got {0}")]
    InvalidWeight(f64),

    /// A network fault profile failed validation.
    #[error("invalid network profile: {0}")]
    InvalidProfile(&'static str),

    /// An adversary mix failed validation.
    #[error("invalid adversary mix: {0}")]
    InvalidAdversaryMix(&'static str),
}
