//! Message accounting (Table 2).
//!
//! The paper reports "number of messages per node per step transmitted
//! due to gossiping": pushes to *other* nodes count as network messages;
//! the share a node keeps for itself does not cross the network and is
//! not counted. A push lost to churn still costs a message (it was
//! transmitted; only the ack is missing).
//!
//! Two normalisations are provided:
//!
//! * [`MessageStats::per_node_per_step`] — total messages / (N · steps):
//!   the whole-network average including protocol-quiescent nodes;
//! * [`MessageStats::per_active_node_per_step`] — the paper's Table 2
//!   statistic: messages divided by the nodes *actively gossiping* that
//!   step (≈ the mean differential fan-out, 1.1–1.2 on PA graphs).

use serde::{Deserialize, Serialize};

/// Per-run message statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MessageStats {
    /// Messages sent in each completed step (network pushes only).
    pub per_step: Vec<u64>,
    /// Actively pushing nodes in each completed step.
    pub active_per_step: Vec<u64>,
    /// Number of nodes in the run (for per-node normalisation).
    pub nodes: usize,
}

impl MessageStats {
    /// New collector for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            per_step: Vec::new(),
            active_per_step: Vec::new(),
            nodes,
        }
    }

    /// Record a completed step.
    pub fn record_step(&mut self, messages: u64, active_nodes: u64) {
        self.per_step.push(messages);
        self.active_per_step.push(active_nodes);
    }

    /// Total messages across the run.
    pub fn total(&self) -> u64 {
        self.per_step.iter().sum()
    }

    /// Steps observed.
    pub fn steps(&self) -> usize {
        self.per_step.len()
    }

    /// Mean messages per node per step over **all** nodes.
    pub fn per_node_per_step(&self) -> f64 {
        if self.per_step.is_empty() || self.nodes == 0 {
            return 0.0;
        }
        self.total() as f64 / (self.nodes as f64 * self.per_step.len() as f64)
    }

    /// Table 2's statistic: messages per **actively gossiping** node per
    /// step — total messages divided by total active node-steps. Active
    /// nodes push `k_i` messages each, so this converges to the
    /// activity-weighted mean differential fan-out (≈ 1.1–1.2 on PA
    /// graphs).
    pub fn per_active_node_per_step(&self) -> f64 {
        let active_total: u64 = self.active_per_step.iter().sum();
        if active_total == 0 {
            return 0.0;
        }
        self.total() as f64 / active_total as f64
    }

    /// Total messages per node (the whole-run communication cost used in
    /// the Section 5.3 differential-vs-normal comparison).
    pub fn per_node_total(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.total() as f64 / self.nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = MessageStats::new(10);
        assert_eq!(s.total(), 0);
        assert_eq!(s.per_node_per_step(), 0.0);
        assert_eq!(s.per_active_node_per_step(), 0.0);
        assert_eq!(s.per_node_total(), 0.0);
    }

    #[test]
    fn per_node_per_step_average() {
        let mut s = MessageStats::new(10);
        s.record_step(20, 10);
        s.record_step(10, 5);
        assert_eq!(s.total(), 30);
        assert_eq!(s.steps(), 2);
        assert!((s.per_node_per_step() - 1.5).abs() < 1e-12);
        assert!((s.per_node_total() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn active_normalisation_ignores_quiescent_nodes() {
        let mut s = MessageStats::new(10);
        s.record_step(12, 10); // 1.2 per active
        s.record_step(6, 5); // 1.2 per active — half the network stopped
        s.record_step(0, 0); // fully quiescent step: no contribution
        assert!((s.per_active_node_per_step() - 18.0 / 15.0).abs() < 1e-12);
        // The all-nodes normalisation is diluted instead.
        assert!(s.per_node_per_step() < 1.0);
    }

    #[test]
    fn zero_nodes_guard() {
        let mut s = MessageStats::new(0);
        s.record_step(5, 1);
        assert_eq!(s.per_node_per_step(), 0.0);
        assert_eq!(s.per_active_node_per_step(), 5.0);
    }

    #[test]
    fn all_quiescent_run_reports_zero_active_rate() {
        let mut s = MessageStats::new(4);
        s.record_step(0, 0);
        assert_eq!(s.per_active_node_per_step(), 0.0);
    }
}
