//! Vector gossip: simultaneous aggregation for all subjects
//! (the paper's Variations 3 and 4).
//!
//! Instead of gossiping one subject's pair, each node pushes its whole
//! sparse vector of gossip *trios* `(subject id, y, g)` — plus the
//! per-subject `count` mass used by Algorithm 2 — in a single message.
//! "The time complexity of all four variations will be of the same order
//! because reputations of all the nodes will be pushed simultaneously as
//! a vector, whereas the communication complexity ... will increase
//! proportionally to the size of vector." The engine therefore tracks
//! both message counts and entry counts.
//!
//! Convergence per node follows Eq. (7):
//! `Σ_j |y_ij(n)/g_ij(n) − y_ij(n−1)/g_ij(n−1)| ≤ N·ξ`,
//! with the usual sentinel ratio for zero weights; the announce / revoke /
//! stop protocol is shared with the scalar engine (see
//! [`scalar`](crate::scalar) for the revocation rationale).

use crate::config::GossipConfig;
use crate::error::GossipError;
use crate::metrics::MessageStats;
use crate::pair::RATIO_SENTINEL;
use dg_graph::{Graph, NodeId};
use rand::seq::index::sample;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-subject gossip state at one node: value, weight and count masses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct VectorEntry {
    /// Gossip value mass `y`.
    pub value: f64,
    /// Gossip weight mass `g`.
    pub weight: f64,
    /// Opinion-count mass (each opinion holder starts with 1).
    pub count: f64,
}

impl VectorEntry {
    /// Entry for an opinion holder in Variation 3 (weight 1).
    pub fn originator(value: f64) -> Self {
        Self {
            value,
            weight: 1.0,
            count: 1.0,
        }
    }

    /// Entry carrying feedback but zero gossip weight (Variation 4 /
    /// Algorithm 2 style, where exactly one node per subject holds the
    /// unit weight).
    pub fn passive(value: f64) -> Self {
        Self {
            value,
            weight: 0.0,
            count: 1.0,
        }
    }

    /// Ratio `y/g` with the sentinel for zero weight.
    #[inline]
    pub fn ratio(&self) -> f64 {
        if self.weight == 0.0 {
            RATIO_SENTINEL
        } else {
            self.value / self.weight
        }
    }

    /// Count estimate `count/g` (the gossiped `N_d`), `None` for zero
    /// weight.
    pub fn count_estimate(&self) -> Option<f64> {
        (self.weight != 0.0).then(|| self.count / self.weight)
    }

    fn share(&self, shares: usize) -> VectorEntry {
        let f = 1.0 / shares as f64;
        VectorEntry {
            value: self.value * f,
            weight: self.weight * f,
            count: self.count * f,
        }
    }

    fn add(&mut self, other: VectorEntry) {
        self.value += other.value;
        self.weight += other.weight;
        self.count += other.count;
    }
}

/// Sparse per-node gossip vector keyed by subject id.
pub type GossipVector = BTreeMap<u32, VectorEntry>;

/// Result of a completed vector gossip run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorOutcome {
    /// Gossip steps executed.
    pub steps: usize,
    /// Whether every node stopped within the step budget.
    pub converged: bool,
    /// Final per-node vectors.
    pub state: Vec<GossipVector>,
    /// Message accounting (vector messages, not entries).
    pub stats: MessageStats,
    /// Total entries shipped across the run (communication complexity).
    pub entries_sent: u64,
}

impl VectorOutcome {
    /// Ratio estimate of `subject` at `node`, `None` if the node holds no
    /// mass for that subject.
    pub fn estimate(&self, node: NodeId, subject: NodeId) -> Option<f64> {
        self.state[node.index()]
            .get(&subject.0)
            .filter(|e| e.weight != 0.0)
            .map(VectorEntry::ratio)
    }

    /// Count estimate (`N_d`) of `subject` at `node`.
    pub fn count_estimate(&self, node: NodeId, subject: NodeId) -> Option<f64> {
        self.state[node.index()]
            .get(&subject.0)
            .and_then(VectorEntry::count_estimate)
    }
}

/// Vector push-sum gossip engine (Variations 3 and 4).
#[derive(Debug, Clone)]
pub struct VectorGossip<'g> {
    graph: &'g Graph,
    config: GossipConfig,
    fanouts: Vec<usize>,
    state: Vec<GossipVector>,
    prev_ratio: Vec<BTreeMap<u32, f64>>,
    announced: Vec<bool>,
    stopped: Vec<bool>,
    step: usize,
    stats: MessageStats,
    entries_sent: u64,
}

impl<'g> VectorGossip<'g> {
    /// Create an engine with per-node initial vectors.
    pub fn new(
        graph: &'g Graph,
        config: GossipConfig,
        initial: Vec<GossipVector>,
    ) -> Result<Self, GossipError> {
        let config = config.validated()?;
        let n = graph.node_count();
        if initial.len() != n {
            return Err(GossipError::StateSizeMismatch {
                given: initial.len(),
                expected: n,
            });
        }
        for vec in &initial {
            for e in vec.values() {
                if !e.weight.is_finite() || e.weight < 0.0 {
                    return Err(GossipError::InvalidWeight(e.weight));
                }
            }
        }
        let fanouts = config.fanout.resolve(graph)?;
        let prev_ratio = initial
            .iter()
            .map(|v| v.iter().map(|(&j, e)| (j, e.ratio())).collect())
            .collect();
        Ok(Self {
            graph,
            config,
            fanouts,
            state: initial,
            prev_ratio,
            announced: vec![false; n],
            stopped: vec![false; n],
            step: 0,
            stats: MessageStats::new(n),
            entries_sent: 0,
        })
    }

    /// Steps executed so far.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// Whether every node has stopped.
    pub fn all_stopped(&self) -> bool {
        self.stopped.iter().all(|&s| s)
    }

    /// Total per-subject `(Σ y, Σ g, Σ count)` masses — conserved across
    /// steps.
    pub fn total_mass(&self) -> BTreeMap<u32, (f64, f64, f64)> {
        let mut totals: BTreeMap<u32, (f64, f64, f64)> = BTreeMap::new();
        for vec in &self.state {
            for (&j, e) in vec {
                let t = totals.entry(j).or_insert((0.0, 0.0, 0.0));
                t.0 += e.value;
                t.1 += e.weight;
                t.2 += e.count;
            }
        }
        totals
    }

    /// Execute one gossip step; returns messages sent.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let n = self.graph.node_count();
        let mut inbox: Vec<GossipVector> = vec![GossipVector::new(); n];
        let mut heard_other = vec![false; n];
        let mut messages = 0u64;
        let mut active = 0u64;

        for i in 0..n {
            let current = &self.state[i];
            if current.is_empty() {
                continue;
            }
            if self.stopped[i] {
                for (&j, e) in current {
                    inbox[i].entry(j).or_default().add(*e);
                }
                continue;
            }
            let neighbours = self.graph.neighbours(NodeId(i as u32));
            let k = self.fanouts[i].min(neighbours.len());
            if k == 0 {
                for (&j, e) in current {
                    inbox[i].entry(j).or_default().add(*e);
                }
                continue;
            }
            active += 1;
            // Choose targets once per node; the whole vector travels in
            // one message per target.
            let targets: Vec<usize> = sample(rng, neighbours.len(), k)
                .into_iter()
                .map(|idx| neighbours[idx] as usize)
                .collect();
            messages += k as u64;
            self.entries_sent += (current.len() * k) as u64;
            let lost: Vec<bool> = targets
                .iter()
                .map(|_| self.config.loss.drops(rng))
                .collect();
            for (&j, e) in current {
                let share = e.share(k + 1);
                inbox[i].entry(j).or_default().add(share);
                for (t_idx, &target) in targets.iter().enumerate() {
                    if lost[t_idx] {
                        inbox[i].entry(j).or_default().add(share);
                    } else {
                        inbox[target].entry(j).or_default().add(share);
                    }
                }
            }
            for (t_idx, &target) in targets.iter().enumerate() {
                if !lost[t_idx] {
                    heard_other[target] = true;
                }
            }
        }

        // Commit and run the convergence protocol with Eq. (7).
        let bound = n as f64 * self.config.xi;
        for i in 0..n {
            self.state[i] = std::mem::take(&mut inbox[i]);
            if heard_other[i] {
                let mut total_move = 0.0;
                for (&j, e) in &self.state[i] {
                    let prev = self.prev_ratio[i]
                        .get(&j)
                        .copied()
                        .unwrap_or(RATIO_SENTINEL);
                    total_move += (e.ratio() - prev).abs();
                }
                if total_move <= bound {
                    self.announced[i] = true;
                } else {
                    self.announced[i] = false;
                    self.stopped[i] = false;
                }
            }
            self.prev_ratio[i] = self.state[i].iter().map(|(&j, e)| (j, e.ratio())).collect();
        }

        // Derived (not latched) quiescence — see the scalar engine for the
        // deadlock rationale.
        for i in 0..n {
            let neighbours = self.graph.neighbours(NodeId(i as u32));
            self.stopped[i] = neighbours.is_empty()
                || (self.announced[i] && neighbours.iter().all(|&w| self.announced[w as usize]));
        }

        self.step += 1;
        self.stats.record_step(messages, active);
        messages
    }

    /// Run to quiescence or the step cap.
    pub fn run<R: Rng + ?Sized>(mut self, rng: &mut R) -> VectorOutcome {
        while !self.all_stopped() && self.step < self.config.max_steps {
            self.step(rng);
        }
        let converged = self.all_stopped();
        VectorOutcome {
            steps: self.step,
            converged,
            state: self.state,
            stats: self.stats,
            entries_sent: self.entries_sent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_graph::{generators, pa};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Build Variation-3 style initial vectors: `opinions[i]` is the list
    /// of `(subject, value)` feedback held by node `i`.
    fn initial_from_opinions(n: usize, opinions: &[(usize, usize, f64)]) -> Vec<GossipVector> {
        let mut init = vec![GossipVector::new(); n];
        for &(i, j, v) in opinions {
            init[i].insert(j as u32, VectorEntry::originator(v));
        }
        init
    }

    #[test]
    fn rejects_wrong_size() {
        let g = generators::complete(3);
        assert!(matches!(
            VectorGossip::new(&g, GossipConfig::default(), vec![GossipVector::new(); 2]),
            Err(GossipError::StateSizeMismatch { .. })
        ));
    }

    #[test]
    fn per_subject_means_match_direct_computation() {
        let g = generators::complete(12);
        // Subject 0 judged by nodes 1, 2, 3; subject 5 by nodes 0 and 7.
        let opinions = [
            (1, 0, 0.9),
            (2, 0, 0.6),
            (3, 0, 0.3),
            (0, 5, 0.2),
            (7, 5, 0.8),
        ];
        let init = initial_from_opinions(12, &opinions);
        let out = VectorGossip::new(&g, GossipConfig::differential(1e-8).unwrap(), init)
            .unwrap()
            .run(&mut rng(1));
        assert!(out.converged);
        // Every node should estimate subject 0 at (0.9+0.6+0.3)/3 = 0.6
        // and subject 5 at 0.5.
        for v in 0..12u32 {
            let e0 = out.estimate(NodeId(v), NodeId(0)).unwrap();
            let e5 = out.estimate(NodeId(v), NodeId(5)).unwrap();
            assert!((e0 - 0.6).abs() < 1e-3, "node {v}: {e0}");
            assert!((e5 - 0.5).abs() < 1e-3, "node {v}: {e5}");
        }
    }

    #[test]
    fn variation3_count_mass_mirrors_weight_mass() {
        // In Variation 3 every opinion holder starts with weight 1 *and*
        // count 1, so the count estimate converges to
        // Σ count / Σ weight = N_d / N_d = 1 — the count channel only
        // recovers N_d itself under the single-weight-originator setup of
        // Algorithm 2 / Variation 4 (see
        // `single_weight_originator_computes_sum`).
        let g = generators::complete(10);
        let opinions = [(1, 0, 0.3), (2, 0, 0.6), (3, 0, 0.9), (4, 9, 1.0)];
        let init = initial_from_opinions(10, &opinions);
        let out = VectorGossip::new(&g, GossipConfig::differential(1e-9).unwrap(), init)
            .unwrap()
            .run(&mut rng(2));
        assert!(out.converged);
        for v in 0..10u32 {
            let c0 = out.count_estimate(NodeId(v), NodeId(0)).unwrap();
            assert!((c0 - 1.0).abs() < 1e-2, "node {v}: count {c0}");
        }
    }

    #[test]
    fn mass_conserved_per_subject() {
        let g = pa::preferential_attachment(pa::PaConfig { nodes: 60, m: 2 }, &mut rng(3)).unwrap();
        let opinions = [(0, 1, 0.4), (2, 1, 0.9), (5, 30, 0.7)];
        let init = initial_from_opinions(60, &opinions);
        let mut engine =
            VectorGossip::new(&g, GossipConfig::differential(1e-6).unwrap(), init).unwrap();
        let before = engine.total_mass();
        for _ in 0..30 {
            engine.step(&mut rng(4));
        }
        let after = engine.total_mass();
        for (j, b) in &before {
            let a = &after[j];
            assert!((b.0 - a.0).abs() < 1e-9, "value mass subject {j}");
            assert!((b.1 - a.1).abs() < 1e-9, "weight mass subject {j}");
            assert!((b.2 - a.2).abs() < 1e-9, "count mass subject {j}");
        }
    }

    #[test]
    fn single_weight_originator_computes_sum() {
        // Variation-4 style: three nodes have feedback about subject 7 but
        // only node 0 carries gossip weight 1; the converged ratio is the
        // *sum* of feedback values.
        let g = generators::complete(8);
        let mut init = vec![GossipVector::new(); 8];
        init[0].insert(7, VectorEntry::originator(0.2)); // weight 1
        init[1].insert(7, VectorEntry::passive(0.5));
        init[2].insert(7, VectorEntry::passive(0.9));
        let out = VectorGossip::new(&g, GossipConfig::differential(1e-9).unwrap(), init)
            .unwrap()
            .run(&mut rng(5));
        assert!(out.converged);
        for v in 0..8u32 {
            let sum = out.estimate(NodeId(v), NodeId(7)).unwrap();
            assert!((sum - 1.6).abs() < 1e-3, "node {v}: {sum}");
            let count = out.count_estimate(NodeId(v), NodeId(7)).unwrap();
            assert!((count - 3.0).abs() < 1e-2, "node {v}: {count}");
        }
    }

    #[test]
    fn entries_sent_grows_with_vector_size() {
        let g = generators::complete(6);
        let small = initial_from_opinions(6, &[(0, 1, 0.5)]);
        let big = initial_from_opinions(
            6,
            &[
                (0, 1, 0.5),
                (0, 2, 0.5),
                (0, 3, 0.5),
                (1, 2, 0.4),
                (2, 3, 0.3),
            ],
        );
        let out_small = VectorGossip::new(&g, GossipConfig::differential(1e-4).unwrap(), small)
            .unwrap()
            .run(&mut rng(6));
        let out_big = VectorGossip::new(&g, GossipConfig::differential(1e-4).unwrap(), big)
            .unwrap()
            .run(&mut rng(6));
        let per_step_small = out_small.entries_sent as f64 / out_small.steps as f64;
        let per_step_big = out_big.entries_sent as f64 / out_big.steps as f64;
        assert!(per_step_big > per_step_small);
    }
}
