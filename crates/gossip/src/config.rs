//! Engine configuration.

use crate::error::GossipError;
use crate::fanout::FanoutPolicy;
use crate::loss::{ChurnModel, LossModel};
use serde::{Deserialize, Serialize};

/// Execution engine for round-driving layers (the simulator's lifecycle
/// loop and, on multi-core hosts, batched gossip sweeps).
///
/// The gossip *protocol* semantics are identical under every engine —
/// per-node RNG streams derived with [`node_stream_seed`] make results
/// bit-for-bit equal regardless of thread count (and, for `Sharded`,
/// regardless of shard count). `Parallel` selects the batched data path
/// (flat CSR trust storage, phase fan-out over nodes with rayon);
/// `Sharded` partitions nodes into contiguous shards, each with its own
/// CSR and bounded scratch, fanning *shards* out over the pool — the
/// million-node configuration; `Incremental` keeps the sharded substrate
/// persistent across rounds and re-derives only the rows and aggregates
/// the round actually touched — the skewed-traffic configuration;
/// `Sequential` keeps the reference map-based driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EngineKind {
    /// Reference single-stream driver over map-based state.
    #[default]
    Sequential,
    /// Batched phase engine: CSR state, rayon fan-out over nodes.
    Parallel,
    /// Sharded phase engine: per-shard CSR state and bounded scratch,
    /// rayon fan-out over shards (shard count on the round config).
    Sharded,
    /// Incremental delta engine: persistent sharded CSR state, dirty-set
    /// tracking and cached per-subject aggregates, so rounds cost
    /// `O(dirty)` instead of `O(N)` under skewed traffic.
    Incremental,
}

/// The trust-matrix substrate a round engine runs on. Returned by
/// [`EngineKind::substrate`] so the scenario layer prepares storage with
/// one match instead of re-enumerating engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSubstrate {
    /// Map-per-row dynamic storage (the sequential reference driver).
    Dynamic,
    /// One flat CSR arena (the batched parallel engine).
    FlatCsr,
    /// Contiguous row shards, one CSR each (sharded and incremental
    /// engines).
    Sharded,
}

impl EngineKind {
    /// Every engine, in the canonical reporting order. Bench suites and
    /// trend trackers iterate this so a new engine shows up everywhere
    /// by construction.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Sequential,
        EngineKind::Parallel,
        EngineKind::Sharded,
        EngineKind::Incremental,
    ];

    /// Stable label for CLI flags and JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Sequential => "sequential",
            EngineKind::Parallel => "parallel",
            EngineKind::Sharded => "sharded",
            EngineKind::Incremental => "incremental",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sequential" | "seq" => Some(EngineKind::Sequential),
            "parallel" | "par" => Some(EngineKind::Parallel),
            "sharded" | "shard" => Some(EngineKind::Sharded),
            "incremental" | "inc" => Some(EngineKind::Incremental),
            _ => None,
        }
    }

    /// The trust-storage substrate this engine expects its scenario to
    /// prepare.
    pub fn substrate(self) -> EngineSubstrate {
        match self {
            EngineKind::Sequential => EngineSubstrate::Dynamic,
            EngineKind::Parallel => EngineSubstrate::FlatCsr,
            EngineKind::Sharded | EngineKind::Incremental => EngineSubstrate::Sharded,
        }
    }
}

/// Derive the RNG stream seed of one node from a base (round or run)
/// seed — a SplitMix64 mix, so neighbouring node ids land on
/// uncorrelated streams.
///
/// Every fan-out site (the round engine's transact phase, the
/// distributed peer runner) derives per-node `ChaCha8Rng` streams with
/// this function; results are then independent of execution order and
/// thread count by construction.
pub fn node_stream_seed(base: u64, node: u32) -> u64 {
    let mut z = base ^ (u64::from(node).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of a gossip run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Convergence tolerance `ξ` of the paper's algorithms.
    pub xi: f64,
    /// Fan-out policy (differential vs. uniform push).
    pub fanout: FanoutPolicy,
    /// Packet loss model (Fig. 4).
    pub loss: LossModel,
    /// Churn model (node departures with pair hand-over).
    pub churn: ChurnModel,
    /// Hard step cap: runs that have not converged by then report
    /// `converged = false` instead of spinning forever.
    pub max_steps: usize,
    /// Execution engine for round-driving layers consuming this config
    /// (see [`EngineKind`]); the gossip protocol itself is
    /// engine-agnostic.
    pub engine: EngineKind,
    /// Whether convergence announcements are *sticky* (the paper's
    /// literal protocol: once announced, never revoked). Sticky
    /// announcements are safe — and faster to quiesce — when every node
    /// starts with positive gossip weight (averaging mode). With
    /// zero-weight regions (single-subject aggregation) they can freeze
    /// sentinel-ratio nodes early, so the default is `false`: a stopped
    /// node whose ratio is disturbed by more than `ξ` revokes and
    /// resumes (see the `scalar` module docs).
    pub sticky_announcements: bool,
    /// Adversarial population mix this config's experiment assumes (see
    /// [`AdversaryMix`](crate::AdversaryMix)). **Descriptive metadata,
    /// like [`EngineKind`] for the protocol itself**: the gossip engines
    /// are adversary-agnostic and never read it — the distortion is
    /// applied where the mix is *compiled*, by the simulator's scenario
    /// build (`ScenarioConfig::adversary` → per-node strategies in the
    /// round engines) and by the `dg-p2p` deployment
    /// (`DistributedConfig::adversary` → byzantine input falsification).
    /// It is carried and validated here so a config derived from a
    /// scenario serializes the full experiment description. Defaults to
    /// [`AdversaryMix::none`](crate::AdversaryMix::none).
    #[serde(default)]
    pub adversary: crate::adversary::AdversaryMix,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            xi: 1e-4,
            fanout: FanoutPolicy::Differential,
            loss: LossModel::none(),
            churn: ChurnModel::none(),
            max_steps: 100_000,
            engine: EngineKind::default(),
            sticky_announcements: false,
            adversary: crate::adversary::AdversaryMix::none(),
        }
    }
}

impl GossipConfig {
    /// Differential gossip with tolerance `xi` and otherwise default
    /// settings.
    pub fn differential(xi: f64) -> Result<Self, GossipError> {
        Self {
            xi,
            ..Self::default()
        }
        .validated()
    }

    /// Normal (uniform, 1-push) push gossip with tolerance `xi` — the
    /// GossipTrust-style baseline.
    pub fn normal_push(xi: f64) -> Result<Self, GossipError> {
        Self {
            xi,
            fanout: FanoutPolicy::Uniform(1),
            ..Self::default()
        }
        .validated()
    }

    /// Builder-style: set the loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Builder-style: set the churn model.
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = churn;
        self
    }

    /// Builder-style: apply a [`NetworkProfile`](crate::profile::NetworkProfile)'s synchronous-engine
    /// view — its loss as the paper's detect-and-recredit [`LossModel`]
    /// and its churn as permanent departures capped at `max_departures`.
    /// Delay, duplication and partitions are transport-level faults with
    /// no synchronous analogue; they take effect only in `dg-p2p`'s
    /// faulty transport.
    pub fn with_profile(
        mut self,
        profile: &crate::profile::NetworkProfile,
        max_departures: usize,
    ) -> Self {
        self.loss = profile.sync_loss_model();
        self.churn = if profile.churn.is_enabled() {
            profile.sync_churn_model(max_departures)
        } else {
            ChurnModel::none()
        };
        self
    }

    /// Builder-style: set the fanout policy (how many neighbours a node
    /// pushes shares to per step).
    pub fn with_fanout(mut self, fanout: FanoutPolicy) -> Self {
        self.fanout = fanout;
        self
    }

    /// Builder-style: set the step cap.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Builder-style: use the paper's literal sticky announcements.
    pub fn with_sticky_announcements(mut self) -> Self {
        self.sticky_announcements = true;
        self
    }

    /// Builder-style: select the execution engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Builder-style: set the adversarial population mix.
    pub fn with_adversary(mut self, adversary: crate::adversary::AdversaryMix) -> Self {
        self.adversary = adversary;
        self
    }

    /// Validate the tolerance and the adversary mix.
    pub fn validated(self) -> Result<Self, GossipError> {
        if !self.xi.is_finite() || self.xi <= 0.0 {
            return Err(GossipError::InvalidTolerance(self.xi));
        }
        self.adversary.validated()?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(GossipConfig::default().validated().is_ok());
    }

    #[test]
    fn tolerance_validation() {
        assert!(GossipConfig::differential(0.0).is_err());
        assert!(GossipConfig::differential(-1.0).is_err());
        assert!(GossipConfig::differential(f64::NAN).is_err());
        assert!(GossipConfig::differential(1e-5).is_ok());
    }

    #[test]
    fn normal_push_uses_uniform_one() {
        let c = GossipConfig::normal_push(1e-3).unwrap();
        assert_eq!(c.fanout, FanoutPolicy::Uniform(1));
    }

    #[test]
    fn engine_kind_labels_roundtrip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(EngineKind::parse("par"), Some(EngineKind::Parallel));
        assert_eq!(EngineKind::parse("shard"), Some(EngineKind::Sharded));
        assert_eq!(EngineKind::parse("inc"), Some(EngineKind::Incremental));
        assert_eq!(EngineKind::parse("nope"), None);
        assert_eq!(EngineKind::default(), EngineKind::Sequential);
    }

    #[test]
    fn engine_substrates_cover_all_engines() {
        assert_eq!(EngineKind::Sequential.substrate(), EngineSubstrate::Dynamic);
        assert_eq!(EngineKind::Parallel.substrate(), EngineSubstrate::FlatCsr);
        assert_eq!(EngineKind::Sharded.substrate(), EngineSubstrate::Sharded);
        assert_eq!(
            EngineKind::Incremental.substrate(),
            EngineSubstrate::Sharded
        );
    }

    #[test]
    fn node_stream_seeds_are_distinct_and_stable() {
        let a = node_stream_seed(42, 0);
        let b = node_stream_seed(42, 1);
        let c = node_stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, node_stream_seed(42, 0));
    }

    #[test]
    fn with_profile_maps_loss_and_churn() {
        let c = GossipConfig::default().with_profile(&crate::profile::NetworkProfile::lossy(), 10);
        assert!((c.loss.probability() - 0.1).abs() < 1e-12);
        assert_eq!(c.churn, ChurnModel::none());

        let c =
            GossipConfig::default().with_profile(&crate::profile::NetworkProfile::churning(), 25);
        assert!((c.churn.departure_probability() - 0.02).abs() < 1e-12);
        assert_eq!(c.churn.max_departures, 25);
    }

    #[test]
    fn builder_methods_compose() {
        let c = GossipConfig::differential(1e-3)
            .unwrap()
            .with_loss(LossModel::new(0.1).unwrap())
            .with_max_steps(42);
        assert_eq!(c.max_steps, 42);
        assert!((c.loss.probability() - 0.1).abs() < 1e-12);
    }
}
