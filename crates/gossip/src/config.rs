//! Engine configuration.

use crate::error::GossipError;
use crate::fanout::FanoutPolicy;
use crate::loss::{ChurnModel, LossModel};
use serde::{Deserialize, Serialize};

/// Configuration of a gossip run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Convergence tolerance `ξ` of the paper's algorithms.
    pub xi: f64,
    /// Fan-out policy (differential vs. uniform push).
    pub fanout: FanoutPolicy,
    /// Packet loss model (Fig. 4).
    pub loss: LossModel,
    /// Churn model (node departures with pair hand-over).
    pub churn: ChurnModel,
    /// Hard step cap: runs that have not converged by then report
    /// `converged = false` instead of spinning forever.
    pub max_steps: usize,
    /// Whether convergence announcements are *sticky* (the paper's
    /// literal protocol: once announced, never revoked). Sticky
    /// announcements are safe — and faster to quiesce — when every node
    /// starts with positive gossip weight (averaging mode). With
    /// zero-weight regions (single-subject aggregation) they can freeze
    /// sentinel-ratio nodes early, so the default is `false`: a stopped
    /// node whose ratio is disturbed by more than `ξ` revokes and
    /// resumes (see the `scalar` module docs).
    pub sticky_announcements: bool,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            xi: 1e-4,
            fanout: FanoutPolicy::Differential,
            loss: LossModel::none(),
            churn: ChurnModel::none(),
            max_steps: 100_000,
            sticky_announcements: false,
        }
    }
}

impl GossipConfig {
    /// Differential gossip with tolerance `xi` and otherwise default
    /// settings.
    pub fn differential(xi: f64) -> Result<Self, GossipError> {
        Self {
            xi,
            ..Self::default()
        }
        .validated()
    }

    /// Normal (uniform, 1-push) push gossip with tolerance `xi` — the
    /// GossipTrust-style baseline.
    pub fn normal_push(xi: f64) -> Result<Self, GossipError> {
        Self {
            xi,
            fanout: FanoutPolicy::Uniform(1),
            ..Self::default()
        }
        .validated()
    }

    /// Builder-style: set the loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Builder-style: set the churn model.
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = churn;
        self
    }

    /// Builder-style: set the step cap.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Builder-style: use the paper's literal sticky announcements.
    pub fn with_sticky_announcements(mut self) -> Self {
        self.sticky_announcements = true;
        self
    }

    /// Validate the tolerance.
    pub fn validated(self) -> Result<Self, GossipError> {
        if !self.xi.is_finite() || self.xi <= 0.0 {
            return Err(GossipError::InvalidTolerance(self.xi));
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(GossipConfig::default().validated().is_ok());
    }

    #[test]
    fn tolerance_validation() {
        assert!(GossipConfig::differential(0.0).is_err());
        assert!(GossipConfig::differential(-1.0).is_err());
        assert!(GossipConfig::differential(f64::NAN).is_err());
        assert!(GossipConfig::differential(1e-5).is_ok());
    }

    #[test]
    fn normal_push_uses_uniform_one() {
        let c = GossipConfig::normal_push(1e-3).unwrap();
        assert_eq!(c.fanout, FanoutPolicy::Uniform(1));
    }

    #[test]
    fn builder_methods_compose() {
        let c = GossipConfig::differential(1e-3)
            .unwrap()
            .with_loss(LossModel::new(0.1).unwrap())
            .with_max_steps(42);
        assert_eq!(c.max_steps, 42);
        assert!((c.loss.probability() - 0.1).abs() < 1e-12);
    }
}
