//! Scalar push-sum gossip with the paper's convergence protocol
//! (Algorithm 1's diffusion core).
//!
//! Every node holds a gossip pair `(y, g)`. Each step, a still-active node
//! splits its pair into `k + 1` equal shares, keeps one, and pushes one to
//! each of `k` randomly chosen neighbours (`k` from the configured
//! [`FanoutPolicy`](crate::fanout::FanoutPolicy) — 1 for normal push,
//! degree-ratio for differential push). Nodes sum everything they receive;
//! the ratio `y / g` converges to `Σ y⁰ / Σ g⁰` everywhere.
//!
//! ## Convergence protocol (Section 4.1.1)
//!
//! * A node checks convergence only when it received a pair from **someone
//!   other than itself** this step (the paper's `|S| > 1`).
//! * It is *converged* when its ratio moved by at most `ξ` since the
//!   previous step; it announces this to its neighbours.
//! * A node **stops pushing** once itself and *all* of its neighbours have
//!   announced convergence.
//!
//! ## Implementation decision: revocable announcements
//!
//! The paper does not specify what happens when a node's ratio moves
//! *after* it announced (e.g. a far region whose gossip weight is still
//! zero sits at the sentinel ratio 10, "converges" trivially, and only
//! later receives real mass). With sticky announcements such regions stop
//! early and become mass sinks, and the run never reaches the true
//! average. We therefore re-evaluate convergence each step: a stopped
//! node whose ratio is moved by more than `ξ` by incoming mass revokes
//! its announcement and resumes gossiping. Once ratios are genuinely
//! uniform, incoming shares no longer move them and the network quiesces
//! for good. (See DESIGN.md.)
//!
//! ## Mass conservation
//!
//! `Σ y` and `Σ g` are invariant: lost pushes bounce back to the sender
//! ("pushes the gossip pair to itself so that mass conservation still
//! applies"), and departing nodes hand their pair to a surviving node.
//! The engine `debug_assert!`s the invariant every step.

use crate::config::GossipConfig;
use crate::error::GossipError;
use crate::metrics::MessageStats;
use crate::pair::GossipPair;
use dg_graph::{Graph, NodeId};
use rand::seq::index::sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Result of a completed scalar gossip run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarOutcome {
    /// Gossip steps executed.
    pub steps: usize,
    /// Whether every present node stopped within the step budget.
    pub converged: bool,
    /// Final per-node ratio estimates (`y/g`, sentinel 10 where `g = 0`).
    pub estimates: Vec<f64>,
    /// Final per-node pairs.
    pub pairs: Vec<GossipPair>,
    /// Message accounting.
    pub stats: MessageStats,
    /// Nodes still present at the end (false = departed by churn).
    pub present: Vec<bool>,
}

impl ScalarOutcome {
    /// The estimate at one node.
    pub fn estimate(&self, node: NodeId) -> f64 {
        self.estimates[node.index()]
    }

    /// Maximum absolute deviation of present nodes' estimates from
    /// `reference`.
    pub fn max_error(&self, reference: f64) -> f64 {
        self.estimates
            .iter()
            .zip(&self.present)
            .filter(|(_, &p)| p)
            .map(|(&e, _)| (e - reference).abs())
            .fold(0.0, f64::max)
    }
}

/// Scalar push-sum gossip engine.
///
/// Drive it with [`ScalarGossip::step`] for fine-grained control (the
/// Table 1 harness prints per-iteration values) or [`ScalarGossip::run`]
/// to completion.
#[derive(Debug, Clone)]
pub struct ScalarGossip<'g> {
    graph: &'g Graph,
    config: GossipConfig,
    fanouts: Vec<usize>,
    state: Vec<GossipPair>,
    /// Previous-step ratio `u` per node.
    prev_ratio: Vec<f64>,
    /// Current convergence announcement per node (revocable).
    announced: Vec<bool>,
    /// Whether the node is currently quiescent (not pushing).
    stopped: Vec<bool>,
    present: Vec<bool>,
    departures: usize,
    step: usize,
    stats: MessageStats,
    // Scratch buffers reused across steps.
    inbox: Vec<GossipPair>,
    heard_other: Vec<bool>,
}

impl<'g> ScalarGossip<'g> {
    /// Create an engine over `graph` with per-node initial pairs.
    ///
    /// # Errors
    /// * [`GossipError::StateSizeMismatch`] if `initial` has the wrong
    ///   length,
    /// * [`GossipError::InvalidWeight`] if any initial weight is negative
    ///   or non-finite,
    /// * configuration errors from [`GossipConfig::validated`] /
    ///   [`FanoutPolicy::resolve`](crate::fanout::FanoutPolicy::resolve).
    pub fn new(
        graph: &'g Graph,
        config: GossipConfig,
        initial: Vec<GossipPair>,
    ) -> Result<Self, GossipError> {
        let config = config.validated()?;
        let n = graph.node_count();
        if initial.len() != n {
            return Err(GossipError::StateSizeMismatch {
                given: initial.len(),
                expected: n,
            });
        }
        for p in &initial {
            if !p.weight.is_finite() || p.weight < 0.0 {
                return Err(GossipError::InvalidWeight(p.weight));
            }
        }
        let fanouts = config.fanout.resolve(graph)?;
        let prev_ratio = initial.iter().map(GossipPair::ratio).collect();
        Ok(Self {
            graph,
            config,
            fanouts,
            state: initial,
            prev_ratio,
            announced: vec![false; n],
            stopped: vec![false; n],
            present: vec![true; n],
            departures: 0,
            step: 0,
            stats: MessageStats::new(n),
            inbox: vec![GossipPair::ZERO; n],
            heard_other: vec![false; n],
        })
    }

    /// Convenience: start an **average** computation where every node is
    /// an originator of its own value (gossip weight 1 everywhere) —
    /// the setting of Theorem 5.2.
    pub fn average(
        graph: &'g Graph,
        config: GossipConfig,
        values: &[f64],
    ) -> Result<Self, GossipError> {
        let initial = values.iter().map(|&v| GossipPair::originator(v)).collect();
        Self::new(graph, config, initial)
    }

    /// Current per-node ratios.
    pub fn ratios(&self) -> Vec<f64> {
        self.state.iter().map(GossipPair::ratio).collect()
    }

    /// Current pair at `node`.
    pub fn pair(&self, node: NodeId) -> GossipPair {
        self.state[node.index()]
    }

    /// Steps executed so far.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// Whether every present node has stopped (protocol-level quiescence).
    pub fn all_stopped(&self) -> bool {
        self.stopped
            .iter()
            .zip(&self.present)
            .all(|(&s, &p)| s || !p)
    }

    /// Total `(Σ y, Σ g)` over all nodes — the conserved mass.
    pub fn total_mass(&self) -> (f64, f64) {
        self.state
            .iter()
            .fold((0.0, 0.0), |(y, g), p| (y + p.value, g + p.weight))
    }

    fn apply_churn<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.config.churn.departure_probability() == 0.0 {
            return;
        }
        let n = self.graph.node_count();
        for i in 0..n {
            if !self.present[i]
                || self.departures >= self.config.churn.max_departures
                || !self.config.churn.departs(rng)
            {
                continue;
            }
            // Keep at least one node so mass has somewhere to live.
            let survivors = self.present.iter().filter(|&&p| p).count();
            if survivors <= 1 {
                break;
            }
            // Hand the pair over to a present neighbour, or failing that
            // the lowest-id present node (the paper only requires "some
            // other node").
            let heir = self
                .graph
                .neighbours(NodeId(i as u32))
                .iter()
                .map(|&w| w as usize)
                .find(|&w| self.present[w])
                .or_else(|| (0..n).find(|&w| w != i && self.present[w]));
            if let Some(heir) = heir {
                let pair = std::mem::replace(&mut self.state[i], GossipPair::ZERO);
                self.state[heir] += pair;
                self.present[i] = false;
                self.departures += 1;
            }
        }

        // Overlay repair: a surviving node whose entire neighbourhood has
        // departed can never receive a push again, so it could neither
        // converge nor redistribute its mass. In a real overlay such a
        // peer reconnects; we model the equivalent mass movement by
        // cascading its hand-over (the peer drops out and rejoins later
        // as a fresh node). The cascade is not charged against
        // `max_departures` — it is a consequence, not a cause.
        loop {
            let survivors = self.present.iter().filter(|&&p| p).count();
            if survivors <= 1 {
                break;
            }
            let stranded = (0..n).find(|&i| {
                self.present[i]
                    && !self.graph.neighbours(NodeId(i as u32)).is_empty()
                    && self
                        .graph
                        .neighbours(NodeId(i as u32))
                        .iter()
                        .all(|&w| !self.present[w as usize])
            });
            let Some(i) = stranded else { break };
            let heir = (0..n)
                .find(|&w| w != i && self.present[w])
                .expect("survivors > 1");
            let pair = std::mem::replace(&mut self.state[i], GossipPair::ZERO);
            self.state[heir] += pair;
            self.present[i] = false;
        }
    }

    /// Execute one gossip step. Returns the number of network messages
    /// sent during the step.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        #[cfg(debug_assertions)]
        let mass_before = self.total_mass();

        self.apply_churn(rng);

        let n = self.graph.node_count();
        debug_assert_eq!(self.inbox.len(), n);
        for slot in self.inbox.iter_mut() {
            *slot = GossipPair::ZERO;
        }
        self.heard_other.iter_mut().for_each(|h| *h = false);

        let mut messages = 0u64;
        let mut active = 0u64;
        for i in 0..n {
            if !self.present[i] {
                continue;
            }
            if self.stopped[i] {
                // Quiescent: keep the pair in place, send nothing.
                self.inbox[i] += self.state[i];
                continue;
            }
            let neighbours = self.graph.neighbours(NodeId(i as u32));
            let k = self.fanouts[i].min(neighbours.len());
            if k == 0 {
                // Isolated node: nothing to push to; keep the pair.
                self.inbox[i] += self.state[i];
                continue;
            }
            active += 1;
            let share = self.state[i].share(k + 1);
            // Self share (not a network message).
            self.inbox[i] += share;
            // k distinct random neighbours.
            for idx in sample(rng, neighbours.len(), k) {
                let target = neighbours[idx] as usize;
                messages += 1;
                if !self.present[target] || self.config.loss.drops(rng) {
                    // No ack: the share returns to the sender.
                    self.inbox[i] += share;
                } else {
                    self.inbox[target] += share;
                    self.heard_other[target] = true;
                }
            }
        }

        // Commit received sums and update the convergence protocol.
        for i in 0..n {
            if !self.present[i] {
                continue;
            }
            self.state[i] = self.inbox[i];
            let ratio = self.state[i].ratio();
            if self.heard_other[i] {
                let moved = (ratio - self.prev_ratio[i]).abs();
                if moved <= self.config.xi {
                    self.announced[i] = true;
                } else if !self.config.sticky_announcements {
                    // Revocation: incoming mass disturbed the estimate.
                    self.announced[i] = false;
                    self.stopped[i] = false;
                }
            }
            self.prev_ratio[i] = ratio;
        }

        // Stopping rule: self + all (present) neighbours announced.
        // Quiescence is *derived* each step rather than latched: if a
        // neighbour revokes its announcement, this node resumes pushing.
        // A latch would let a lone unconverged node drain its pair into
        // permanently-stopped neighbours forever (it can never satisfy
        // |S| > 1 if nobody pushes back), underflowing its gossip weight.
        // With the derived rule, an unannounced node keeps its whole
        // neighbourhood active until it can hear, converge and announce.
        for i in 0..n {
            if !self.present[i] {
                continue;
            }
            let neighbours = self.graph.neighbours(NodeId(i as u32));
            // An isolated node has nothing to gossip with and counts as
            // quiescent immediately.
            self.stopped[i] = neighbours.is_empty()
                || (self.announced[i]
                    && neighbours
                        .iter()
                        .all(|&w| !self.present[w as usize] || self.announced[w as usize]));
        }

        self.step += 1;
        self.stats.record_step(messages, active);

        #[cfg(debug_assertions)]
        {
            let mass_after = self.total_mass();
            debug_assert!(
                (mass_before.0 - mass_after.0).abs() < 1e-6 * (1.0 + mass_before.0.abs())
                    && (mass_before.1 - mass_after.1).abs() < 1e-6 * (1.0 + mass_before.1.abs()),
                "mass not conserved: {mass_before:?} -> {mass_after:?}"
            );
        }

        messages
    }

    /// Run until protocol quiescence or the step cap, consuming the engine.
    pub fn run<R: Rng + ?Sized>(mut self, rng: &mut R) -> ScalarOutcome {
        while !self.all_stopped() && self.step < self.config.max_steps {
            self.step(rng);
        }
        let converged = self.all_stopped();
        ScalarOutcome {
            steps: self.step,
            converged,
            estimates: self.ratios(),
            pairs: self.state,
            stats: self.stats,
            present: self.present,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{ChurnModel, LossModel};
    use dg_graph::{generators, pa};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn mean(values: &[f64]) -> f64 {
        values.iter().sum::<f64>() / values.len() as f64
    }

    #[test]
    fn rejects_wrong_state_size() {
        let g = generators::complete(4);
        let err = ScalarGossip::new(&g, GossipConfig::default(), vec![GossipPair::ZERO; 3]);
        assert!(matches!(
            err,
            Err(GossipError::StateSizeMismatch {
                given: 3,
                expected: 4
            })
        ));
    }

    #[test]
    fn rejects_negative_weight() {
        let g = generators::complete(2);
        let bad = vec![
            GossipPair {
                value: 0.0,
                weight: -1.0,
            },
            GossipPair::ZERO,
        ];
        assert!(matches!(
            ScalarGossip::new(&g, GossipConfig::default(), bad),
            Err(GossipError::InvalidWeight(_))
        ));
    }

    #[test]
    fn averaging_on_complete_graph_converges_to_mean() {
        let g = generators::complete(20);
        let values: Vec<f64> = (0..20).map(|i| i as f64 / 19.0).collect();
        let engine =
            ScalarGossip::average(&g, GossipConfig::differential(1e-6).unwrap(), &values).unwrap();
        let out = engine.run(&mut rng(1));
        assert!(out.converged);
        let target = mean(&values);
        assert!(
            out.max_error(target) < 1e-3,
            "max error {}",
            out.max_error(target)
        );
    }

    #[test]
    fn averaging_on_pa_graph_converges() {
        let g =
            pa::preferential_attachment(pa::PaConfig { nodes: 300, m: 2 }, &mut rng(2)).unwrap();
        let values: Vec<f64> = (0..300).map(|i| (i % 10) as f64 / 10.0).collect();
        let out = ScalarGossip::average(&g, GossipConfig::differential(1e-7).unwrap(), &values)
            .unwrap()
            .run(&mut rng(3));
        assert!(out.converged);
        assert!(out.max_error(mean(&values)) < 1e-3);
    }

    #[test]
    fn normal_push_also_converges_but_differential_is_not_slower_on_pa() {
        let g =
            pa::preferential_attachment(pa::PaConfig { nodes: 500, m: 2 }, &mut rng(4)).unwrap();
        let values: Vec<f64> = (0..500).map(|i| ((i * 7) % 13) as f64 / 13.0).collect();
        let diff = ScalarGossip::average(&g, GossipConfig::differential(1e-8).unwrap(), &values)
            .unwrap()
            .run(&mut rng(5));
        let push = ScalarGossip::average(&g, GossipConfig::normal_push(1e-8).unwrap(), &values)
            .unwrap()
            .run(&mut rng(5));
        assert!(diff.converged && push.converged);
        // Differential should not need more steps than normal push on a
        // power-law graph (usually strictly fewer).
        assert!(
            diff.steps <= push.steps + 2,
            "differential {} vs push {}",
            diff.steps,
            push.steps
        );
    }

    #[test]
    fn single_originator_sum_mode() {
        // One node starts with weight 1 and value 0.6; everyone converges
        // to 0.6 / 1 = the sum of values over total weight.
        let g = generators::complete(10);
        let mut initial = vec![GossipPair::ZERO; 10];
        initial[3] = GossipPair::originator(0.6);
        let out = ScalarGossip::new(&g, GossipConfig::differential(1e-9).unwrap(), initial)
            .unwrap()
            .run(&mut rng(6));
        assert!(out.converged);
        assert!(out.max_error(0.6) < 1e-4, "estimates {:?}", out.estimates);
    }

    #[test]
    fn mass_is_conserved_under_loss() {
        let g =
            pa::preferential_attachment(pa::PaConfig { nodes: 100, m: 2 }, &mut rng(7)).unwrap();
        let values: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
        let config = GossipConfig::differential(1e-6)
            .unwrap()
            .with_loss(LossModel::new(0.3).unwrap());
        let mut engine = ScalarGossip::average(&g, config, &values).unwrap();
        let before = engine.total_mass();
        for _ in 0..50 {
            engine.step(&mut rng(8));
        }
        let after = engine.total_mass();
        assert!((before.0 - after.0).abs() < 1e-8);
        assert!((before.1 - after.1).abs() < 1e-8);
    }

    #[test]
    fn converges_under_packet_loss() {
        let g =
            pa::preferential_attachment(pa::PaConfig { nodes: 200, m: 2 }, &mut rng(9)).unwrap();
        let values: Vec<f64> = (0..200).map(|i| ((i % 5) as f64) / 5.0).collect();
        let lossless =
            ScalarGossip::average(&g, GossipConfig::differential(1e-6).unwrap(), &values)
                .unwrap()
                .run(&mut rng(10));
        let lossy = ScalarGossip::average(
            &g,
            GossipConfig::differential(1e-6)
                .unwrap()
                .with_loss(LossModel::new(0.2).unwrap()),
            &values,
        )
        .unwrap()
        .run(&mut rng(10));
        assert!(lossless.converged && lossy.converged);
        assert!(lossy.max_error(mean(&values)) < 1e-2);
        // Fig. 4: loss costs extra steps, but only a modest number.
        assert!(lossy.steps >= lossless.steps);
    }

    #[test]
    fn churn_hands_mass_over() {
        let g = generators::complete(30);
        let values: Vec<f64> = (0..30).map(|i| i as f64 / 29.0).collect();
        let config = GossipConfig::differential(1e-6)
            .unwrap()
            .with_churn(ChurnModel::new(0.01, 10).unwrap());
        let mut engine = ScalarGossip::average(&g, config, &values).unwrap();
        let before = engine.total_mass();
        // One RNG across the whole run: a fresh seed per step would replay
        // the same draws every round and churn could never trigger.
        let mut step_rng = rng(11);
        for _ in 0..100 {
            engine.step(&mut step_rng);
        }
        let after = engine.total_mass();
        assert!((before.0 - after.0).abs() < 1e-8);
        assert!((before.1 - after.1).abs() < 1e-8);
        // Some nodes departed, bounded by the cap.
        let departed = engine.present.iter().filter(|&&p| !p).count();
        assert!(departed > 0 && departed <= 10, "departed {departed}");
    }

    #[test]
    fn message_stats_track_fanout() {
        let g = generators::complete(10);
        let values = vec![0.5; 10];
        // Uniform 1-push on a complete graph: exactly N messages per step.
        let mut engine =
            ScalarGossip::average(&g, GossipConfig::normal_push(1e-6).unwrap(), &values).unwrap();
        let sent = engine.step(&mut rng(12));
        assert_eq!(sent, 10);
    }

    #[test]
    fn max_steps_cap_reports_non_convergence() {
        let g = generators::ring(50).unwrap();
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let config = GossipConfig::differential(1e-12).unwrap().with_max_steps(3);
        let out = ScalarGossip::average(&g, config, &values)
            .unwrap()
            .run(&mut rng(13));
        assert!(!out.converged);
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn stopped_network_stays_quiescent() {
        let g = generators::complete(8);
        let values = vec![0.25; 8]; // already uniform: converges immediately
        let out = ScalarGossip::average(&g, GossipConfig::differential(1e-4).unwrap(), &values)
            .unwrap()
            .run(&mut rng(14));
        assert!(out.converged);
        // Uniform start: every ratio is 0.25 forever, so convergence is
        // detected as soon as the |S| > 1 condition is met once.
        assert!(out.steps <= 4, "steps {}", out.steps);
        assert!(out.max_error(0.25) < 1e-12);
    }

    #[test]
    fn tighter_tolerance_needs_at_least_as_many_steps() {
        let g =
            pa::preferential_attachment(pa::PaConfig { nodes: 200, m: 2 }, &mut rng(15)).unwrap();
        let values: Vec<f64> = (0..200).map(|i| ((i * 31) % 17) as f64 / 17.0).collect();
        let loose = ScalarGossip::average(&g, GossipConfig::differential(1e-2).unwrap(), &values)
            .unwrap()
            .run(&mut rng(16));
        let tight = ScalarGossip::average(&g, GossipConfig::differential(1e-8).unwrap(), &values)
            .unwrap()
            .run(&mut rng(16));
        assert!(tight.steps >= loose.steps);
    }
}
