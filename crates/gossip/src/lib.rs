//! # dg-gossip — gossip engines for reputation aggregation
//!
//! Implements the paper's **differential push gossip** (Section 4.1.1) and
//! the baselines it is measured against:
//!
//! * [`scalar::ScalarGossip`] — push-sum averaging of a single quantity
//!   per node (the gossip pair `(y, g)`), with the paper's full
//!   convergence protocol: per-node ratio tracking with error bound `ξ`,
//!   convergence *announcements* to neighbours, and per-node stopping once
//!   the node **and all its neighbours** have announced;
//! * [`vector::VectorGossip`] — the simultaneous all-subjects variant
//!   (Variations 3/4) exchanging gossip *trios* `(subject, y, g)` plus
//!   counts, with the `Σ_j |r_j(n) − r_j(n−1)| ≤ Nξ` convergence test of
//!   Eq. (7);
//! * [`spread`] — rumor-spreading engines (push / pull / push-pull /
//!   differential push) used to check Theorem 5.1 empirically;
//! * [`fanout::FanoutPolicy`] — uniform `p`-push vs. the paper's
//!   degree-ratio differential fan-out;
//! * [`loss`] — the packet-loss / churn model of Fig. 4 (failed pushes
//!   redirect their share to the sender, preserving mass; departing nodes
//!   hand their pair over to a neighbour);
//! * [`profile::NetworkProfile`] — the shared fault-profile vocabulary
//!   (`lossless` / `lossy` / `partitioned` / `churning` presets plus
//!   custom knobs) consumed both by the synchronous engines here (mapped
//!   onto [`loss`]'s models) and, at full fidelity, by `dg-p2p`'s faulty
//!   transport;
//! * [`potential::PotentialTracker`] — the contribution-vector potential
//!   `ψ_n` of Theorem 5.2's proof, for convergence ablations;
//! * [`metrics::MessageStats`] — per-step message accounting behind
//!   Table 2.
//!
//! ## Mass conservation
//!
//! The fundamental push-sum invariant — `Σ_i y_i` and `Σ_i g_i` are
//! constant across steps — is preserved by every code path here,
//! including packet loss and churn. Engines `debug_assert!` it each step
//! and the test suite checks it property-based. (The *asynchronous*
//! faulty transport in `dg-p2p` can genuinely destroy or inject mass —
//! UDP-like loss and duplication have no acknowledgement to recredit
//! from — and surfaces the exact deficit through a per-run mass ledger
//! instead of hiding it.)

#![warn(missing_docs)]

pub mod adversary;
pub mod config;
pub mod error;
pub mod fanout;
pub mod loss;
pub mod metrics;
pub mod pair;
pub mod potential;
pub mod profile;
pub mod scalar;
pub mod spread;
pub mod vector;

pub use adversary::AdversaryMix;
pub use config::{node_stream_seed, EngineKind, EngineSubstrate, GossipConfig};
pub use error::GossipError;
pub use fanout::FanoutPolicy;
pub use pair::{GossipPair, RATIO_SENTINEL};
pub use profile::NetworkProfile;
pub use scalar::{ScalarGossip, ScalarOutcome};
pub use vector::{VectorGossip, VectorOutcome};

/// Convenience prelude.
pub mod prelude {
    pub use crate::config::GossipConfig;
    pub use crate::fanout::FanoutPolicy;
    pub use crate::loss::LossModel;
    pub use crate::metrics::MessageStats;
    pub use crate::pair::GossipPair;
    pub use crate::scalar::{ScalarGossip, ScalarOutcome};
    pub use crate::spread::{self, SpreadProtocol};
    pub use crate::vector::{VectorGossip, VectorOutcome};
}
