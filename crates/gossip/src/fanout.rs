//! Push fan-out policies.
//!
//! Normal push gossip makes exactly one push per node per step; the
//! paper's differential push makes `k_i = round(deg(i) / avg-neighbour-
//! degree)` pushes (minimum 1), so hubs in a power-law graph shed their
//! information fast enough for the `O((log₂N)²)` bound of Theorem 5.1 to
//! hold without anyone having to *identify* the hubs.

use crate::error::GossipError;
use dg_graph::Graph;
use serde::{Deserialize, Serialize};

/// How many pushes each node makes per gossip step.
///
/// ```
/// use dg_gossip::FanoutPolicy;
/// use dg_graph::generators;
///
/// // On a 5-node star the hub (degree 4, neighbours of degree 1) gets a
/// // differential fan-out of 4; each leaf pushes once.
/// let star = generators::star(5).expect("n >= 2");
/// let k = FanoutPolicy::Differential.resolve(&star)?;
/// assert_eq!(k, vec![4, 1, 1, 1, 1]);
///
/// // Uniform policies clamp to the node degree (a leaf cannot push to
/// // three distinct neighbours).
/// let k = FanoutPolicy::Uniform(3).resolve(&star)?;
/// assert_eq!(k, vec![3, 1, 1, 1, 1]);
/// # Ok::<(), dg_gossip::GossipError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FanoutPolicy {
    /// Every node makes the same number of pushes (`p = 1` is the normal
    /// push gossip of Kempe et al. / GossipTrust).
    Uniform(usize),
    /// The paper's differential rule: `k_i = max(1, round(deg_i / d̄_i))`
    /// where `d̄_i` is the average degree of `i`'s neighbours.
    #[default]
    Differential,
}

impl FanoutPolicy {
    /// Resolve to a per-node fan-out vector for `graph`.
    ///
    /// Fan-outs are additionally clamped to the node degree — a node
    /// cannot push to more distinct neighbours than it has. (The
    /// differential ratio never exceeds the degree, so the clamp only
    /// matters for large uniform policies.)
    pub fn resolve(self, graph: &Graph) -> Result<Vec<usize>, GossipError> {
        match self {
            FanoutPolicy::Uniform(0) => Err(GossipError::ZeroFanout),
            FanoutPolicy::Uniform(p) => Ok(graph
                .nodes()
                .map(|v| p.min(graph.degree(v)).max(1))
                .collect()),
            FanoutPolicy::Differential => Ok(graph.differential_fanouts()),
        }
    }

    /// Short label used in experiment output.
    pub fn label(self) -> String {
        match self {
            FanoutPolicy::Uniform(1) => "push".to_owned(),
            FanoutPolicy::Uniform(p) => format!("push-{p}"),
            FanoutPolicy::Differential => "differential".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_graph::generators;

    #[test]
    fn uniform_one_is_all_ones() {
        let g = generators::paper_example();
        let f = FanoutPolicy::Uniform(1).resolve(&g).unwrap();
        assert!(f.iter().all(|&k| k == 1));
    }

    #[test]
    fn uniform_clamps_to_degree() {
        let g = generators::star(5).unwrap();
        let f = FanoutPolicy::Uniform(3).resolve(&g).unwrap();
        assert_eq!(f[0], 3); // hub has degree 4
        assert!(f[1..].iter().all(|&k| k == 1)); // leaves have degree 1
    }

    #[test]
    fn zero_fanout_rejected() {
        let g = generators::paper_example();
        assert_eq!(
            FanoutPolicy::Uniform(0).resolve(&g),
            Err(GossipError::ZeroFanout)
        );
    }

    #[test]
    fn differential_matches_paper_example() {
        let g = generators::paper_example();
        let f = FanoutPolicy::Differential.resolve(&g).unwrap();
        assert_eq!(f, generators::PAPER_EXAMPLE_FANOUTS.to_vec());
    }

    #[test]
    fn labels() {
        assert_eq!(FanoutPolicy::Uniform(1).label(), "push");
        assert_eq!(FanoutPolicy::Uniform(3).label(), "push-3");
        assert_eq!(FanoutPolicy::Differential.label(), "differential");
    }
}
