//! Adversarial population mixes.
//!
//! The paper's robustness claims are only credible when stress-tested
//! against peers that actively lie, not merely fail. [`AdversaryMix`]
//! describes *which fraction of the population runs which attack* plus
//! the per-attack knobs, in one serializable config that travels the
//! same road as [`NetworkProfile`](crate::NetworkProfile):
//!
//! * `ScenarioConfig::adversary` (dg-sim) compiles the mix into per-node
//!   roles and the round engines apply each role's gossip-channel
//!   distortion (the `Strategy` trait lives there);
//! * [`GossipConfig::adversary`](crate::GossipConfig) carries the mix so
//!   round-driving layers configured through a gossip config inherit it;
//! * `DistributedConfig::adversary` (dg-p2p) maps the *total* adversary
//!   fraction onto byzantine peers that falsify their gossip inputs over
//!   the real transports, reliable or faulty.
//!
//! Every stochastic attack decision draws from a per-adversary ChaCha8
//! stream derived from the scenario seed, so attack runs are
//! bit-reproducible per `(config, seed)` — and a mix with all fractions
//! at zero consumes no randomness at all, keeping zero-adversary runs
//! bit-identical to honest baselines.

use crate::config::node_stream_seed;
use crate::error::GossipError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Salt folded into the seed of the byzantine-selection stream so it is
/// decoupled from topology, population and workload streams.
const BYZANTINE_SALT: u64 = 0xB12A_171E_5EED_0001;

/// Population mix of adversarial strategies.
///
/// Fractions are of the whole population and must sum to at most 1; the
/// remaining knobs parameterise the individual attacks. The default mix
/// is [`AdversaryMix::none`] — all fractions zero, structural knobs at
/// their preset values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryMix {
    /// Fraction of nodes that are sybil-ring identities (leeches that
    /// vouch maximally for ring-mates and bad-mouth rated outsiders).
    pub sybil_fraction: f64,
    /// Identities per sybil ring.
    pub sybil_ring: usize,
    /// Expected identity activations per round per ring: rings grow over
    /// time instead of appearing fully formed (dormant identities
    /// neither transact nor report).
    pub sybil_spawn_rate: f64,
    /// Fraction of nodes in collusion cliques: peers that serve honestly
    /// but mutually inflate each other's trust reports to 1.
    pub collusion_fraction: f64,
    /// Members per collusion clique.
    pub collusion_clique: usize,
    /// Fraction of slanderers: peers that serve honestly but deflate
    /// every report they gossip about others.
    pub slander_fraction: f64,
    /// Surviving fraction of a slanderer's honest report (0 = full
    /// bad-mouthing, 1 = no distortion).
    pub slander_factor: f64,
    /// Fraction of whitewashers: leeches that discard their identity and
    /// rejoin fresh whenever their network-wide reputation collapses.
    pub whitewash_fraction: f64,
    /// Base reputation threshold below which a whitewasher washes (each
    /// washer jitters its personal threshold from its own stream).
    pub wash_threshold: f64,
}

impl Default for AdversaryMix {
    fn default() -> Self {
        Self::none()
    }
}

impl AdversaryMix {
    /// No adversaries at all (all fractions zero).
    pub const fn none() -> Self {
        Self {
            sybil_fraction: 0.0,
            sybil_ring: 8,
            sybil_spawn_rate: 2.0,
            collusion_fraction: 0.0,
            collusion_clique: 4,
            slander_fraction: 0.0,
            slander_factor: 0.0,
            whitewash_fraction: 0.0,
            wash_threshold: 0.25,
        }
    }

    /// Preset: 20 % sybil identities in rings of 8, two activations per
    /// round per ring.
    pub const fn sybil() -> Self {
        Self {
            sybil_fraction: 0.2,
            ..Self::none()
        }
    }

    /// Preset: 20 % colluders in cliques of 4.
    pub const fn collusion() -> Self {
        Self {
            collusion_fraction: 0.2,
            ..Self::none()
        }
    }

    /// Preset: 20 % slanderers, full bad-mouthing.
    pub const fn slander() -> Self {
        Self {
            slander_fraction: 0.2,
            ..Self::none()
        }
    }

    /// Preset: 20 % whitewashers washing below reputation 0.25.
    pub const fn whitewash() -> Self {
        Self {
            whitewash_fraction: 0.2,
            ..Self::none()
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" | "honest" => Some(Self::none()),
            "sybil" => Some(Self::sybil()),
            "collusion" => Some(Self::collusion()),
            "slander" => Some(Self::slander()),
            "whitewash" => Some(Self::whitewash()),
            _ => None,
        }
    }

    /// Stable label: the preset name when the mix equals a preset,
    /// `custom` otherwise.
    pub fn label(&self) -> &'static str {
        if *self == Self::none() {
            "none"
        } else if *self == Self::sybil() {
            "sybil"
        } else if *self == Self::collusion() {
            "collusion"
        } else if *self == Self::slander() {
            "slander"
        } else if *self == Self::whitewash() {
            "whitewash"
        } else {
            "custom"
        }
    }

    /// Total adversarial fraction of the population.
    pub fn adversary_fraction(&self) -> f64 {
        self.sybil_fraction
            + self.collusion_fraction
            + self.slander_fraction
            + self.whitewash_fraction
    }

    /// Whether the mix contains no adversaries.
    pub fn is_none(&self) -> bool {
        self.adversary_fraction() == 0.0
    }

    /// Validate every knob.
    pub fn validated(self) -> Result<Self, GossipError> {
        let fractions = [
            self.sybil_fraction,
            self.collusion_fraction,
            self.slander_fraction,
            self.whitewash_fraction,
        ];
        if fractions.iter().any(|f| !(0.0..=1.0).contains(f)) {
            return Err(GossipError::InvalidAdversaryMix(
                "every fraction must lie in [0, 1]",
            ));
        }
        if self.adversary_fraction() > 1.0 {
            return Err(GossipError::InvalidAdversaryMix(
                "adversary fractions sum beyond 1",
            ));
        }
        if self.sybil_ring == 0 || self.collusion_clique == 0 {
            return Err(GossipError::InvalidAdversaryMix(
                "ring / clique sizes must be at least 1",
            ));
        }
        if self.sybil_fraction > 0.0
            && !(self.sybil_spawn_rate.is_finite() && self.sybil_spawn_rate > 0.0)
        {
            return Err(GossipError::InvalidAdversaryMix(
                "sybil spawn rate must be positive and finite",
            ));
        }
        if !(0.0..=1.0).contains(&self.slander_factor) {
            return Err(GossipError::InvalidAdversaryMix(
                "slander factor must lie in [0, 1]",
            ));
        }
        if !(0.0..=1.0).contains(&self.wash_threshold) {
            return Err(GossipError::InvalidAdversaryMix(
                "wash threshold must lie in [0, 1]",
            ));
        }
        Ok(self)
    }

    /// The deterministic byzantine peer set of a distributed deployment:
    /// `⌊adversary_fraction · n⌋` node ids drawn from a dedicated ChaCha8
    /// stream of `seed`, returned ascending. Gossip-input falsification
    /// does not distinguish strategies — every adversarial identity lies
    /// in the channel — so the total fraction is what matters here.
    pub fn byzantine_peers(&self, n: usize, seed: u64) -> Vec<u32> {
        let count = (self.adversary_fraction() * n as f64).floor() as usize;
        let count = count.min(n);
        if count == 0 {
            return Vec::new();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(node_stream_seed(seed ^ BYZANTINE_SALT, 0));
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.shuffle(&mut rng);
        ids.truncate(count);
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_roundtrip_labels() {
        for label in ["none", "sybil", "collusion", "slander", "whitewash"] {
            let mix = AdversaryMix::parse(label).unwrap();
            assert!(mix.validated().is_ok());
            assert_eq!(mix.label(), label);
        }
        assert_eq!(AdversaryMix::parse("nope"), None);
        let custom = AdversaryMix {
            sybil_fraction: 0.1,
            slander_fraction: 0.1,
            ..AdversaryMix::none()
        };
        assert_eq!(custom.label(), "custom");
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(AdversaryMix {
            sybil_fraction: -0.1,
            ..AdversaryMix::none()
        }
        .validated()
        .is_err());
        assert!(AdversaryMix {
            sybil_fraction: 0.6,
            collusion_fraction: 0.6,
            ..AdversaryMix::none()
        }
        .validated()
        .is_err());
        assert!(AdversaryMix {
            sybil_fraction: 0.2,
            sybil_spawn_rate: 0.0,
            ..AdversaryMix::none()
        }
        .validated()
        .is_err());
        assert!(AdversaryMix {
            slander_factor: 1.5,
            ..AdversaryMix::none()
        }
        .validated()
        .is_err());
        assert!(AdversaryMix {
            collusion_clique: 0,
            ..AdversaryMix::none()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn zero_mix_is_none_and_selects_nobody() {
        let mix = AdversaryMix::none();
        assert!(mix.is_none());
        assert_eq!(mix.adversary_fraction(), 0.0);
        assert!(mix.byzantine_peers(100, 42).is_empty());
    }

    #[test]
    fn byzantine_selection_is_deterministic_and_sized() {
        let mix = AdversaryMix {
            sybil_fraction: 0.1,
            whitewash_fraction: 0.1,
            ..AdversaryMix::none()
        };
        let a = mix.byzantine_peers(200, 7);
        let b = mix.byzantine_peers(200, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        let c = mix.byzantine_peers(200, 8);
        assert_ne!(a, c, "different seed, different set");
    }
}
