//! Adversarial population mixes.
//!
//! The paper's robustness claims are only credible when stress-tested
//! against peers that actively lie, not merely fail. [`AdversaryMix`]
//! describes *which fraction of the population runs which attack* plus
//! the per-attack knobs, in one serializable config that travels the
//! same road as [`NetworkProfile`](crate::NetworkProfile):
//!
//! * `ScenarioConfig::adversary` (dg-sim) compiles the mix into per-node
//!   roles and the round engines apply each role's gossip-channel
//!   distortion (the `Strategy` trait lives there);
//! * [`GossipConfig::adversary`](crate::GossipConfig) carries the mix so
//!   round-driving layers configured through a gossip config inherit it;
//! * `DistributedConfig::adversary` (dg-p2p) maps the *total* adversary
//!   fraction onto byzantine peers that falsify their gossip inputs over
//!   the real transports, reliable or faulty.
//!
//! Every stochastic attack decision draws from a per-adversary ChaCha8
//! stream derived from the scenario seed, so attack runs are
//! bit-reproducible per `(config, seed)` — and a mix with all fractions
//! at zero consumes no randomness at all, keeping zero-adversary runs
//! bit-identical to honest baselines.

use crate::config::node_stream_seed;
use crate::error::GossipError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Salt folded into the seed of the byzantine-selection stream so it is
/// decoupled from topology, population and workload streams.
const BYZANTINE_SALT: u64 = 0xB12A_171E_5EED_0001;

/// Population mix of adversarial strategies.
///
/// Fractions are of the whole population and must sum to at most 1; the
/// remaining knobs parameterise the individual attacks. The default mix
/// is [`AdversaryMix::none`] — all fractions zero, structural knobs at
/// their preset values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryMix {
    /// Fraction of nodes that are sybil-ring identities (leeches that
    /// vouch maximally for ring-mates and bad-mouth rated outsiders).
    pub sybil_fraction: f64,
    /// Identities per sybil ring.
    pub sybil_ring: usize,
    /// Expected identity activations per round per ring: rings grow over
    /// time instead of appearing fully formed (dormant identities
    /// neither transact nor report).
    pub sybil_spawn_rate: f64,
    /// Fraction of nodes in collusion cliques: peers that serve honestly
    /// but mutually inflate each other's trust reports to 1.
    pub collusion_fraction: f64,
    /// Members per collusion clique.
    pub collusion_clique: usize,
    /// Fraction of slanderers: peers that serve honestly but deflate
    /// every report they gossip about others.
    pub slander_fraction: f64,
    /// Surviving fraction of a slanderer's honest report (0 = full
    /// bad-mouthing, 1 = no distortion).
    pub slander_factor: f64,
    /// Fraction of whitewashers: leeches that discard their identity and
    /// rejoin fresh whenever their network-wide reputation collapses.
    pub whitewash_fraction: f64,
    /// Base reputation threshold below which a whitewasher washes (each
    /// washer jitters its personal threshold from its own stream).
    pub wash_threshold: f64,
    /// Fraction of nodes in stealth cartels: peers that serve honestly
    /// but bias every report *within* the defended clamp bounds —
    /// deflating outsiders and inflating clique mates — so clamping and
    /// trimmed aggregation never see an outlier to reject.
    #[serde(default)]
    pub stealth_fraction: f64,
    /// Members per stealth cartel (must be ≥ 1 whenever
    /// `stealth_fraction > 0`; zero otherwise, so configs serialized
    /// before the stealth knobs existed keep deserializing unchanged).
    #[serde(default)]
    pub stealth_clique: usize,
    /// Bias magnitude a cartel member applies to each report before the
    /// result is folded back into the clamp window `[0.1, 0.9]`.
    #[serde(default)]
    pub stealth_bias: f64,
}

impl Default for AdversaryMix {
    fn default() -> Self {
        Self::none()
    }
}

impl AdversaryMix {
    /// No adversaries at all (all fractions zero).
    pub const fn none() -> Self {
        Self {
            sybil_fraction: 0.0,
            sybil_ring: 8,
            sybil_spawn_rate: 2.0,
            collusion_fraction: 0.0,
            collusion_clique: 4,
            slander_fraction: 0.0,
            slander_factor: 0.0,
            whitewash_fraction: 0.0,
            wash_threshold: 0.25,
            stealth_fraction: 0.0,
            stealth_clique: 0,
            stealth_bias: 0.0,
        }
    }

    /// Preset: 20 % sybil identities in rings of 8, two activations per
    /// round per ring.
    pub const fn sybil() -> Self {
        Self {
            sybil_fraction: 0.2,
            ..Self::none()
        }
    }

    /// Preset: 20 % colluders in cliques of 4.
    pub const fn collusion() -> Self {
        Self {
            collusion_fraction: 0.2,
            ..Self::none()
        }
    }

    /// Preset: 20 % slanderers, full bad-mouthing.
    pub const fn slander() -> Self {
        Self {
            slander_fraction: 0.2,
            ..Self::none()
        }
    }

    /// Preset: 20 % whitewashers washing below reputation 0.25.
    pub const fn whitewash() -> Self {
        Self {
            whitewash_fraction: 0.2,
            ..Self::none()
        }
    }

    /// Preset: 45 % stealth-cartel members in cliques of 5 applying the
    /// maximal within-bounds bias — reports pinned to the clamp
    /// window's own edges, so the defense still sees nothing to reject.
    /// The fraction deliberately exceeds the defended trim fraction
    /// (20 % per tail): a cartel the trim can swallow whole moves
    /// nothing, so evasion needs the colluding mass to outnumber what
    /// the robust aggregation can discard.
    pub const fn stealth() -> Self {
        Self {
            stealth_fraction: 0.45,
            stealth_clique: 5,
            stealth_bias: 1.0,
            ..Self::none()
        }
    }

    /// Parse a CLI spec: a preset label, optionally followed by
    /// `:key=value,key=value,…` knob overrides (full field names, e.g.
    /// `stealth:stealth_bias=0.3,stealth_clique=8`). Any unrecognised
    /// label, key or malformed value returns `None` — a typo in an
    /// experiment spec must fail loudly, never silently run the wrong
    /// attack.
    pub fn parse(s: &str) -> Option<Self> {
        let (label, overrides) = match s.split_once(':') {
            Some((label, rest)) => (label, Some(rest)),
            None => (s, None),
        };
        let mut mix = match label {
            "none" | "honest" => Self::none(),
            "sybil" => Self::sybil(),
            "collusion" => Self::collusion(),
            "slander" => Self::slander(),
            "whitewash" => Self::whitewash(),
            "stealth" => Self::stealth(),
            _ => return None,
        };
        if let Some(overrides) = overrides {
            for pair in overrides.split(',') {
                let (key, value) = pair.split_once('=')?;
                mix.apply_override(key.trim(), value.trim())?;
            }
        }
        Some(mix)
    }

    /// Apply one `key=value` override; `None` on an unknown key or a
    /// value that fails to parse.
    fn apply_override(&mut self, key: &str, value: &str) -> Option<()> {
        fn float(v: &str) -> Option<f64> {
            v.parse().ok()
        }
        fn size(v: &str) -> Option<usize> {
            v.parse().ok()
        }
        match key {
            "sybil_fraction" => self.sybil_fraction = float(value)?,
            "sybil_ring" => self.sybil_ring = size(value)?,
            "sybil_spawn_rate" => self.sybil_spawn_rate = float(value)?,
            "collusion_fraction" => self.collusion_fraction = float(value)?,
            "collusion_clique" => self.collusion_clique = size(value)?,
            "slander_fraction" => self.slander_fraction = float(value)?,
            "slander_factor" => self.slander_factor = float(value)?,
            "whitewash_fraction" => self.whitewash_fraction = float(value)?,
            "wash_threshold" => self.wash_threshold = float(value)?,
            "stealth_fraction" => self.stealth_fraction = float(value)?,
            "stealth_clique" => self.stealth_clique = size(value)?,
            "stealth_bias" => self.stealth_bias = float(value)?,
            _ => return None,
        }
        Some(())
    }

    /// Stable label: the preset name when the mix equals a preset,
    /// `custom` otherwise.
    pub fn label(&self) -> &'static str {
        if *self == Self::none() {
            "none"
        } else if *self == Self::sybil() {
            "sybil"
        } else if *self == Self::collusion() {
            "collusion"
        } else if *self == Self::slander() {
            "slander"
        } else if *self == Self::whitewash() {
            "whitewash"
        } else if *self == Self::stealth() {
            "stealth"
        } else {
            "custom"
        }
    }

    /// Total adversarial fraction of the population.
    pub fn adversary_fraction(&self) -> f64 {
        self.sybil_fraction
            + self.collusion_fraction
            + self.slander_fraction
            + self.whitewash_fraction
            + self.stealth_fraction
    }

    /// Whether the mix contains no adversaries.
    pub fn is_none(&self) -> bool {
        self.adversary_fraction() == 0.0
    }

    /// Validate every knob.
    pub fn validated(self) -> Result<Self, GossipError> {
        let fractions = [
            self.sybil_fraction,
            self.collusion_fraction,
            self.slander_fraction,
            self.whitewash_fraction,
            self.stealth_fraction,
        ];
        if fractions.iter().any(|f| !(0.0..=1.0).contains(f)) {
            return Err(GossipError::InvalidAdversaryMix(
                "every fraction must lie in [0, 1]",
            ));
        }
        if self.adversary_fraction() > 1.0 {
            return Err(GossipError::InvalidAdversaryMix(
                "adversary fractions sum beyond 1",
            ));
        }
        if self.sybil_ring == 0 || self.collusion_clique == 0 {
            return Err(GossipError::InvalidAdversaryMix(
                "ring / clique sizes must be at least 1",
            ));
        }
        if self.stealth_fraction > 0.0 && self.stealth_clique == 0 {
            return Err(GossipError::InvalidAdversaryMix(
                "stealth clique size must be at least 1",
            ));
        }
        if self.sybil_fraction > 0.0
            && !(self.sybil_spawn_rate.is_finite() && self.sybil_spawn_rate > 0.0)
        {
            return Err(GossipError::InvalidAdversaryMix(
                "sybil spawn rate must be positive and finite",
            ));
        }
        if !(0.0..=1.0).contains(&self.slander_factor) {
            return Err(GossipError::InvalidAdversaryMix(
                "slander factor must lie in [0, 1]",
            ));
        }
        if !(0.0..=1.0).contains(&self.wash_threshold) {
            return Err(GossipError::InvalidAdversaryMix(
                "wash threshold must lie in [0, 1]",
            ));
        }
        if !(0.0..=1.0).contains(&self.stealth_bias) {
            return Err(GossipError::InvalidAdversaryMix(
                "stealth bias must lie in [0, 1]",
            ));
        }
        Ok(self)
    }

    /// The deterministic byzantine peer set of a distributed deployment:
    /// `⌊adversary_fraction · n⌋` node ids drawn from a dedicated ChaCha8
    /// stream of `seed`, returned ascending. Gossip-input falsification
    /// does not distinguish strategies — every adversarial identity lies
    /// in the channel — so the total fraction is what matters here.
    pub fn byzantine_peers(&self, n: usize, seed: u64) -> Vec<u32> {
        let count = (self.adversary_fraction() * n as f64).floor() as usize;
        let count = count.min(n);
        if count == 0 {
            return Vec::new();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(node_stream_seed(seed ^ BYZANTINE_SALT, 0));
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.shuffle(&mut rng);
        ids.truncate(count);
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_roundtrip_labels() {
        for label in [
            "none",
            "sybil",
            "collusion",
            "slander",
            "whitewash",
            "stealth",
        ] {
            let mix = AdversaryMix::parse(label).unwrap();
            assert!(mix.validated().is_ok());
            assert_eq!(mix.label(), label);
        }
        assert_eq!(AdversaryMix::parse("nope"), None);
        let custom = AdversaryMix {
            sybil_fraction: 0.1,
            slander_fraction: 0.1,
            ..AdversaryMix::none()
        };
        assert_eq!(custom.label(), "custom");
    }

    #[test]
    fn parse_applies_known_overrides() {
        let mix = AdversaryMix::parse("stealth:stealth_bias=0.3,stealth_clique=8").unwrap();
        assert_eq!(
            mix,
            AdversaryMix {
                stealth_bias: 0.3,
                stealth_clique: 8,
                ..AdversaryMix::stealth()
            }
        );
        let mix = AdversaryMix::parse("none:sybil_fraction=0.05, sybil_ring=3").unwrap();
        assert_eq!(mix.sybil_fraction, 0.05);
        assert_eq!(mix.sybil_ring, 3);
    }

    #[test]
    fn parse_rejects_unknown_keys_and_malformed_overrides() {
        // A typo in a knob name must fail loudly, not silently run the
        // base preset.
        assert_eq!(AdversaryMix::parse("stealth:stealth_bais=0.3"), None);
        assert_eq!(AdversaryMix::parse("sybil:unknown_key=1"), None);
        // Malformed values and pairs fail too.
        assert_eq!(AdversaryMix::parse("sybil:sybil_ring=abc"), None);
        assert_eq!(AdversaryMix::parse("sybil:sybil_ring"), None);
        assert_eq!(AdversaryMix::parse("sybil:"), None);
        // Unknown base labels keep failing.
        assert_eq!(AdversaryMix::parse("stelth"), None);
    }

    #[test]
    fn legacy_mix_json_deserializes_with_stealth_defaults() {
        // A serialized mix from before the stealth knobs existed must
        // keep parsing (checkpoint headers embed the config as JSON).
        let legacy = r#"{
            "sybil_fraction": 0.2, "sybil_ring": 8, "sybil_spawn_rate": 2.0,
            "collusion_fraction": 0.0, "collusion_clique": 4,
            "slander_fraction": 0.0, "slander_factor": 0.0,
            "whitewash_fraction": 0.0, "wash_threshold": 0.25
        }"#;
        let mix: AdversaryMix = serde_json::from_str(legacy).unwrap();
        assert_eq!(mix, AdversaryMix::sybil());
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(AdversaryMix {
            sybil_fraction: -0.1,
            ..AdversaryMix::none()
        }
        .validated()
        .is_err());
        assert!(AdversaryMix {
            sybil_fraction: 0.6,
            collusion_fraction: 0.6,
            ..AdversaryMix::none()
        }
        .validated()
        .is_err());
        assert!(AdversaryMix {
            sybil_fraction: 0.2,
            sybil_spawn_rate: 0.0,
            ..AdversaryMix::none()
        }
        .validated()
        .is_err());
        assert!(AdversaryMix {
            slander_factor: 1.5,
            ..AdversaryMix::none()
        }
        .validated()
        .is_err());
        assert!(AdversaryMix {
            collusion_clique: 0,
            ..AdversaryMix::none()
        }
        .validated()
        .is_err());
        assert!(AdversaryMix {
            stealth_clique: 0,
            ..AdversaryMix::stealth()
        }
        .validated()
        .is_err());
        assert!(AdversaryMix {
            stealth_bias: 1.5,
            ..AdversaryMix::none()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn zero_mix_is_none_and_selects_nobody() {
        let mix = AdversaryMix::none();
        assert!(mix.is_none());
        assert_eq!(mix.adversary_fraction(), 0.0);
        assert!(mix.byzantine_peers(100, 42).is_empty());
    }

    #[test]
    fn byzantine_selection_is_deterministic_and_sized() {
        let mix = AdversaryMix {
            sybil_fraction: 0.1,
            whitewash_fraction: 0.1,
            ..AdversaryMix::none()
        };
        let a = mix.byzantine_peers(200, 7);
        let b = mix.byzantine_peers(200, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        let c = mix.byzantine_peers(200, 8);
        assert_ne!(a, c, "different seed, different set");
    }
}
