//! Network fault profiles: one config object describing how a run's
//! network misbehaves.
//!
//! A [`NetworkProfile`] bundles every fault knob the stack understands —
//! per-message loss and duplication, bounded random delay (which induces
//! reordering), node churn (crash / rejoin) and a two-halves partition
//! window — plus the four named presets the CLI exposes
//! (`lossless` / `lossy` / `partitioned` / `churning`).
//!
//! Two consumers interpret a profile at different fidelities:
//!
//! * the **asynchronous p2p runtime** (`dg-p2p`'s `FaultyNetwork`)
//!   honours every knob: messages are genuinely dropped, delayed,
//!   duplicated or cut, and the resulting mass-conservation violations
//!   are *surfaced* through a per-run ledger instead of silently skewing
//!   estimates;
//! * the **synchronous engines** in this crate map the profile onto
//!   [`LossModel`] / [`ChurnModel`] via [`NetworkProfile::sync_loss_model`]
//!   and [`NetworkProfile::sync_churn_model`] — the paper's
//!   detect-and-recredit loss semantics (mass conserved) and
//!   permanent-departure churn. Delay, duplication and partitions have no
//!   synchronous analogue and are ignored there; experiments that need
//!   them run on the p2p transport.
//!
//! Every random decision a profile induces is drawn from seeded ChaCha8
//! streams derived with [`node_stream_seed`](crate::node_stream_seed)
//! (per link, per node), so a `(profile, seed)` pair reproduces the exact
//! same fault schedule on every run and on every machine.

use crate::error::GossipError;
use crate::loss::{ChurnModel, LossModel};
use serde::{Deserialize, Serialize};

/// The largest loss probability the synchronous [`LossModel`] accepts
/// (`p ∈ [0, 1)`); [`NetworkProfile::sync_loss_model`] clamps to it.
const MAX_SYNC_LOSS: f64 = 1.0 - 1e-9;

/// A partition window: the overlay is split into two halves (node index
/// below vs. at-or-above `N/2`) and **all cross-half traffic is dropped**
/// for rounds in `[from_round, until_round)`. The network heals afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// First round (0-based) in which the partition is active.
    pub from_round: u64,
    /// First round in which the partition has healed.
    pub until_round: u64,
}

impl PartitionWindow {
    /// Whether the partition is active in `round`.
    #[inline]
    pub fn cuts(&self, round: u64) -> bool {
        (self.from_round..self.until_round).contains(&round)
    }
}

/// Node-churn knobs for the faulty transport: **fail-stop crashes with
/// state-preserving rejoin**. A crashed node neither sends nor receives
/// (in-flight messages towards it are lost) but keeps its gossip pair —
/// as if persisted to disk — and resumes from it on rejoin. This is
/// deliberately different from the synchronous [`ChurnModel`], where
/// departures are permanent and the pair is handed over to a neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ChurnProfile {
    /// Per-node, per-round crash probability (`∈ [0, 1)`).
    pub crash_probability: f64,
    /// Minimum downtime, in rounds (`≥ 1` when churn is enabled).
    pub min_downtime: u64,
    /// Maximum downtime, in rounds (inclusive; `≥ min_downtime`).
    pub max_downtime: u64,
}

impl ChurnProfile {
    /// No churn.
    pub const NONE: ChurnProfile = ChurnProfile {
        crash_probability: 0.0,
        min_downtime: 0,
        max_downtime: 0,
    };

    /// Whether any crashes can occur.
    pub fn is_enabled(&self) -> bool {
        self.crash_probability > 0.0
    }
}

/// A complete description of how the network misbehaves during a run.
///
/// ```
/// use dg_gossip::profile::NetworkProfile;
///
/// let lossy = NetworkProfile::lossy();
/// assert_eq!(lossy.label(), "lossy");
/// assert!(!lossy.is_reliable());
/// assert!(NetworkProfile::lossless().is_reliable());
///
/// // Presets parse from their CLI labels; knobs stay adjustable.
/// let mut custom = NetworkProfile::parse("churning").unwrap();
/// custom.loss = 0.05;
/// assert!(custom.validated().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Per-message drop probability (`∈ [0, 1]`; `1.0` = total blackout).
    pub loss: f64,
    /// Per-message duplication probability (`∈ [0, 1)`). A duplicated
    /// gossip share *injects* mass; the p2p ledger records it.
    pub duplicate: f64,
    /// Whether senders detect dropped messages (the paper's model: no
    /// acknowledgement arrives, so "the pushing node pushes the gossip
    /// pair to itself" — mass conserved, the ledger tallies the bounce).
    /// With `false` the transport behaves like UDP: lost shares destroy
    /// mass outright, and any run that keeps gossiping long enough
    /// bleeds its gossip weight to zero. Either way the exact amounts
    /// are surfaced on the run ledger, never silently absorbed.
    pub detect_loss: bool,
    /// Maximum delivery delay in rounds; each message is delayed by a
    /// uniform draw from `[0, max_delay]`. Distinct delays on one link
    /// reorder messages.
    pub max_delay: u64,
    /// Crash / rejoin churn.
    pub churn: ChurnProfile,
    /// Optional two-halves partition window.
    pub partition: Option<PartitionWindow>,
}

impl Default for NetworkProfile {
    fn default() -> Self {
        Self::lossless()
    }
}

impl NetworkProfile {
    /// The reliable network: no loss, no delay, no duplication, no churn,
    /// no partition. Running under this profile is bit-identical to not
    /// using fault injection at all.
    pub const fn lossless() -> Self {
        Self {
            loss: 0.0,
            duplicate: 0.0,
            detect_loss: true,
            max_delay: 0,
            churn: ChurnProfile::NONE,
            partition: None,
        }
    }

    /// A flaky-but-connected network: 10 % loss, 1 % duplication, up to
    /// 2 rounds of delay.
    pub const fn lossy() -> Self {
        Self {
            loss: 0.1,
            duplicate: 0.01,
            detect_loss: true,
            max_delay: 2,
            churn: ChurnProfile::NONE,
            partition: None,
        }
    }

    /// A clean network that splits into two halves for rounds 5–24 and
    /// then heals.
    pub const fn partitioned() -> Self {
        Self {
            loss: 0.0,
            duplicate: 0.0,
            detect_loss: true,
            max_delay: 0,
            churn: ChurnProfile::NONE,
            partition: Some(PartitionWindow {
                from_round: 5,
                until_round: 25,
            }),
        }
    }

    /// A churning swarm: every node crashes with probability 2 % per
    /// round and stays down for 5–15 rounds, on top of 2 % message loss.
    pub const fn churning() -> Self {
        Self {
            loss: 0.02,
            duplicate: 0.0,
            detect_loss: true,
            max_delay: 1,
            churn: ChurnProfile {
                crash_probability: 0.02,
                min_downtime: 5,
                max_downtime: 15,
            },
            partition: None,
        }
    }

    /// All named presets, in CLI order.
    pub const PRESETS: [&'static str; 4] = ["lossless", "lossy", "partitioned", "churning"];

    /// Parse a preset label (the `--profile` CLI values).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lossless" | "reliable" => Some(Self::lossless()),
            "lossy" => Some(Self::lossy()),
            "partitioned" => Some(Self::partitioned()),
            "churning" => Some(Self::churning()),
            _ => None,
        }
    }

    /// Stable label for file names and JSON reports. Profiles that match
    /// a preset report its name; anything else is `custom`.
    pub fn label(&self) -> &'static str {
        if *self == Self::lossless() {
            "lossless"
        } else if *self == Self::lossy() {
            "lossy"
        } else if *self == Self::partitioned() {
            "partitioned"
        } else if *self == Self::churning() {
            "churning"
        } else {
            "custom"
        }
    }

    /// Whether this profile carries faults only the p2p transport can
    /// model — delay, duplication, partition windows. The synchronous
    /// engines' view ([`sync_loss_model`](Self::sync_loss_model) /
    /// [`sync_churn_model`](Self::sync_churn_model)) ignores these, so
    /// synchronous measurements under such a profile reflect its
    /// loss/churn knobs only; callers should surface that to avoid
    /// e.g. reporting a partition as free.
    pub fn has_transport_only_faults(&self) -> bool {
        self.max_delay > 0 || self.duplicate > 0.0 || self.partition.is_some()
    }

    /// Whether the profile injects no faults at all (the runtime then
    /// uses the plain reliable transport).
    pub fn is_reliable(&self) -> bool {
        self.loss == 0.0
            && self.duplicate == 0.0
            && self.max_delay == 0
            && !self.churn.is_enabled()
            && self.partition.is_none()
    }

    /// Validate every knob.
    pub fn validated(self) -> Result<Self, GossipError> {
        if !self.loss.is_finite() || !(0.0..=1.0).contains(&self.loss) {
            return Err(GossipError::InvalidProfile("loss outside [0, 1]"));
        }
        if !self.duplicate.is_finite() || !(0.0..1.0).contains(&self.duplicate) {
            return Err(GossipError::InvalidProfile("duplicate outside [0, 1)"));
        }
        let churn = &self.churn;
        if !churn.crash_probability.is_finite() || !(0.0..1.0).contains(&churn.crash_probability) {
            return Err(GossipError::InvalidProfile(
                "crash probability outside [0, 1)",
            ));
        }
        if churn.is_enabled()
            && (churn.min_downtime == 0 || churn.max_downtime < churn.min_downtime)
        {
            return Err(GossipError::InvalidProfile(
                "churn needs 1 <= min_downtime <= max_downtime",
            ));
        }
        if let Some(p) = self.partition {
            if p.until_round <= p.from_round {
                return Err(GossipError::InvalidProfile(
                    "partition window must be non-empty",
                ));
            }
        }
        Ok(self)
    }

    /// The synchronous-engine view of this profile's loss: the paper's
    /// detect-and-recredit [`LossModel`] (mass conserved). Clamped below
    /// `1.0` because the synchronous model requires `p < 1`.
    pub fn sync_loss_model(&self) -> LossModel {
        LossModel::new(self.loss.min(MAX_SYNC_LOSS)).expect("clamped loss is valid")
    }

    /// The synchronous-engine view of this profile's churn: permanent
    /// departures with pair hand-over, capped at `max_departures` so long
    /// runs keep a populated network.
    pub fn sync_churn_model(&self, max_departures: usize) -> ChurnModel {
        ChurnModel::new(self.churn.crash_probability, max_departures)
            .expect("validated crash probability is a valid departure probability")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_roundtrip_through_labels() {
        for name in NetworkProfile::PRESETS {
            let p = NetworkProfile::parse(name).unwrap();
            assert_eq!(p.label(), name);
            assert!(p.validated().is_ok(), "{name} must validate");
        }
        assert!(NetworkProfile::parse("nope").is_none());
    }

    #[test]
    fn lossless_is_reliable_and_default() {
        assert!(NetworkProfile::lossless().is_reliable());
        assert_eq!(NetworkProfile::default(), NetworkProfile::lossless());
        assert!(!NetworkProfile::lossy().is_reliable());
        assert!(!NetworkProfile::partitioned().is_reliable());
        assert!(!NetworkProfile::churning().is_reliable());
    }

    #[test]
    fn custom_label() {
        let mut p = NetworkProfile::lossy();
        p.loss = 0.42;
        assert_eq!(p.label(), "custom");
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let mut p = NetworkProfile::lossless();
        p.loss = 1.5;
        assert!(p.validated().is_err());
        p.loss = 1.0; // total blackout is allowed
        assert!(p.validated().is_ok());

        let mut p = NetworkProfile::lossless();
        p.duplicate = 1.0;
        assert!(p.validated().is_err());

        let mut p = NetworkProfile::lossless();
        p.churn = ChurnProfile {
            crash_probability: 0.1,
            min_downtime: 0,
            max_downtime: 4,
        };
        assert!(p.validated().is_err());
        p.churn.min_downtime = 5;
        assert!(p.validated().is_err(), "max < min");
        p.churn.max_downtime = 5;
        assert!(p.validated().is_ok());

        let mut p = NetworkProfile::lossless();
        p.partition = Some(PartitionWindow {
            from_round: 10,
            until_round: 10,
        });
        assert!(p.validated().is_err());
    }

    #[test]
    fn partition_window_cuts_inside_only() {
        let w = PartitionWindow {
            from_round: 2,
            until_round: 4,
        };
        assert!(!w.cuts(1));
        assert!(w.cuts(2));
        assert!(w.cuts(3));
        assert!(!w.cuts(4));
    }

    #[test]
    fn transport_only_fault_detection() {
        assert!(!NetworkProfile::lossless().has_transport_only_faults());
        assert!(NetworkProfile::lossy().has_transport_only_faults()); // delay + dup
        assert!(NetworkProfile::partitioned().has_transport_only_faults());
        assert!(NetworkProfile::churning().has_transport_only_faults()); // 1-round delay
        let mut loss_only = NetworkProfile::lossless();
        loss_only.loss = 0.3;
        assert!(!loss_only.has_transport_only_faults());
    }

    #[test]
    fn sync_mappings() {
        let p = NetworkProfile::lossy();
        assert!((p.sync_loss_model().probability() - 0.1).abs() < 1e-12);
        let mut blackout = NetworkProfile::lossless();
        blackout.loss = 1.0;
        assert!(blackout.sync_loss_model().probability() < 1.0);

        let c = NetworkProfile::churning();
        let model = c.sync_churn_model(100);
        assert!((model.departure_probability() - 0.02).abs() < 1e-12);
        assert_eq!(model.max_departures, 100);
    }

    #[test]
    fn serde_roundtrip() {
        let p = NetworkProfile::churning();
        let s = serde_json::to_string(&p).unwrap();
        let back: NetworkProfile = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}
