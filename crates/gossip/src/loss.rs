//! Packet loss and churn (Section 5.3, Fig. 4).
//!
//! "Peer to peer network suffers by packet loss only when some node leaves
//! the network i.e. due to churning... Whenever a node pushes gossip pair
//! to this absent node, the pushing node doesn't receive any
//! acknowledgement. In such cases pushing node pushes the gossip pair to
//! itself so that mass conservation still applies."
//!
//! Two cooperating mechanisms:
//!
//! * [`LossModel`] — each push is independently lost with probability
//!   `p`; the sender detects the missing ack and re-credits the share to
//!   itself.
//! * [`ChurnModel`] — nodes leave outright; a leaving node "hands over the
//!   gossip pair vectors to some other node so mass conservation still
//!   applies", and every subsequent push towards it is lost.

use crate::error::GossipError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Independent per-push loss with detection (failed shares return to the
/// sender).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LossModel {
    probability: f64,
}

impl LossModel {
    /// Validated constructor; `p ∈ [0, 1)`.
    pub fn new(probability: f64) -> Result<Self, GossipError> {
        if !probability.is_finite() || !(0.0..1.0).contains(&probability) {
            return Err(GossipError::InvalidLossProbability(probability));
        }
        Ok(Self { probability })
    }

    /// The lossless model.
    pub fn none() -> Self {
        Self { probability: 0.0 }
    }

    /// Loss probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Sample whether a single push is lost.
    #[inline]
    pub fn drops<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.probability > 0.0 && rng.random::<f64>() < self.probability
    }
}

/// Node-departure model.
///
/// At the start of each gossip step every still-present node leaves with
/// probability `departure_probability`. The engine transfers the
/// departing node's pair to a present neighbour (or, if it has none, to
/// the lowest-id present node) before removing it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ChurnModel {
    departure_probability: f64,
    /// Upper bound on how many nodes may leave in total (keeps the graph
    /// meaningfully populated during long runs). `usize::MAX` = unbounded.
    pub max_departures: usize,
}

impl ChurnModel {
    /// Validated constructor; `p ∈ [0, 1)`.
    pub fn new(departure_probability: f64, max_departures: usize) -> Result<Self, GossipError> {
        if !departure_probability.is_finite() || !(0.0..1.0).contains(&departure_probability) {
            return Err(GossipError::InvalidLossProbability(departure_probability));
        }
        Ok(Self {
            departure_probability,
            max_departures,
        })
    }

    /// No churn.
    pub fn none() -> Self {
        Self {
            departure_probability: 0.0,
            max_departures: 0,
        }
    }

    /// Per-step departure probability.
    pub fn departure_probability(&self) -> f64 {
        self.departure_probability
    }

    /// Sample whether a node departs this step.
    #[inline]
    pub fn departs<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.departure_probability > 0.0 && rng.random::<f64>() < self.departure_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn loss_model_validation() {
        assert!(LossModel::new(0.0).is_ok());
        assert!(LossModel::new(0.5).is_ok());
        assert!(LossModel::new(1.0).is_err());
        assert!(LossModel::new(-0.1).is_err());
        assert!(LossModel::new(f64::NAN).is_err());
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = LossModel::none();
        assert!((0..1000).all(|_| !m.drops(&mut rng)));
    }

    #[test]
    fn loss_rate_is_approximately_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = LossModel::new(0.3).unwrap();
        let drops = (0..100_000).filter(|_| m.drops(&mut rng)).count();
        let rate = drops as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn churn_validation_and_sampling() {
        assert!(ChurnModel::new(0.99, 10).is_ok());
        assert!(ChurnModel::new(1.0, 10).is_err());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let none = ChurnModel::none();
        assert!((0..100).all(|_| !none.departs(&mut rng)));
    }
}
