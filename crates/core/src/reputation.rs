//! The [`ReputationSystem`] facade and the closed-form reference
//! evaluations of Eqs. (1), (4) and (6).
//!
//! Gossip converges to well-defined network-wide quantities; this module
//! computes them directly from the trust matrix so that (a) tests can
//! verify every gossip algorithm against its analytical limit and (b) the
//! large collusion sweeps can evaluate thousands of observer/subject
//! pairs without re-running gossip for each.
//!
//! Conventions (matching the gossip semantics, see DESIGN.md §4):
//!
//! * the **global reputation** of subject `j` is the mean of the direct
//!   opinions over the `N_d` nodes that hold one (the value Algorithm 1's
//!   push-sum converges to: `Σᵢ y_ij / Σᵢ g_ij`);
//! * the **globally calibrated local reputation** of `j` at observer `I`
//!   follows Eq. (6) with the gossiped count:
//!   `Rep_Ij = (Σ_{k∈NS_I}(w_Ik−1)·t_kj + Σᵢ t_ij) / (Σ_{k∈NS_I}(w_Ik−1) + N_d)`.

use crate::error::CoreError;
use dg_graph::{Graph, NodeId};
use dg_trust::{TrustMatrix, TrustValue, WeightParams};

/// Bundles a topology, the direct-interaction trust matrix and the weight
/// law, and exposes both the gossip algorithms (via
/// [`crate::algorithms`]) and their closed-form limits.
#[derive(Debug, Clone)]
pub struct ReputationSystem<'g> {
    graph: &'g Graph,
    trust: TrustMatrix,
    weights: WeightParams,
}

impl<'g> ReputationSystem<'g> {
    /// Create a system; the trust matrix dimension must match the graph.
    pub fn new(
        graph: &'g Graph,
        trust: TrustMatrix,
        weights: WeightParams,
    ) -> Result<Self, CoreError> {
        if trust.node_count() != graph.node_count() {
            return Err(CoreError::DimensionMismatch {
                matrix: trust.node_count(),
                graph: graph.node_count(),
            });
        }
        Ok(Self {
            graph,
            trust,
            weights,
        })
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The direct-interaction trust matrix.
    pub fn trust(&self) -> &TrustMatrix {
        &self.trust
    }

    /// Mutable trust matrix (workloads update it between gossip rounds).
    pub fn trust_mut(&mut self) -> &mut TrustMatrix {
        &mut self.trust
    }

    /// Consume the system and hand the trust matrix back. Round engines
    /// that keep the matrix alive across rounds (the incremental delta
    /// path) construct a system per aggregation phase and recover their
    /// persistent storage here instead of cloning it.
    pub fn into_trust(self) -> TrustMatrix {
        self.trust
    }

    /// The weight law.
    pub fn weights(&self) -> WeightParams {
        self.weights
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// `w_Ik` — the weight observer `I` gives to node `k`'s opinion,
    /// from `I`'s direct trust in `k` (1 for strangers).
    pub fn weight_of(&self, observer: NodeId, k: NodeId) -> f64 {
        self.weights.weight(self.trust.get_or_zero(observer, k))
    }

    /// `Σ_{k ∈ NS_I} (w_Ik − 1)` — the total excess weight observer `I`
    /// grants its neighbourhood (the denominator correction of Eq. (6)).
    pub fn neighbour_excess_sum(&self, observer: NodeId) -> f64 {
        self.graph
            .neighbours(observer)
            .iter()
            .map(|&k| self.weight_of(observer, NodeId(k)) - 1.0)
            .sum()
    }

    /// The per-neighbour excess weights `(w_Ik − 1)` of `observer`, in
    /// neighbour order — the amortisable half of every [`y_hat`](Self::y_hat)
    /// evaluation. Batch aggregation computes this once per observer
    /// (instead of re-reading the observer's trust row for every
    /// (subject, neighbour) pair) and feeds it to
    /// [`gclr_from_parts_weighted`](Self::gclr_from_parts_weighted);
    /// summing the returned vector reproduces
    /// [`neighbour_excess_sum`](Self::neighbour_excess_sum) bit-for-bit
    /// (same iteration order, same additions).
    pub fn neighbour_excess_weights(&self, observer: NodeId) -> Vec<f64> {
        self.graph
            .neighbours(observer)
            .iter()
            .map(|&k| self.weight_of(observer, NodeId(k)) - 1.0)
            .collect()
    }

    /// `ŷ_Ij = Σ_{k ∈ NS_I} (w_Ik − 1) · t_kj` — the weighted excess of
    /// the neighbours' direct reports about `j` (Algorithm 2). Neighbours
    /// without an opinion report the anti-whitewash default 0.
    pub fn y_hat(&self, observer: NodeId, subject: NodeId) -> f64 {
        self.graph
            .neighbours(observer)
            .iter()
            .map(|&k| {
                let k = NodeId(k);
                (self.weight_of(observer, k) - 1.0) * self.trust.get_or_zero(k, subject).get()
            })
            .sum()
    }

    /// Closed form of Algorithm 1's limit: the mean direct opinion about
    /// `j` over its `N_d` opinion holders. `None` when nobody has
    /// interacted with `j`.
    pub fn global_reputation(&self, subject: NodeId) -> Option<f64> {
        self.trust.mean_opinion(subject)
    }

    /// Closed form of Algorithm 2's limit (Eq. (6) with the gossiped
    /// count): the globally calibrated local reputation of `subject` at
    /// `observer`.
    ///
    /// Returns `None` when the denominator is zero (no opinions anywhere
    /// and no weighted neighbourhood).
    pub fn gclr(&self, observer: NodeId, subject: NodeId) -> Option<f64> {
        self.gclr_from_parts(
            observer,
            subject,
            self.trust.opinion_sum(subject),
            self.trust.opinion_count(subject) as f64,
            self.neighbour_excess_sum(observer),
        )
    }

    /// The Eq. (6) tail shared by every entry point: `(ŷ + Σt) /
    /// (excess + N_d)`, clamped into the trust range, `None` on a
    /// non-positive denominator. The **single home of the formula** —
    /// [`gclr_from_parts`](Self::gclr_from_parts) and
    /// [`gclr_from_parts_weighted`](Self::gclr_from_parts_weighted)
    /// differ only in how they evaluate `ŷ` and both delegate here, so
    /// they cannot drift apart.
    fn eq6(y_hat: f64, opinion_sum: f64, opinion_count: f64, excess: f64) -> Option<f64> {
        let denom = excess + opinion_count;
        if denom <= 0.0 {
            return None;
        }
        Some(((y_hat + opinion_sum) / denom).clamp(0.0, 1.0))
    }

    /// Eq. (6) from precomputed pieces: the caller supplies the
    /// subject's opinion sum `Σᵢ t_ij` and count `N_d` plus the
    /// observer's neighbourhood excess `Σ (w − 1)`.
    /// [`gclr`](Self::gclr), [`gclr_matrix`](Self::gclr_matrix) and the
    /// round engines' aggregation phase all evaluate the formula through
    /// the shared `eq6` tail, so they cannot drift apart. Batch callers
    /// amortise the inputs over a whole sweep (see
    /// [`TrustMatrix::subject_sums_and_counts`]).
    pub fn gclr_from_parts(
        &self,
        observer: NodeId,
        subject: NodeId,
        opinion_sum: f64,
        opinion_count: f64,
        excess: f64,
    ) -> Option<f64> {
        if excess + opinion_count <= 0.0 {
            return None;
        }
        Self::eq6(
            self.y_hat(observer, subject),
            opinion_sum,
            opinion_count,
            excess,
        )
    }

    /// [`gclr_from_parts`](Self::gclr_from_parts) with the observer's
    /// excess weights precomputed
    /// ([`neighbour_excess_weights`](Self::neighbour_excess_weights)).
    /// Bit-identical to the plain form — the `ŷ` sum runs over the
    /// same neighbours in the same order with the same factors — while
    /// skipping the redundant observer-row lookups, which halves the
    /// point-lookup count of a full aggregation sweep.
    pub fn gclr_from_parts_weighted(
        &self,
        observer: NodeId,
        excess_weights: &[f64],
        subject: NodeId,
        opinion_sum: f64,
        opinion_count: f64,
        excess: f64,
    ) -> Option<f64> {
        if excess + opinion_count <= 0.0 {
            return None;
        }
        Self::eq6(
            self.y_hat_from_weights(observer, excess_weights, subject),
            opinion_sum,
            opinion_count,
            excess,
        )
    }

    /// The weighted `ŷ` partial sum of Eq. (6) alone: `Σ_k (w_k − 1) ·
    /// t_kj` over the observer's neighbours in adjacency order —
    /// exactly the sum
    /// [`gclr_from_parts_weighted`](Self::gclr_from_parts_weighted)
    /// evaluates internally. Exposed so delta engines can cache it per
    /// `(observer, subject)` pair and re-enter the formula through
    /// [`gclr_from_y_hat`](Self::gclr_from_y_hat): `ŷ` depends only on
    /// the observer's weights and its neighbours' reports about the
    /// subject, so while those are bitwise unchanged the cached value
    /// is bitwise equal to a resum.
    pub fn y_hat_from_weights(
        &self,
        observer: NodeId,
        excess_weights: &[f64],
        subject: NodeId,
    ) -> f64 {
        debug_assert_eq!(
            excess_weights.len(),
            self.graph.neighbours(observer).len(),
            "excess_weights must be neighbour_excess_weights({observer})"
        );
        self.graph
            .neighbours(observer)
            .iter()
            .zip(excess_weights)
            .map(|(&k, &w1)| w1 * self.trust.get_or_zero(NodeId(k), subject).get())
            .sum()
    }

    /// Eq. (6) from an externally supplied `ŷ` (cached, or just
    /// resummed via [`y_hat_from_weights`](Self::y_hat_from_weights)):
    /// the same shared `eq6` tail as every other entry point, so a
    /// bitwise-equal `ŷ` yields a bitwise-equal reputation.
    pub fn gclr_from_y_hat(
        &self,
        y_hat: f64,
        opinion_sum: f64,
        opinion_count: f64,
        excess: f64,
    ) -> Option<f64> {
        Self::eq6(y_hat, opinion_sum, opinion_count, excess)
    }

    /// Full GCLR matrix by closed form: `result[I]` maps subject → Rep_Ij
    /// for every subject anyone has an opinion about.
    pub fn gclr_matrix(&self) -> Vec<Vec<(NodeId, f64)>> {
        let n = self.node_count();
        // Per-subject sums and counts in one O(nnz) row-major pass
        // (row-major accumulation visits observers in ascending order per
        // subject, the same f64 addition order as a column scan).
        let (all_sums, all_counts) = self.trust.subject_sums_and_counts();
        let subjects: Vec<NodeId> = all_counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(j, _)| NodeId(j as u32))
            .collect();

        (0..n)
            .map(|i| {
                let observer = NodeId(i as u32);
                let excess = self.neighbour_excess_sum(observer);
                subjects
                    .iter()
                    .filter_map(|&j| {
                        self.gclr_from_parts(
                            observer,
                            j,
                            all_sums[j.index()],
                            all_counts[j.index()] as f64,
                            excess,
                        )
                        .map(|rep| (j, rep))
                    })
                    .collect()
            })
            .collect()
    }

    /// With the neutral weight law (`w ≡ 1`), Eq. (5) degenerates to
    /// Eq. (1): GCLR equals the global reputation for every observer.
    /// Exposed for tests and the ablation harness.
    pub fn is_neutral(&self) -> bool {
        self.weights.max_weight() == 1.0
    }
}

/// Build a trust matrix from a latent-quality vector along graph edges:
/// every node estimates each *neighbour*'s quality exactly (the
/// no-estimation-noise limit, handy for analytical tests).
pub fn trust_from_qualities(graph: &Graph, qualities: &[f64]) -> TrustMatrix {
    let mut m = TrustMatrix::new(graph.node_count());
    for v in graph.nodes() {
        for &w in graph.neighbours(v) {
            let w = NodeId(w);
            m.set(v, w, TrustValue::saturating(qualities[w.index()]))
                .expect("ids from graph are in range");
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_graph::generators;

    fn tv(v: f64) -> TrustValue {
        TrustValue::new(v).unwrap()
    }

    fn small_system(graph: &Graph) -> ReputationSystem<'_> {
        // Star: 0 hub, leaves 1..4. Opinions: 1 and 2 trust 3; hub trusts 1.
        let mut m = TrustMatrix::new(graph.node_count());
        m.set(NodeId(1), NodeId(3), tv(0.8)).unwrap();
        m.set(NodeId(2), NodeId(3), tv(0.4)).unwrap();
        m.set(NodeId(0), NodeId(1), tv(1.0)).unwrap();
        ReputationSystem::new(graph, m, WeightParams::new(2.0, 1.0).unwrap()).unwrap()
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let g = generators::complete(3);
        let m = TrustMatrix::new(5);
        assert!(matches!(
            ReputationSystem::new(&g, m, WeightParams::default()),
            Err(CoreError::DimensionMismatch {
                matrix: 5,
                graph: 3
            })
        ));
    }

    #[test]
    fn global_reputation_is_mean_opinion() {
        let g = generators::star(5).unwrap();
        let s = small_system(&g);
        assert!((s.global_reputation(NodeId(3)).unwrap() - 0.6).abs() < 1e-12);
        assert_eq!(s.global_reputation(NodeId(4)), None);
    }

    #[test]
    fn weight_of_stranger_is_one() {
        let g = generators::star(5).unwrap();
        let s = small_system(&g);
        assert_eq!(s.weight_of(NodeId(0), NodeId(2)), 1.0);
        // Hub trusts node 1 fully: w = 2^(1·1) = 2.
        assert!((s.weight_of(NodeId(0), NodeId(1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn excess_sum_counts_only_trusted_neighbours() {
        let g = generators::star(5).unwrap();
        let s = small_system(&g);
        // Hub's neighbours are 1..4; only node 1 is trusted (w = 2).
        assert!((s.neighbour_excess_sum(NodeId(0)) - 1.0).abs() < 1e-12);
        // Leaf 1's only neighbour is the hub, untrusted by 1: excess 0.
        assert_eq!(s.neighbour_excess_sum(NodeId(1)), 0.0);
    }

    #[test]
    fn y_hat_weights_neighbour_reports() {
        let g = generators::star(5).unwrap();
        let s = small_system(&g);
        // Hub about subject 3: neighbour 1 reports 0.8 with excess 1,
        // neighbours 2, 3, 4 have excess 0.
        assert!((s.y_hat(NodeId(0), NodeId(3)) - 0.8).abs() < 1e-12);
        // Leaf 1 about subject 3: hub has no opinion and no excess.
        assert_eq!(s.y_hat(NodeId(1), NodeId(3)), 0.0);
    }

    #[test]
    fn gclr_matches_eq6_by_hand() {
        let g = generators::star(5).unwrap();
        let s = small_system(&g);
        // Observer 0, subject 3: (ŷ + Σt)/(excess + N_d)
        //   = (0.8 + 1.2)/(1.0 + 2) = 2.0/3.
        let rep = s.gclr(NodeId(0), NodeId(3)).unwrap();
        assert!((rep - 2.0 / 3.0).abs() < 1e-12);
        // Observer 1 (no weighted neighbours): plain mean 0.6.
        let rep1 = s.gclr(NodeId(1), NodeId(3)).unwrap();
        assert!((rep1 - 0.6).abs() < 1e-12);
        // Unknown subject with no weighted neighbourhood: None for
        // observer 1, Some for observer 0 (its excess is positive).
        assert_eq!(s.gclr(NodeId(1), NodeId(4)), None);
        let rep_unknown = s.gclr(NodeId(0), NodeId(4)).unwrap();
        assert_eq!(rep_unknown, 0.0);
    }

    #[test]
    fn neutral_weights_degenerate_to_global() {
        let g = generators::star(5).unwrap();
        let mut m = TrustMatrix::new(5);
        m.set(NodeId(1), NodeId(3), tv(0.8)).unwrap();
        m.set(NodeId(2), NodeId(3), tv(0.4)).unwrap();
        m.set(NodeId(0), NodeId(1), tv(1.0)).unwrap();
        let s = ReputationSystem::new(&g, m, WeightParams::neutral()).unwrap();
        assert!(s.is_neutral());
        for observer in g.nodes() {
            let rep = s.gclr(observer, NodeId(3)).unwrap();
            assert!((rep - 0.6).abs() < 1e-12, "observer {observer}: {rep}");
        }
    }

    #[test]
    fn gclr_matrix_agrees_with_pointwise() {
        let g = generators::complete(6);
        let mut m = TrustMatrix::new(6);
        m.set(NodeId(0), NodeId(1), tv(0.9)).unwrap();
        m.set(NodeId(2), NodeId(1), tv(0.5)).unwrap();
        m.set(NodeId(3), NodeId(4), tv(0.7)).unwrap();
        m.set(NodeId(1), NodeId(2), tv(0.6)).unwrap();
        let s = ReputationSystem::new(&g, m, WeightParams::default()).unwrap();
        let matrix = s.gclr_matrix();
        for (i, row) in matrix.iter().enumerate() {
            for &(j, rep) in row {
                let direct = s.gclr(NodeId(i as u32), j).unwrap();
                assert!((rep - direct).abs() < 1e-12, "({i}, {j})");
            }
        }
        // Subjects 1, 2, 4 have opinions; rows should cover exactly those.
        assert_eq!(matrix[5].len(), 3);
    }

    #[test]
    fn trust_from_qualities_fills_edges() {
        let g = generators::ring(4).unwrap();
        let q = [0.1, 0.4, 0.7, 1.0];
        let m = trust_from_qualities(&g, &q);
        assert_eq!(m.get(NodeId(0), NodeId(1)).unwrap().get(), 0.4);
        assert_eq!(m.get(NodeId(1), NodeId(0)).unwrap().get(), 0.1);
        assert_eq!(m.get(NodeId(0), NodeId(2)), None); // not adjacent
        assert_eq!(m.entry_count(), 8); // 4 edges, both directions
    }
}
