//! Dynamic adjustment of the weight-law parameters `a_i` and `b_ij`
//! (Section 4.1.2's deferred extension).
//!
//! "Values of a_i and b_ij can be dynamically adjusted by nodes as per
//! their requirement. Though in this work, a_i and b_ij have been taken
//! as constants." The paper sketches the intended control signals:
//!
//! * `a_i` — "adjusted according to the overall quality of service
//!   received by the node from the network": a node being served well
//!   can afford to lean harder on its trusted neighbourhood (larger
//!   base), one being starved should fall back toward the democratic
//!   average (base toward 1);
//! * `b_ij` — "adjusted according to the recommendation of a particular
//!   neighbour and quality of service from the network": a neighbour
//!   whose past recommendations matched the node's own subsequent
//!   experience earns a larger exponent, a misleading one decays toward
//!   0 (its opinion degrades to a stranger's weight 1, the paper's
//!   collusion backstop).
//!
//! The controller keeps every invariant of [`WeightParams`]: `a ≥ 1`,
//! `b ≥ 0`, hence `w ≥ 1` always. The paper's final remark — the same
//! machinery "can also be used to avoid malicious users ... just by
//! changing the method of estimation of a_i and b_ij" — is exactly what
//! [`AdaptiveWeights::record_recommendation`] implements: systematically
//! wrong recommenders (malicious or colluding) lose their excess weight.

use dg_graph::NodeId;
use dg_trust::{TrustValue, WeightParams};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Bounds on the base `a` (`1 ≤ a_min ≤ a_max`).
    pub a_min: f64,
    /// See `a_min`.
    pub a_max: f64,
    /// Bounds on the per-neighbour exponent `b` (`0 ≤ b_min ≤ b_max`).
    pub b_min: f64,
    /// See `b_min`.
    pub b_max: f64,
    /// EWMA rate for the network-QoS signal driving `a`.
    pub qos_rate: f64,
    /// Step size applied to `b` per recommendation outcome.
    pub b_step: f64,
    /// Absolute recommendation error below which a recommendation counts
    /// as accurate.
    pub accuracy_tolerance: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            a_min: 1.0,
            a_max: 4.0,
            b_min: 0.0,
            b_max: 3.0,
            qos_rate: 0.2,
            b_step: 0.25,
            accuracy_tolerance: 0.2,
        }
    }
}

impl AdaptiveConfig {
    fn validate(&self) -> bool {
        1.0 <= self.a_min
            && self.a_min <= self.a_max
            && 0.0 <= self.b_min
            && self.b_min <= self.b_max
            && (0.0..=1.0).contains(&self.qos_rate)
            && self.b_step > 0.0
            && self.accuracy_tolerance >= 0.0
            && [self.a_max, self.b_max, self.b_step]
                .iter()
                .all(|v| v.is_finite())
    }
}

/// Per-node adaptive weight state: one base `a_i` driven by network QoS,
/// one exponent `b_ij` per neighbour driven by recommendation accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveWeights {
    config: AdaptiveConfig,
    /// Smoothed quality of service received from the network.
    qos: f64,
    a: f64,
    b_default: f64,
    b: BTreeMap<u32, f64>,
}

impl AdaptiveWeights {
    /// Create a controller starting from `initial` (its `a`/`b` become the
    /// starting point and `b_default` for unseen neighbours).
    ///
    /// Returns `None` when the config bounds are inconsistent.
    pub fn new(config: AdaptiveConfig, initial: WeightParams) -> Option<Self> {
        if !config.validate() {
            return None;
        }
        Some(Self {
            config,
            qos: 0.5,
            a: initial.a().clamp(config.a_min, config.a_max),
            b_default: initial.b().clamp(config.b_min, config.b_max),
            b: BTreeMap::new(),
        })
    }

    /// Current base `a_i`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Current exponent for a neighbour.
    pub fn b(&self, neighbour: NodeId) -> f64 {
        self.b.get(&neighbour.0).copied().unwrap_or(self.b_default)
    }

    /// The effective weight law towards one neighbour.
    pub fn params_for(&self, neighbour: NodeId) -> WeightParams {
        WeightParams::new(self.a, self.b(neighbour))
            .expect("controller keeps a >= 1 and b >= 0 by construction")
    }

    /// Evaluate the weight `w_ij = a_i^(b_ij · t_ij)`.
    pub fn weight(&self, neighbour: NodeId, trust: TrustValue) -> f64 {
        self.params_for(neighbour).weight(trust)
    }

    /// Feed one transaction's quality of service (from anyone in the
    /// network). Good service pushes `a_i` toward `a_max`, starvation
    /// toward `a_min`.
    pub fn record_service(&mut self, quality: f64) {
        let q = if quality.is_nan() {
            0.0
        } else {
            quality.clamp(0.0, 1.0)
        };
        self.qos += self.config.qos_rate * (q - self.qos);
        self.a = self.config.a_min + (self.config.a_max - self.config.a_min) * self.qos;
    }

    /// Feed the outcome of acting on a neighbour's recommendation:
    /// `recommended` is what the neighbour claimed about some subject,
    /// `experienced` what this node subsequently measured directly.
    /// Accurate recommendations grow `b_ij` additively; misleading ones
    /// shrink it twice as fast (misleading advice is worse than none).
    pub fn record_recommendation(
        &mut self,
        neighbour: NodeId,
        recommended: TrustValue,
        experienced: TrustValue,
    ) {
        let error = recommended.abs_diff(experienced);
        let current = self.b(neighbour);
        let next = if error <= self.config.accuracy_tolerance {
            current + self.config.b_step
        } else {
            current - 2.0 * self.config.b_step
        };
        self.b.insert(
            neighbour.0,
            next.clamp(self.config.b_min, self.config.b_max),
        );
    }

    /// Forget a departed neighbour's exponent.
    pub fn forget(&mut self, neighbour: NodeId) {
        self.b.remove(&neighbour.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(v: f64) -> TrustValue {
        TrustValue::new(v).unwrap()
    }

    fn controller() -> AdaptiveWeights {
        AdaptiveWeights::new(AdaptiveConfig::default(), WeightParams::default()).unwrap()
    }

    #[test]
    fn invalid_configs_rejected() {
        let low_base = AdaptiveConfig {
            a_min: 0.5, // would allow weights < 1
            ..AdaptiveConfig::default()
        };
        assert!(AdaptiveWeights::new(low_base, WeightParams::default()).is_none());
        let inverted_b = AdaptiveConfig {
            b_min: 2.0,
            b_max: 1.0,
            ..AdaptiveConfig::default()
        };
        assert!(AdaptiveWeights::new(inverted_b, WeightParams::default()).is_none());
    }

    #[test]
    fn good_service_raises_a() {
        let mut w = controller();
        let before = w.a();
        for _ in 0..30 {
            w.record_service(1.0);
        }
        assert!(w.a() > before);
        assert!(w.a() <= AdaptiveConfig::default().a_max);
    }

    #[test]
    fn starvation_lowers_a_towards_one() {
        let mut w = controller();
        for _ in 0..60 {
            w.record_service(0.0);
        }
        assert!(w.a() < 1.05, "a = {}", w.a());
        // Even fully starved, the invariant a >= 1 holds: weights never
        // drop below a stranger's.
        assert!(w.a() >= 1.0);
        assert!(w.weight(NodeId(7), tv(1.0)) >= 1.0);
    }

    #[test]
    fn accurate_recommender_gains_weight() {
        let mut w = controller();
        let nb = NodeId(3);
        let before = w.weight(nb, tv(0.8));
        for _ in 0..5 {
            w.record_recommendation(nb, tv(0.7), tv(0.75));
        }
        assert!(w.weight(nb, tv(0.8)) > before);
        assert!(w.b(nb) <= AdaptiveConfig::default().b_max);
    }

    #[test]
    fn misleading_recommender_degrades_to_stranger() {
        // The paper's malicious-user defence: a neighbour that recommends
        // 1.0 for peers that turn out to be leeches loses its exponent,
        // so its weight collapses to (almost) 1.
        let mut w = controller();
        let nb = NodeId(5);
        for _ in 0..10 {
            w.record_recommendation(nb, tv(1.0), tv(0.0));
        }
        assert_eq!(w.b(nb), 0.0);
        assert_eq!(w.weight(nb, tv(1.0)), 1.0);
    }

    #[test]
    fn recovery_is_slower_than_decay() {
        let mut w = controller();
        let nb = NodeId(2);
        // One bad recommendation undoes two good ones.
        w.record_recommendation(nb, tv(0.5), tv(0.5));
        w.record_recommendation(nb, tv(0.5), tv(0.5));
        let built = w.b(nb);
        w.record_recommendation(nb, tv(1.0), tv(0.0));
        assert!(w.b(nb) < built - 0.25);
    }

    #[test]
    fn forget_resets_to_default() {
        let mut w = controller();
        let nb = NodeId(9);
        w.record_recommendation(nb, tv(1.0), tv(0.0));
        assert_ne!(w.b(nb), 2.0);
        w.forget(nb);
        assert_eq!(w.b(nb), 2.0); // WeightParams::default().b()
    }

    #[test]
    fn params_for_always_valid() {
        let mut w = controller();
        for i in 0..50u32 {
            w.record_service((i % 3) as f64 / 2.0);
            w.record_recommendation(NodeId(i % 5), tv(0.9), tv((i % 7) as f64 / 6.0));
            let p = w.params_for(NodeId(i % 5));
            assert!(p.a() >= 1.0);
            assert!(p.b() >= 0.0);
            assert!(p.weight(tv(0.5)) >= 1.0);
        }
    }
}
