//! Node behaviour profiles and latent ground truth.
//!
//! The paper's system model: rational peers in a heavily loaded
//! file-sharing network either contribute (upload when asked) or free
//! ride; colluders additionally lie *in the gossip channel* to inflate
//! each other's reputation. Each node gets a latent service quality
//! `q ∈ [0, 1]` — the "real" trustworthiness that transaction outcomes
//! are drawn from and that reputation estimates should track.

use dg_graph::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Behaviour profile of a peer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// Serves requests with the given latent quality.
    Honest {
        /// Mean quality of service delivered, in `[0, 1]`.
        quality: f64,
    },
    /// Rarely serves: draws resources without contributing.
    FreeRider {
        /// Probability of serving at all (0 = pure leech).
        serve_probability: f64,
    },
    /// Serves like an honest node of the given quality but participates
    /// in a collusion group (lying in the gossip channel).
    Colluder {
        /// Latent service quality towards real transactions.
        quality: f64,
        /// Collusion group index.
        group: usize,
    },
}

impl Behavior {
    /// Latent service quality: the expected transaction quality a peer
    /// delivers (free riders deliver quality only when they serve).
    pub fn latent_quality(&self) -> f64 {
        match *self {
            Behavior::Honest { quality } => quality,
            Behavior::FreeRider { serve_probability } => serve_probability * 0.5,
            Behavior::Colluder { quality, .. } => quality,
        }
    }

    /// Collusion group, if any.
    pub fn collusion_group(&self) -> Option<usize> {
        match *self {
            Behavior::Colluder { group, .. } => Some(group),
            _ => None,
        }
    }

    /// Whether the peer colludes.
    pub fn is_colluder(&self) -> bool {
        matches!(self, Behavior::Colluder { .. })
    }

    /// Sample one transaction outcome quality delivered by this peer.
    pub fn sample_quality<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Behavior::Honest { quality } | Behavior::Colluder { quality, .. } => {
                // Mild multiplicative noise around the latent quality.
                let noise = 0.9 + 0.2 * rng.random::<f64>();
                (quality * noise).clamp(0.0, 1.0)
            }
            Behavior::FreeRider { serve_probability } => {
                if rng.random::<f64>() < serve_probability {
                    0.5 * rng.random::<f64>() + 0.25
                } else {
                    0.0
                }
            }
        }
    }
}

/// A population of peers with assigned behaviours.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    behaviors: Vec<Behavior>,
}

impl Population {
    /// Build from explicit behaviours.
    pub fn new(behaviors: Vec<Behavior>) -> Self {
        Self { behaviors }
    }

    /// All-honest population with qualities drawn uniformly from
    /// `[lo, hi]` (clamped to `[0, 1]`).
    pub fn honest_uniform<R: Rng + ?Sized>(n: usize, lo: f64, hi: f64, rng: &mut R) -> Self {
        let (lo, hi) = (lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0));
        let behaviors = (0..n)
            .map(|_| Behavior::Honest {
                quality: lo + (hi - lo) * rng.random::<f64>(),
            })
            .collect();
        Self { behaviors }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.behaviors.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.behaviors.is_empty()
    }

    /// Behaviour of one peer.
    pub fn behavior(&self, node: NodeId) -> Behavior {
        self.behaviors[node.index()]
    }

    /// Mutable access (used by the collusion scheme to convert honest
    /// nodes into colluders).
    pub fn behavior_mut(&mut self, node: NodeId) -> &mut Behavior {
        &mut self.behaviors[node.index()]
    }

    /// Latent quality vector.
    pub fn latent_qualities(&self) -> Vec<f64> {
        self.behaviors
            .iter()
            .map(Behavior::latent_quality)
            .collect()
    }

    /// Ids of all colluders.
    pub fn colluders(&self) -> Vec<NodeId> {
        self.behaviors
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_colluder())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Iterate over `(node, behaviour)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Behavior)> + '_ {
        self.behaviors
            .iter()
            .enumerate()
            .map(|(i, &b)| (NodeId(i as u32), b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn honest_quality_sampling_tracks_latent() {
        let b = Behavior::Honest { quality: 0.8 };
        let mut r = rng(1);
        let mean: f64 = (0..10_000).map(|_| b.sample_quality(&mut r)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.8).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn pure_free_rider_never_serves() {
        let b = Behavior::FreeRider {
            serve_probability: 0.0,
        };
        let mut r = rng(2);
        assert!((0..100).all(|_| b.sample_quality(&mut r) == 0.0));
        assert_eq!(b.latent_quality(), 0.0);
    }

    #[test]
    fn colluder_group_bookkeeping() {
        let pop = Population::new(vec![
            Behavior::Honest { quality: 0.9 },
            Behavior::Colluder {
                quality: 0.3,
                group: 0,
            },
            Behavior::Colluder {
                quality: 0.2,
                group: 0,
            },
            Behavior::FreeRider {
                serve_probability: 0.1,
            },
        ]);
        assert_eq!(pop.colluders(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(pop.behavior(NodeId(1)).collusion_group(), Some(0));
        assert_eq!(pop.behavior(NodeId(0)).collusion_group(), None);
        assert!(!pop.is_empty());
        assert_eq!(pop.len(), 4);
    }

    #[test]
    fn honest_uniform_respects_bounds() {
        let pop = Population::honest_uniform(200, 0.3, 0.9, &mut rng(3));
        for q in pop.latent_qualities() {
            assert!((0.3..=0.9).contains(&q), "q = {q}");
        }
    }

    #[test]
    fn sampled_qualities_stay_in_range() {
        let mut r = rng(4);
        for b in [
            Behavior::Honest { quality: 1.0 },
            Behavior::Colluder {
                quality: 0.99,
                group: 1,
            },
            Behavior::FreeRider {
                serve_probability: 0.7,
            },
        ] {
            for _ in 0..1000 {
                let q = b.sample_quality(&mut r);
                assert!((0.0..=1.0).contains(&q));
            }
        }
    }
}
