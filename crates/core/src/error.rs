//! Error type for the aggregation layer.

use thiserror::Error;

/// Errors produced by the reputation aggregation algorithms.
#[derive(Debug, Error)]
pub enum CoreError {
    /// Bubbled up from the gossip engines.
    #[error(transparent)]
    Gossip(#[from] dg_gossip::GossipError),

    /// Bubbled up from the trust layer.
    #[error(transparent)]
    Trust(#[from] dg_trust::TrustError),

    /// Bubbled up from topology construction.
    #[error(transparent)]
    Graph(#[from] dg_graph::GraphError),

    /// The trust matrix dimension didn't match the graph.
    #[error("trust matrix is {matrix} nodes but graph has {graph}")]
    DimensionMismatch {
        /// Trust matrix dimension.
        matrix: usize,
        /// Graph node count.
        graph: usize,
    },

    /// Collusion parameters were inconsistent.
    #[error("invalid collusion parameters: {0}")]
    InvalidCollusion(String),
}
