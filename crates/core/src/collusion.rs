//! Collusion modelling and analysis (Section 5.2, Figs. 5 and 6).
//!
//! "There is a subset C ... colluding in groups with a group size of G.
//! ... if some node is the member of that group then group members of
//! colluding group will report its reputation as 1, whereas for other
//! nodes they will report the reputation value as 0."
//!
//! Concretely, a colluder *distorts the gossip channel* in two ways:
//!
//! 1. it **replaces** every honest opinion it holds: 0 for any rated peer
//!    outside its group, 1 for a rated group-mate (bad-mouthing and
//!    ballot-stuffing over its existing footprint), and
//! 2. it **injects** an endorsement (value 1) for each group-mate it had
//!    not rated before — the paper's `+G` inflation of Eq. (10). (We use
//!    the `G − 1` non-self endorsements; a node does not gossip feedback
//!    about itself. The shape of the analysis is unchanged.)
//!
//! The *reference* (`r̂` of Eq. (18)) is the aggregate had everyone
//! reported honestly — Eq. (8)'s "real reputation", evaluated with the
//! gossip semantics (mean over actual opinion holders).
//!
//! Colluders pollute only the gossip channel. The paper assumes the two
//! other trust sources are collusion-proof: direct interaction trivially,
//! and neighbour reports because "neighbours have a definite level of
//! trust for each other" (an optional `neighbours_lie` switch lets the
//! ablation harness drop that assumption).
//!
//! [`theory`] reproduces the exact ΔR formulas: Eq. (12) for plain gossip
//! aggregation and Eq. (17) showing the weighted scheme shrinks the error
//! by `N / (N + Σ(w_oi − 1))`.

use crate::error::CoreError;
use crate::reputation::ReputationSystem;
use dg_graph::NodeId;
use dg_trust::TrustMatrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Collusion scenario parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollusionScheme {
    /// Fraction of the population that colludes, in `[0, 1]`.
    pub colluder_fraction: f64,
    /// Size of each colluding group (`1` = the individual colluders of
    /// Fig. 6, who bad-mouth everyone they rated and endorse nobody).
    pub group_size: usize,
}

impl CollusionScheme {
    /// Validated constructor.
    pub fn new(colluder_fraction: f64, group_size: usize) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&colluder_fraction) || !colluder_fraction.is_finite() {
            return Err(CoreError::InvalidCollusion(format!(
                "fraction {colluder_fraction} outside [0, 1]"
            )));
        }
        if group_size == 0 {
            return Err(CoreError::InvalidCollusion("group size 0".into()));
        }
        Ok(Self {
            colluder_fraction,
            group_size,
        })
    }
}

/// Which nodes collude and in which group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupAssignment {
    member_of: Vec<Option<u32>>,
    groups: Vec<Vec<NodeId>>,
}

impl GroupAssignment {
    /// Sample an assignment: `round(fraction · n)` random nodes,
    /// partitioned into groups of `group_size` (the last group may be
    /// smaller).
    pub fn assign<R: Rng + ?Sized>(
        n: usize,
        scheme: CollusionScheme,
        rng: &mut R,
    ) -> Result<Self, CoreError> {
        let scheme = CollusionScheme::new(scheme.colluder_fraction, scheme.group_size)?;
        let c = (scheme.colluder_fraction * n as f64).round() as usize;
        let c = c.min(n);
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.shuffle(rng);
        ids.truncate(c);
        let mut member_of = vec![None; n];
        let mut groups = Vec::new();
        for chunk in ids.chunks(scheme.group_size) {
            let gid = groups.len() as u32;
            let members: Vec<NodeId> = chunk.iter().map(|&i| NodeId(i)).collect();
            for &m in &members {
                member_of[m.index()] = Some(gid);
            }
            groups.push(members);
        }
        Ok(Self { member_of, groups })
    }

    /// Build from explicit groups (used by tests and custom scenarios).
    pub fn from_groups(n: usize, groups: Vec<Vec<NodeId>>) -> Result<Self, CoreError> {
        let mut member_of = vec![None; n];
        for (gid, members) in groups.iter().enumerate() {
            for &m in members {
                if m.index() >= n {
                    return Err(CoreError::InvalidCollusion(format!(
                        "node {m} out of range for {n} nodes"
                    )));
                }
                if member_of[m.index()].is_some() {
                    return Err(CoreError::InvalidCollusion(format!(
                        "node {m} appears in two groups"
                    )));
                }
                member_of[m.index()] = Some(gid as u32);
            }
        }
        Ok(Self { member_of, groups })
    }

    /// No collusion at all.
    pub fn none(n: usize) -> Self {
        Self {
            member_of: vec![None; n],
            groups: Vec::new(),
        }
    }

    /// Whether `node` colludes.
    pub fn is_colluder(&self, node: NodeId) -> bool {
        self.member_of[node.index()].is_some()
    }

    /// Group index of `node`, if colluding.
    pub fn group_of(&self, node: NodeId) -> Option<u32> {
        self.member_of[node.index()]
    }

    /// Whether `a` and `b` collude together.
    pub fn same_group(&self, a: NodeId, b: NodeId) -> bool {
        match (self.member_of[a.index()], self.member_of[b.index()]) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Total colluders `C`.
    pub fn colluder_count(&self) -> usize {
        self.member_of.iter().filter(|m| m.is_some()).count()
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Members of a group.
    pub fn group_members(&self, group: u32) -> &[NodeId] {
        &self.groups[group as usize]
    }

    /// Group-mates of `node` excluding itself (empty for honest nodes and
    /// lone colluders).
    pub fn group_mates(&self, node: NodeId) -> Vec<NodeId> {
        match self.member_of[node.index()] {
            Some(g) => self.groups[g as usize]
                .iter()
                .copied()
                .filter(|&m| m != node)
                .collect(),
            None => Vec::new(),
        }
    }
}

/// Collusion-aware closed-form aggregates.
///
/// Wraps the **honest** trust matrix (what direct interactions actually
/// produced) plus a group assignment, and evaluates the gossip limits
/// with and without the distortion.
#[derive(Debug, Clone)]
pub struct ColludedAggregates<'a> {
    honest: &'a TrustMatrix,
    assignment: &'a GroupAssignment,
}

impl<'a> ColludedAggregates<'a> {
    /// Create the view.
    pub fn new(honest: &'a TrustMatrix, assignment: &'a GroupAssignment) -> Self {
        Self { honest, assignment }
    }

    /// What observer `i` injects into the gossip about subject `j`.
    ///
    /// * honest `i`: its direct trust, if any;
    /// * colluding `i` that rated `j`: 1 for a group-mate, 0 otherwise;
    /// * colluding `i` that did *not* rate `j`: an injected endorsement
    ///   (1) when `j` is a group-mate, nothing otherwise.
    pub fn gossip_report(&self, i: NodeId, j: NodeId) -> Option<f64> {
        if i == j {
            return None; // nobody gossips feedback about itself
        }
        if self.assignment.is_colluder(i) {
            if self.assignment.same_group(i, j) {
                Some(1.0)
            } else if self.honest.has_opinion(i, j) {
                Some(0.0)
            } else {
                None
            }
        } else {
            self.honest.get(i, j).map(|t| t.get())
        }
    }

    /// `(Σ reports, #reporters)` about `j` in the colluded gossip.
    pub fn colluded_aggregate(&self, j: NodeId) -> (f64, f64) {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, t) in self.honest.column(j) {
            if self.assignment.is_colluder(i) {
                // Replaced report: 1 for group-mates, 0 otherwise.
                if self.assignment.same_group(i, j) {
                    sum += 1.0;
                }
            } else {
                sum += t.get();
            }
            count += 1;
        }
        // Injected endorsements from group-mates that had not rated j.
        for mate in self.assignment.group_mates(j) {
            if !self.honest.has_opinion(mate, j) {
                sum += 1.0;
                count += 1;
            }
        }
        (sum, count as f64)
    }

    /// `(Σ reports, #reporters)` had everyone reported honestly
    /// (Eq. (8)'s real reputation, gossip semantics).
    pub fn honest_aggregate(&self, j: NodeId) -> (f64, f64) {
        (
            self.honest.opinion_sum(j),
            self.honest.opinion_count(j) as f64,
        )
    }

    /// Global (Algorithm 1-style) estimate with collusion.
    pub fn global_colluded(&self, j: NodeId) -> Option<f64> {
        let (sum, count) = self.colluded_aggregate(j);
        (count > 0.0).then(|| sum / count)
    }

    /// Global reference without distortion.
    pub fn global_clean(&self, j: NodeId) -> Option<f64> {
        let (sum, count) = self.honest_aggregate(j);
        (count > 0.0).then(|| sum / count)
    }

    /// GCLR estimate (Eq. (6)) at `observer` about `j` with the polluted
    /// gossip channel. Per the paper's assumption neighbours report their
    /// honest direct trust; set `neighbours_lie` to let colluding
    /// neighbours feed their distorted reports into `ŷ` instead.
    pub fn gclr_colluded(
        &self,
        system: &ReputationSystem<'_>,
        observer: NodeId,
        j: NodeId,
        neighbours_lie: bool,
    ) -> Option<f64> {
        let excess = system.neighbour_excess_sum(observer);
        let (sum, count) = self.colluded_aggregate(j);
        let denom = excess + count;
        if denom <= 0.0 {
            return None;
        }
        let y_hat = if neighbours_lie {
            system
                .graph()
                .neighbours(observer)
                .iter()
                .map(|&k| {
                    let k = NodeId(k);
                    (system.weight_of(observer, k) - 1.0) * self.gossip_report(k, j).unwrap_or(0.0)
                })
                .sum()
        } else {
            system.y_hat(observer, j)
        };
        Some(((y_hat + sum) / denom).clamp(0.0, 1.0))
    }

    /// GCLR reference without distortion — exactly the honest system's
    /// Eq. (6) value.
    pub fn gclr_clean(
        &self,
        system: &ReputationSystem<'_>,
        observer: NodeId,
        j: NodeId,
    ) -> Option<f64> {
        system.gclr(observer, j)
    }
}

/// The paper's Eq. (18): average RMS **relative** error between the
/// with-collusion estimates `r_ij` and the without-collusion reference
/// `r̂_ij`, averaged per observer and then over observers.
///
/// Pairs where `r_ij = 0` are skipped (the relative error is undefined
/// there); pairs where either estimate is undefined are skipped too.
pub fn average_rms_error<F, G>(
    n: usize,
    subjects: &[NodeId],
    with_collusion: F,
    reference: G,
) -> f64
where
    F: Fn(NodeId, NodeId) -> Option<f64>,
    G: Fn(NodeId, NodeId) -> Option<f64>,
{
    if n == 0 || subjects.is_empty() {
        return 0.0;
    }
    let mut per_observer_sum = 0.0;
    for i in 0..n {
        let observer = NodeId(i as u32);
        let mut acc = 0.0;
        for &j in subjects {
            let (Some(r), Some(r_hat)) = (with_collusion(observer, j), reference(observer, j))
            else {
                continue;
            };
            if r.abs() < 1e-12 {
                continue;
            }
            let rel = (r - r_hat) / r;
            acc += rel * rel;
        }
        per_observer_sum += (acc / subjects.len() as f64).sqrt();
    }
    per_observer_sum / n as f64
}

/// Exact reproductions of the Section 5.2 formulas.
pub mod theory {
    /// Eq. (12): ΔR with plain gossip aggregation,
    /// `ΔR_old = −GC/N² + Σ_{i∈C} t_ij / N`.
    pub fn delta_r_old(n: usize, c: usize, g: usize, colluder_trust_sum: f64) -> f64 {
        let n = n as f64;
        -((g * c) as f64) / (n * n) + colluder_trust_sum / n
    }

    /// The error-shrink factor of Eq. (17): `N / (N + Σ_i (w_oi − 1))`.
    pub fn shrink_factor(n: usize, excess_weight_sum: f64) -> f64 {
        let n = n as f64;
        n / (n + excess_weight_sum)
    }

    /// Eq. (17): `ΔR_new = shrink · ΔR_old`.
    pub fn delta_r_new(
        n: usize,
        c: usize,
        g: usize,
        colluder_trust_sum: f64,
        excess_weight_sum: f64,
    ) -> f64 {
        shrink_factor(n, excess_weight_sum) * delta_r_old(n, c, g, colluder_trust_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_graph::generators;
    use dg_trust::{TrustValue, WeightParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn tv(v: f64) -> TrustValue {
        TrustValue::new(v).unwrap()
    }

    #[test]
    fn scheme_validation() {
        assert!(CollusionScheme::new(0.5, 3).is_ok());
        assert!(CollusionScheme::new(-0.1, 3).is_err());
        assert!(CollusionScheme::new(1.5, 3).is_err());
        assert!(CollusionScheme::new(0.5, 0).is_err());
    }

    #[test]
    fn assignment_sizes() {
        let scheme = CollusionScheme::new(0.3, 4).unwrap();
        let a = GroupAssignment::assign(100, scheme, &mut rng(1)).unwrap();
        assert_eq!(a.colluder_count(), 30);
        assert_eq!(a.group_count(), 8); // ceil(30/4)
        for g in 0..7u32 {
            assert_eq!(a.group_members(g).len(), 4);
        }
        assert_eq!(a.group_members(7).len(), 2);
    }

    #[test]
    fn from_groups_validates() {
        assert!(GroupAssignment::from_groups(3, vec![vec![NodeId(5)]]).is_err());
        assert!(GroupAssignment::from_groups(3, vec![vec![NodeId(0)], vec![NodeId(0)]]).is_err());
        let a = GroupAssignment::from_groups(4, vec![vec![NodeId(1), NodeId(2)]]).unwrap();
        assert!(a.same_group(NodeId(1), NodeId(2)));
        assert_eq!(a.group_mates(NodeId(1)), vec![NodeId(2)]);
        assert!(a.group_mates(NodeId(0)).is_empty());
    }

    #[test]
    fn gossip_reports_follow_collusion_rule() {
        // 5 nodes; 3 and 4 collude. Honest opinions: 3 rated 0 (0.8),
        // 0 rated 3 (0.9), 1 rated 0 (0.6).
        let mut honest = TrustMatrix::new(5);
        honest.set(NodeId(3), NodeId(0), tv(0.8)).unwrap();
        honest.set(NodeId(0), NodeId(3), tv(0.9)).unwrap();
        honest.set(NodeId(1), NodeId(0), tv(0.6)).unwrap();
        let a = GroupAssignment::from_groups(5, vec![vec![NodeId(3), NodeId(4)]]).unwrap();
        let view = ColludedAggregates::new(&honest, &a);

        // Colluder bad-mouths a rated outsider.
        assert_eq!(view.gossip_report(NodeId(3), NodeId(0)), Some(0.0));
        // Colluder endorses its group-mate even without a rating.
        assert_eq!(view.gossip_report(NodeId(3), NodeId(4)), Some(1.0));
        assert_eq!(view.gossip_report(NodeId(4), NodeId(3)), Some(1.0));
        // Colluder stays silent about strangers outside its footprint.
        assert_eq!(view.gossip_report(NodeId(4), NodeId(0)), None);
        // Honest node reports its trust; silence without an opinion.
        assert_eq!(view.gossip_report(NodeId(1), NodeId(0)), Some(0.6));
        assert_eq!(view.gossip_report(NodeId(2), NodeId(0)), None);
        // No self-reports.
        assert_eq!(view.gossip_report(NodeId(3), NodeId(3)), None);
    }

    #[test]
    fn colluded_aggregates_match_hand_computation() {
        // Same setup as above.
        let mut honest = TrustMatrix::new(5);
        honest.set(NodeId(3), NodeId(0), tv(0.8)).unwrap();
        honest.set(NodeId(0), NodeId(3), tv(0.9)).unwrap();
        honest.set(NodeId(1), NodeId(0), tv(0.6)).unwrap();
        let a = GroupAssignment::from_groups(5, vec![vec![NodeId(3), NodeId(4)]]).unwrap();
        let view = ColludedAggregates::new(&honest, &a);

        // Subject 0 (honest): colluder 3's 0.8 becomes 0; honest 0.6 stays.
        let (sum0, count0) = view.colluded_aggregate(NodeId(0));
        assert!((sum0 - 0.6).abs() < 1e-12);
        assert_eq!(count0, 2.0);
        assert!((view.global_colluded(NodeId(0)).unwrap() - 0.3).abs() < 1e-12);
        // Clean: (0.8 + 0.6)/2.
        assert!((view.global_clean(NodeId(0)).unwrap() - 0.7).abs() < 1e-12);

        // Subject 3 (colluder): honest 0.9 stays (observer 0 is honest);
        // group-mate 4 injects a fresh endorsement.
        let (sum3, count3) = view.colluded_aggregate(NodeId(3));
        assert!((sum3 - 1.9).abs() < 1e-12);
        assert_eq!(count3, 2.0);
        assert!((view.global_colluded(NodeId(3)).unwrap() - 0.95).abs() < 1e-12);
        assert!((view.global_clean(NodeId(3)).unwrap() - 0.9).abs() < 1e-12);

        // Subject 4 (colluder, never rated honestly): only the injected
        // endorsement; no clean reference.
        let (sum4, count4) = view.colluded_aggregate(NodeId(4));
        assert_eq!((sum4, count4), (1.0, 1.0));
        assert_eq!(view.global_clean(NodeId(4)), None);
    }

    #[test]
    fn rated_group_mate_is_replaced_not_double_counted() {
        // Colluder 1 had honestly rated its group-mate 2 at 0.3; the lie
        // replaces it with 1.0 and must not also inject an endorsement.
        let mut honest = TrustMatrix::new(3);
        honest.set(NodeId(1), NodeId(2), tv(0.3)).unwrap();
        let a = GroupAssignment::from_groups(3, vec![vec![NodeId(1), NodeId(2)]]).unwrap();
        let view = ColludedAggregates::new(&honest, &a);
        let (sum, count) = view.colluded_aggregate(NodeId(2));
        assert_eq!((sum, count), (1.0, 1.0));
    }

    #[test]
    fn weighted_scheme_shrinks_collusion_error() {
        // Eq. (17) in action: the GCLR estimate with a trusted
        // neighbourhood deviates less (relatively) than the plain global
        // estimate under the same collusion.
        let g = generators::complete(20);
        let qualities: Vec<f64> = (0..20).map(|i| 0.4 + 0.02 * i as f64).collect();
        let honest = crate::reputation::trust_from_qualities(&g, &qualities);
        let scheme = CollusionScheme::new(0.3, 3).unwrap();
        let assignment = GroupAssignment::assign(20, scheme, &mut rng(5)).unwrap();
        let system =
            ReputationSystem::new(&g, honest.clone(), WeightParams::new(4.0, 2.0).unwrap())
                .unwrap();
        let view = ColludedAggregates::new(&honest, &assignment);

        let subjects: Vec<NodeId> = (0..20u32).map(NodeId).collect();
        let global_err = average_rms_error(
            20,
            &subjects,
            |_, j| view.global_colluded(j),
            |_, j| view.global_clean(j),
        );
        let gclr_err = average_rms_error(
            20,
            &subjects,
            |i, j| view.gclr_colluded(&system, i, j, false),
            |i, j| view.gclr_clean(&system, i, j),
        );
        assert!(
            gclr_err < global_err,
            "gclr {gclr_err} should beat global {global_err}"
        );
        // And the absolute scale is moderate, not exploded.
        assert!(global_err < 2.0, "global_err {global_err}");
    }

    #[test]
    fn rms_error_zero_without_collusion() {
        let mut honest = TrustMatrix::new(5);
        honest.set(NodeId(0), NodeId(1), tv(0.5)).unwrap();
        let assignment = GroupAssignment::none(5);
        let view = ColludedAggregates::new(&honest, &assignment);
        let subjects = [NodeId(1)];
        let err = average_rms_error(
            5,
            &subjects,
            |_, j| view.global_colluded(j),
            |_, j| view.global_clean(j),
        );
        assert_eq!(err, 0.0);
    }

    #[test]
    fn theory_formulas() {
        // ΔR_old = −GC/N² + Σt/N with N=100, C=20, G=5, Σt = 8.
        let old = theory::delta_r_old(100, 20, 5, 8.0);
        assert!((old - (-0.01 + 0.08)).abs() < 1e-12);
        // Shrink: N=100, Σ(w−1)=300 → 0.25.
        let s = theory::shrink_factor(100, 300.0);
        assert!((s - 0.25).abs() < 1e-12);
        let new = theory::delta_r_new(100, 20, 5, 8.0, 300.0);
        assert!((new - 0.25 * old).abs() < 1e-12);
        assert!(new.abs() < old.abs());
    }

    #[test]
    fn empty_inputs_give_zero_error() {
        assert_eq!(
            average_rms_error(0, &[NodeId(0)], |_, _| Some(1.0), |_, _| Some(1.0)),
            0.0
        );
        assert_eq!(
            average_rms_error(5, &[], |_, _| Some(1.0), |_, _| Some(1.0)),
            0.0
        );
    }
}
