//! Whitewashing: the attack and the zero-prior defence
//! (Section 4.1.2's deferred aspect).
//!
//! "If a node 'A' has not transacted with a node 'B', then the trust
//! value of node 'B' will also remain 0 with the node 'A'. This initial
//! value is taken as 0 to avoid the white washing attack. This initial
//! value can also be taken as higher than zero and can be dynamically
//! adjusted thereafter as per the level of whitewashing in the network.
//! In this paper, we have not studied this aspect."
//!
//! We study it. A *whitewasher* is a peer that, whenever its reputation
//! collapses, discards its identity and rejoins fresh. Whether the attack
//! pays depends entirely on what a fresh identity is worth:
//!
//! * with the paper's zero prior, a rejoiner is indistinguishable from a
//!   leech — whitewashing buys nothing (it actually *loses* whatever
//!   residual trust the old identity still had);
//! * with an optimistic prior `p > 0`, every wash resets the peer to
//!   reputation `p`, so a free rider can ride the honeymoon forever.
//!
//! [`whitewash_gain`] quantifies the attack value; [`adaptive_prior`]
//! implements the dynamic adjustment the paper hints at: lower the
//! newcomer prior as the observed wash rate rises.

use dg_trust::TrustValue;
use serde::{Deserialize, Serialize};

/// Outcome of evaluating the whitewash attack under a newcomer prior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WhitewashGain {
    /// Reputation of the (exposed) old identity at wash time.
    pub before: f64,
    /// Reputation of the fresh identity (the newcomer prior).
    pub after: f64,
    /// `after − before`: positive means the attack pays.
    pub gain: f64,
}

/// Value of discarding an identity with reputation `exposed` and
/// rejoining under `newcomer_prior`.
pub fn whitewash_gain(exposed: TrustValue, newcomer_prior: TrustValue) -> WhitewashGain {
    WhitewashGain {
        before: exposed.get(),
        after: newcomer_prior.get(),
        gain: newcomer_prior.get() - exposed.get(),
    }
}

/// Configuration of the adaptive newcomer prior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePriorConfig {
    /// Prior granted when no whitewashing is observed.
    pub max_prior: f64,
    /// Wash rate (washes per join) at which the prior hits zero.
    pub saturation_rate: f64,
}

impl Default for AdaptivePriorConfig {
    fn default() -> Self {
        Self {
            max_prior: 0.3,
            saturation_rate: 0.25,
        }
    }
}

/// The dynamically adjusted newcomer prior: linear decay from
/// `max_prior` (no observed whitewashing) to the paper's hard zero once
/// the observed wash rate reaches `saturation_rate`.
///
/// `observed_wash_rate` is the fraction of recent joins attributed to
/// identity churn (e.g. via address reuse or behavioural fingerprints —
/// how it is measured is deployment-specific).
pub fn adaptive_prior(config: AdaptivePriorConfig, observed_wash_rate: f64) -> TrustValue {
    let rate = if observed_wash_rate.is_nan() {
        1.0 // unknown measurement: assume the worst
    } else {
        observed_wash_rate.clamp(0.0, 1.0)
    };
    if config.saturation_rate <= 0.0 {
        return TrustValue::ZERO;
    }
    let scale = 1.0 - (rate / config.saturation_rate).min(1.0);
    TrustValue::saturating(config.max_prior * scale)
}

/// A whitewashing peer's lifecycle statistics over a simulated horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct WashCycleStats {
    /// Identities consumed.
    pub identities: u32,
    /// Total service the attacker extracted (sum of per-round admitted
    /// reputation value, a proxy for download capacity granted).
    pub extracted: f64,
}

/// Simulate a free rider that washes whenever its reputation falls below
/// `wash_threshold`. Each round its reputation decays multiplicatively
/// (providers observe the leeching) and it extracts service proportional
/// to its current reputation. Returns totals for `rounds` rounds.
pub fn simulate_washer(
    newcomer_prior: TrustValue,
    wash_threshold: f64,
    decay_per_round: f64,
    rounds: u32,
) -> WashCycleStats {
    let decay = decay_per_round.clamp(0.0, 1.0);
    let mut stats = WashCycleStats {
        identities: 1,
        extracted: 0.0,
    };
    let mut rep = newcomer_prior.get();
    for _ in 0..rounds {
        stats.extracted += rep;
        rep *= decay;
        if rep < wash_threshold {
            // Discard the identity, rejoin fresh.
            stats.identities += 1;
            rep = newcomer_prior.get();
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(v: f64) -> TrustValue {
        TrustValue::new(v).unwrap()
    }

    #[test]
    fn zero_prior_makes_washing_worthless() {
        // Old identity still had 0.15; washing to a zero prior *loses*.
        let g = whitewash_gain(tv(0.15), TrustValue::ZERO);
        assert!(g.gain < 0.0);
        // Even a fully exposed identity gains exactly nothing.
        let g0 = whitewash_gain(TrustValue::ZERO, TrustValue::ZERO);
        assert_eq!(g0.gain, 0.0);
    }

    #[test]
    fn optimistic_prior_pays_the_attacker() {
        let g = whitewash_gain(tv(0.05), tv(0.4));
        assert!(g.gain > 0.3);
    }

    #[test]
    fn adaptive_prior_decays_with_wash_rate() {
        let cfg = AdaptivePriorConfig::default();
        let clean = adaptive_prior(cfg, 0.0);
        let some = adaptive_prior(cfg, 0.1);
        let heavy = adaptive_prior(cfg, 0.25);
        assert_eq!(clean.get(), 0.3);
        assert!(some.get() < clean.get() && some.get() > 0.0);
        assert_eq!(heavy.get(), 0.0);
        // Beyond saturation it stays pinned at the paper's hard zero.
        assert_eq!(adaptive_prior(cfg, 0.9).get(), 0.0);
        // Unknown measurement is treated pessimistically.
        assert_eq!(adaptive_prior(cfg, f64::NAN).get(), 0.0);
    }

    #[test]
    fn washer_extraction_scales_with_prior() {
        // Under a zero prior the washer extracts nothing at all; under an
        // optimistic prior it farms the honeymoon indefinitely.
        let zero = simulate_washer(TrustValue::ZERO, 0.05, 0.5, 100);
        let optimistic = simulate_washer(tv(0.4), 0.05, 0.5, 100);
        assert_eq!(zero.extracted, 0.0);
        assert!(optimistic.extracted > 10.0);
        assert!(optimistic.identities > 10);
    }

    #[test]
    fn adaptive_prior_closes_the_loop() {
        // As the network observes more washes, the prior drops, and with
        // it the attack value — the dynamic adjustment the paper sketches.
        let cfg = AdaptivePriorConfig::default();
        let mut extracted_at_rate = Vec::new();
        for rate in [0.0, 0.1, 0.2, 0.25] {
            let prior = adaptive_prior(cfg, rate);
            let stats = simulate_washer(prior, 0.05, 0.5, 200);
            extracted_at_rate.push(stats.extracted);
        }
        for pair in extracted_at_rate.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12, "{extracted_at_rate:?}");
        }
        assert_eq!(*extracted_at_rate.last().unwrap(), 0.0);
    }
}
