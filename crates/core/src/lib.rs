//! # dg-core — differential gossip trust, the paper's contribution
//!
//! This crate assembles the trust primitives ([`dg_trust`]) and gossip
//! engines ([`dg_gossip`]) into the four reputation-aggregation algorithm
//! variants of Section 4.1.2:
//!
//! | Variant | Scope | Output | Module |
//! |---------|-------|--------|--------|
//! | Algorithm 1 | one subject | global reputation `R_j` at every node | [`algorithms::alg1`] |
//! | Algorithm 2 | one subject | globally calibrated local reputation `Rep_Ij` | [`algorithms::alg2`] |
//! | Variation 3 | all subjects | global reputation vector at every node | [`algorithms::alg3`] |
//! | Variation 4 | all subjects | GCLR matrix (one row per node) | [`algorithms::alg4`] |
//!
//! plus:
//!
//! * [`reputation`] — a [`reputation::ReputationSystem`]
//!   facade bundling graph + trust matrix + weight law, including the
//!   closed-form Eq. (4)/(6) evaluation the gossip outputs are verified
//!   against (and which the large collusion sweeps use directly),
//! * [`behavior`] — honest / free-rider / colluder node profiles and the
//!   latent-quality ground truth,
//! * [`collusion`] — colluding-group assignment, the distorted gossip
//!   reports, the exact ΔR formulas of Eqs. (12) and (17), and the
//!   RMS-error metric of Eq. (18),
//! * [`adaptive`] — the paper's deferred dynamic adjustment of the
//!   weight-law parameters `a_i` / `b_ij` (QoS-driven base,
//!   recommendation-accuracy-driven exponents),
//! * [`whitewash`] — the whitewashing attack, the zero-prior defence and
//!   the dynamically adjusted newcomer prior the paper sketches.

pub mod adaptive;
pub mod algorithms;
pub mod behavior;
pub mod collusion;
pub mod error;
pub mod reputation;
pub mod whitewash;

pub use error::CoreError;
pub use reputation::ReputationSystem;

/// Convenience prelude.
pub mod prelude {
    pub use crate::algorithms::{alg1, alg2, alg3, alg4, SingleOutcome};
    pub use crate::behavior::{Behavior, Population};
    pub use crate::collusion::{CollusionScheme, GroupAssignment};
    pub use crate::reputation::ReputationSystem;
}
