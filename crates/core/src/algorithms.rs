//! The four aggregation algorithm variants of Section 4.1.2.
//!
//! All four share the differential gossip diffusion core; they differ in
//! *what* is gossiped and *how* the result is post-processed:
//!
//! * [`alg1`] — global reputation of a single subject: opinion holders
//!   start with gossip pair `(t_ij, 1)`, everyone else `(0, 0)`; the
//!   converged ratio is the mean direct opinion.
//! * [`alg2`] — globally calibrated local reputation of a single subject:
//!   one designated node carries gossip weight 1 (so the ratio converges
//!   to the *sum* of opinions) and an extra `count` mass recovers `N_d`;
//!   each node then blends in its neighbours' directly-reported feedback
//!   via Eq. (6).
//! * [`alg3`] — Variation 3: Algorithm 1 for every subject at once,
//!   pushing gossip trios `(subject, y, g)` as one vector message.
//! * [`alg4`] — Variation 4: Algorithm 2 for every subject at once.

use crate::error::CoreError;
use crate::reputation::ReputationSystem;
use dg_gossip::vector::{GossipVector, VectorEntry, VectorGossip};
use dg_gossip::{GossipConfig, GossipPair, ScalarGossip};
use dg_graph::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of a single-subject aggregation (Algorithms 1 and 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleOutcome {
    /// Per-node reputation estimate of the subject (clamped to `[0, 1]`;
    /// `None` where the node ended without gossip mass — only possible in
    /// non-converged runs).
    pub estimates: Vec<Option<f64>>,
    /// Gossip steps executed.
    pub steps: usize,
    /// Whether the run reached protocol quiescence.
    pub converged: bool,
    /// Messages per node per step (Table 2's statistic).
    pub messages_per_node_per_step: f64,
    /// Total messages sent.
    pub total_messages: u64,
}

/// Outcome of an all-subjects aggregation (Variations 3 and 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullOutcome {
    /// `estimates[i]` maps subject id → reputation estimate at node `i`.
    pub estimates: Vec<BTreeMap<u32, f64>>,
    /// Gossip steps executed.
    pub steps: usize,
    /// Whether the run reached protocol quiescence.
    pub converged: bool,
    /// Vector messages per node per step.
    pub messages_per_node_per_step: f64,
    /// Total trio entries shipped (communication complexity).
    pub entries_sent: u64,
}

impl FullOutcome {
    /// Estimate of `subject` at `node`.
    pub fn estimate(&self, node: NodeId, subject: NodeId) -> Option<f64> {
        self.estimates[node.index()].get(&subject.0).copied()
    }
}

/// Algorithm 1: global reputation aggregation for a single subject.
pub mod alg1 {
    use super::*;

    /// Run Algorithm 1 for `subject`.
    pub fn run<R: Rng + ?Sized>(
        system: &ReputationSystem<'_>,
        subject: NodeId,
        config: GossipConfig,
        rng: &mut R,
    ) -> Result<SingleOutcome, CoreError> {
        let n = system.node_count();
        let mut initial = vec![GossipPair::ZERO; n];
        for (i, t) in system.trust().column(subject) {
            initial[i.index()] = GossipPair::originator(t.get());
        }
        let out = ScalarGossip::new(system.graph(), config, initial)?.run(rng);
        let estimates = out
            .pairs
            .iter()
            .map(|p| (p.weight > 0.0).then(|| p.ratio().clamp(0.0, 1.0)))
            .collect();
        Ok(SingleOutcome {
            estimates,
            steps: out.steps,
            converged: out.converged,
            messages_per_node_per_step: out.stats.per_node_per_step(),
            total_messages: out.stats.total(),
        })
    }
}

/// Algorithm 2: globally calibrated local reputation for a single subject.
pub mod alg2 {
    use super::*;

    /// Run Algorithm 2 for `subject`.
    ///
    /// The paper designates "node 1" as the unit-weight originator; we use
    /// the lowest-id opinion holder (falling back to node 0 when nobody
    /// has interacted with the subject, in which case every estimate is
    /// the neighbour-only blend).
    pub fn run<R: Rng + ?Sized>(
        system: &ReputationSystem<'_>,
        subject: NodeId,
        config: GossipConfig,
        rng: &mut R,
    ) -> Result<SingleOutcome, CoreError> {
        let n = system.node_count();
        let column = system.trust().column(subject);
        let originator = column.first().map(|&(i, _)| i).unwrap_or(NodeId(0));

        // Single-subject vector gossip: the `count` channel rides along.
        let mut initial = vec![GossipVector::new(); n];
        for &(i, t) in &column {
            let entry = if i == originator {
                VectorEntry::originator(t.get())
            } else {
                VectorEntry::passive(t.get())
            };
            initial[i.index()].insert(subject.0, entry);
        }
        if column.is_empty() {
            // Still need one unit of gossip weight so ratios are defined.
            initial[originator.index()].insert(
                subject.0,
                VectorEntry {
                    value: 0.0,
                    weight: 1.0,
                    count: 0.0,
                },
            );
        }

        let out = VectorGossip::new(system.graph(), config, initial)?.run(rng);

        let estimates = (0..n)
            .map(|i| {
                let observer = NodeId(i as u32);
                let sum = out.estimate(observer, subject)?;
                let count = out.count_estimate(observer, subject)?;
                Some(combine_gclr(system, observer, subject, sum, count))
            })
            .collect();
        Ok(SingleOutcome {
            estimates,
            steps: out.steps,
            converged: out.converged,
            messages_per_node_per_step: out.stats.per_node_per_step(),
            total_messages: out.stats.total(),
        })
    }
}

/// Blend the gossiped `(Σ t, N_d)` aggregates with the neighbours' direct
/// reports per Eq. (6) / Algorithm 2's output line:
/// `Rep_Ij = (ŷ_Ij + Y) / (Σ(w−1) + Count)`.
pub(crate) fn combine_gclr(
    system: &ReputationSystem<'_>,
    observer: NodeId,
    subject: NodeId,
    opinion_sum: f64,
    opinion_count: f64,
) -> f64 {
    let excess = system.neighbour_excess_sum(observer);
    let denom = excess + opinion_count;
    if denom <= 0.0 {
        return 0.0;
    }
    ((system.y_hat(observer, subject) + opinion_sum) / denom).clamp(0.0, 1.0)
}

/// Variation 3: simultaneous global reputation for all subjects.
pub mod alg3 {
    use super::*;

    /// Run Variation 3: every node pushes its full feedback vector, every
    /// opinion holder carries gossip weight 1 per subject.
    pub fn run<R: Rng + ?Sized>(
        system: &ReputationSystem<'_>,
        config: GossipConfig,
        rng: &mut R,
    ) -> Result<FullOutcome, CoreError> {
        let n = system.node_count();
        let mut initial = vec![GossipVector::new(); n];
        for (i, j, t) in system.trust().entries() {
            initial[i.index()].insert(j.0, VectorEntry::originator(t.get()));
        }
        let out = VectorGossip::new(system.graph(), config, initial)?.run(rng);
        let estimates = out
            .state
            .iter()
            .map(|vec| {
                vec.iter()
                    .filter(|(_, e)| e.weight > 0.0)
                    .map(|(&j, e)| (j, e.ratio().clamp(0.0, 1.0)))
                    .collect()
            })
            .collect();
        Ok(FullOutcome {
            estimates,
            steps: out.steps,
            converged: out.converged,
            messages_per_node_per_step: out.stats.per_node_per_step(),
            entries_sent: out.entries_sent,
        })
    }
}

/// Variation 4: simultaneous globally calibrated local reputation for all
/// subjects.
pub mod alg4 {
    use super::*;

    /// Run Variation 4: per subject, the lowest-id opinion holder carries
    /// the unit gossip weight; counts ride along; each node finishes by
    /// blending its neighbours' direct reports per Eq. (6).
    pub fn run<R: Rng + ?Sized>(
        system: &ReputationSystem<'_>,
        config: GossipConfig,
        rng: &mut R,
    ) -> Result<FullOutcome, CoreError> {
        let n = system.node_count();
        // Lowest-id opinion holder per subject (entries() is row-major,
        // i.e. ascending observer id).
        let mut originator: BTreeMap<u32, u32> = BTreeMap::new();
        for (i, j, _) in system.trust().entries() {
            originator.entry(j.0).or_insert(i.0);
        }
        let mut initial = vec![GossipVector::new(); n];
        for (i, j, t) in system.trust().entries() {
            let entry = if originator[&j.0] == i.0 {
                VectorEntry::originator(t.get())
            } else {
                VectorEntry::passive(t.get())
            };
            initial[i.index()].insert(j.0, entry);
        }
        let out = VectorGossip::new(system.graph(), config, initial)?.run(rng);

        let estimates = (0..n)
            .map(|i| {
                let observer = NodeId(i as u32);
                out.state[i]
                    .iter()
                    .filter(|(_, e)| e.weight > 0.0)
                    .map(|(&j, e)| {
                        let subject = NodeId(j);
                        let count = e.count_estimate().unwrap_or(0.0);
                        let rep = combine_gclr(system, observer, subject, e.ratio(), count);
                        (j, rep)
                    })
                    .collect()
            })
            .collect();
        Ok(FullOutcome {
            estimates,
            steps: out.steps,
            converged: out.converged,
            messages_per_node_per_step: out.stats.per_node_per_step(),
            entries_sent: out.entries_sent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reputation::trust_from_qualities;
    use dg_graph::{generators, pa};
    use dg_trust::{TrustMatrix, TrustValue, WeightParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn tv(v: f64) -> TrustValue {
        TrustValue::new(v).unwrap()
    }

    fn config() -> GossipConfig {
        GossipConfig::differential(1e-9).unwrap()
    }

    #[test]
    fn alg1_converges_to_mean_opinion() {
        let g = generators::complete(15);
        let mut m = TrustMatrix::new(15);
        m.set(NodeId(2), NodeId(7), tv(0.9)).unwrap();
        m.set(NodeId(4), NodeId(7), tv(0.5)).unwrap();
        m.set(NodeId(9), NodeId(7), tv(0.1)).unwrap();
        let s = ReputationSystem::new(&g, m, WeightParams::default()).unwrap();
        let out = alg1::run(&s, NodeId(7), config(), &mut rng(1)).unwrap();
        assert!(out.converged);
        let expected = s.global_reputation(NodeId(7)).unwrap();
        for (i, est) in out.estimates.iter().enumerate() {
            let est = est.expect("converged run has mass everywhere");
            assert!(
                (est - expected).abs() < 1e-3,
                "node {i}: {est} vs {expected}"
            );
        }
    }

    #[test]
    fn alg2_converges_to_closed_form_gclr() {
        let g = pa::preferential_attachment(pa::PaConfig { nodes: 40, m: 2 }, &mut rng(2)).unwrap();
        let qualities: Vec<f64> = (0..40)
            .map(|i| 0.2 + 0.6 * ((i % 7) as f64 / 6.0))
            .collect();
        let m = trust_from_qualities(&g, &qualities);
        let s = ReputationSystem::new(&g, m, WeightParams::new(2.0, 2.0).unwrap()).unwrap();
        let subject = NodeId(5);
        let out = alg2::run(&s, subject, config(), &mut rng(3)).unwrap();
        assert!(out.converged);
        for i in 0..40u32 {
            let observer = NodeId(i);
            let est = out.estimates[i as usize].expect("mass everywhere");
            let reference = s.gclr(observer, subject).unwrap();
            assert!(
                (est - reference).abs() < 5e-3,
                "observer {i}: gossip {est} vs closed form {reference}"
            );
        }
    }

    #[test]
    fn alg2_unknown_subject_gives_neighbour_only_blend() {
        let g = generators::complete(6);
        let m = TrustMatrix::new(6); // nobody knows anybody
        let s = ReputationSystem::new(&g, m, WeightParams::default()).unwrap();
        let out = alg2::run(&s, NodeId(3), config(), &mut rng(4)).unwrap();
        assert!(out.converged);
        for est in out.estimates.iter().flatten() {
            assert_eq!(*est, 0.0);
        }
    }

    #[test]
    fn alg3_matches_per_subject_means() {
        let g = generators::complete(10);
        let mut m = TrustMatrix::new(10);
        m.set(NodeId(0), NodeId(4), tv(0.9)).unwrap();
        m.set(NodeId(1), NodeId(4), tv(0.3)).unwrap();
        m.set(NodeId(2), NodeId(8), tv(0.7)).unwrap();
        let s = ReputationSystem::new(&g, m, WeightParams::default()).unwrap();
        let out = alg3::run(&s, config(), &mut rng(5)).unwrap();
        assert!(out.converged);
        for i in 0..10u32 {
            let e4 = out.estimate(NodeId(i), NodeId(4)).unwrap();
            let e8 = out.estimate(NodeId(i), NodeId(8)).unwrap();
            assert!((e4 - 0.6).abs() < 1e-3, "node {i}: {e4}");
            assert!((e8 - 0.7).abs() < 1e-3, "node {i}: {e8}");
        }
    }

    #[test]
    fn alg4_matches_closed_form_matrix() {
        let g = pa::preferential_attachment(pa::PaConfig { nodes: 30, m: 2 }, &mut rng(6)).unwrap();
        let qualities: Vec<f64> = (0..30)
            .map(|i| 0.1 + 0.8 * ((i % 5) as f64 / 4.0))
            .collect();
        let m = trust_from_qualities(&g, &qualities);
        let s = ReputationSystem::new(&g, m, WeightParams::new(2.0, 2.0).unwrap()).unwrap();
        let out = alg4::run(&s, config(), &mut rng(7)).unwrap();
        assert!(out.converged);
        let mut checked = 0;
        for i in 0..30u32 {
            let observer = NodeId(i);
            for (&j, &est) in &out.estimates[i as usize] {
                let reference = s.gclr(observer, NodeId(j)).unwrap();
                assert!(
                    (est - reference).abs() < 2e-2,
                    "({i}, {j}): gossip {est} vs closed form {reference}"
                );
                checked += 1;
            }
        }
        assert!(checked > 100, "only {checked} estimates checked");
    }

    #[test]
    fn alg4_with_neutral_weights_equals_alg3() {
        let g = generators::complete(12);
        let mut m = TrustMatrix::new(12);
        m.set(NodeId(0), NodeId(3), tv(0.8)).unwrap();
        m.set(NodeId(1), NodeId(3), tv(0.4)).unwrap();
        m.set(NodeId(5), NodeId(9), tv(0.6)).unwrap();
        let s = ReputationSystem::new(&g, m, WeightParams::neutral()).unwrap();
        let v3 = alg3::run(&s, config(), &mut rng(8)).unwrap();
        let v4 = alg4::run(&s, config(), &mut rng(9)).unwrap();
        assert!(v3.converged && v4.converged);
        for i in 0..12u32 {
            for j in [3u32, 9] {
                let a = v3.estimate(NodeId(i), NodeId(j)).unwrap();
                let b = v4.estimate(NodeId(i), NodeId(j)).unwrap();
                assert!((a - b).abs() < 1e-2, "({i}, {j}): v3 {a} vs v4 {b}");
            }
        }
    }

    #[test]
    fn outcome_metrics_are_populated() {
        let g = generators::complete(8);
        let mut m = TrustMatrix::new(8);
        m.set(NodeId(1), NodeId(2), tv(0.5)).unwrap();
        m.set(NodeId(3), NodeId(2), tv(0.9)).unwrap();
        let s = ReputationSystem::new(&g, m, WeightParams::default()).unwrap();
        let out = alg1::run(&s, NodeId(2), config(), &mut rng(10)).unwrap();
        assert!(out.steps > 0);
        assert!(out.total_messages > 0);
        assert!(out.messages_per_node_per_step > 0.0);
    }
}
