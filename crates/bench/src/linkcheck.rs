//! Markdown link checker for the documentation layer.
//!
//! Scans markdown files for inline links `[text](target)` and verifies
//! that every *local* target exists on disk (relative to the file that
//! references it). External schemes (`http://`, `https://`, `mailto:`)
//! and pure in-page anchors (`#section`) are skipped — the repository
//! builds offline, so only filesystem rot is checkable. `path#anchor`
//! targets are checked for the `path` part.
//!
//! CI's `link-check` job runs the `linkcheck` binary over `README.md`,
//! `ROADMAP.md` and `docs/`, and a unit test keeps the checker honest
//! against the repository's own tree, so a renamed file breaks the build
//! instead of silently rotting the docs.

use std::path::{Path, PathBuf};

/// One broken link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkIssue {
    /// File containing the link.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The link target as written.
    pub target: String,
}

impl std::fmt::Display for LinkIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: broken link `{}`",
            self.file.display(),
            self.line,
            self.target
        )
    }
}

/// Whether a link target should be checked against the filesystem.
fn is_local(target: &str) -> bool {
    !(target.is_empty()
        || target.starts_with('#')
        || target.contains("://")
        || target.starts_with("mailto:"))
}

/// Extract inline link targets `[text](target)` from one line.
/// Markdown images `![alt](target)` match the same shape and are
/// checked too.
fn targets_in_line(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let start = i + 2;
            let mut depth = 1usize;
            let mut end = start;
            while end < bytes.len() && depth > 0 {
                match bytes[end] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                if depth == 0 {
                    break;
                }
                end += 1;
            }
            if end < bytes.len() && depth == 0 {
                out.push(line[start..end].to_string());
                i = end;
            }
        }
        i += 1;
    }
    out
}

/// Check one markdown file's local links; `contents` are the file's
/// text (separated from IO for testability).
pub fn check_content(file: &Path, contents: &str) -> Vec<LinkIssue> {
    let base = file.parent().unwrap_or_else(|| Path::new("."));
    let mut issues = Vec::new();
    let mut in_code_fence = false;
    for (idx, line) in contents.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_code_fence = !in_code_fence;
            continue;
        }
        if in_code_fence {
            continue;
        }
        for target in targets_in_line(line) {
            if !is_local(&target) {
                continue;
            }
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            if !base.join(path_part).exists() {
                issues.push(LinkIssue {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    target,
                });
            }
        }
    }
    issues
}

/// Check a set of markdown files and directories (directories are
/// scanned non-recursively for `*.md`). Unreadable paths are reported
/// as issues rather than ignored.
pub fn check_paths(paths: &[PathBuf]) -> Vec<LinkIssue> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(p)
                .map(|it| {
                    it.filter_map(|e| e.ok())
                        .map(|e| e.path())
                        .filter(|f| f.extension().is_some_and(|ext| ext == "md"))
                        .collect()
                })
                .unwrap_or_default();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(p.clone());
        }
    }
    let mut issues = Vec::new();
    for file in files {
        match std::fs::read_to_string(&file) {
            Ok(contents) => issues.extend(check_content(&file, &contents)),
            Err(_) => issues.push(LinkIssue {
                file: file.clone(),
                line: 0,
                target: "<unreadable file>".to_string(),
            }),
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_inline_targets() {
        assert_eq!(
            targets_in_line("see [a](x.md) and ![img](y.png), not `code`"),
            vec!["x.md".to_string(), "y.png".to_string()]
        );
        assert!(targets_in_line("no links here [bracket] (paren)").is_empty());
    }

    #[test]
    fn external_and_anchor_links_are_skipped() {
        assert!(!is_local("https://example.org/x"));
        assert!(!is_local("http://example.org"));
        assert!(!is_local("mailto:x@y.z"));
        assert!(!is_local("#section"));
        assert!(is_local("README.md"));
        assert!(is_local("docs/ARCHITECTURE.md#crate-map"));
    }

    #[test]
    fn reports_missing_and_accepts_existing() {
        let file = Path::new("virtual/README.md");
        // `virtual/` doesn't exist, so any local target is missing.
        let issues = check_content(file, "[gone](missing.md)\n[web](https://ok)\n");
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].line, 1);
        assert_eq!(issues[0].target, "missing.md");
    }

    #[test]
    fn code_fences_are_ignored() {
        let file = Path::new("virtual/README.md");
        let md = "```text\n[not a link](inside/fence.md)\n```\n";
        assert!(check_content(file, md).is_empty());
    }

    #[test]
    fn path_anchor_checks_the_path_part() {
        let dir = std::env::temp_dir().join("dg_linkcheck_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("target.md"), "# t\n").unwrap();
        let md_file = dir.join("index.md");
        let issues = check_content(&md_file, "[ok](target.md#anchor)\n[bad](nope.md#x)\n");
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].target, "nope.md#x");
    }

    #[test]
    fn repository_markdown_has_no_broken_links() {
        // CARGO_MANIFEST_DIR = crates/bench → repo root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("repo root")
            .to_path_buf();
        let paths = vec![
            root.join("README.md"),
            root.join("ROADMAP.md"),
            root.join("docs"),
        ];
        let issues = check_paths(&paths);
        assert!(
            issues.is_empty(),
            "broken markdown links:\n{}",
            issues
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
