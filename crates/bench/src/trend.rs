//! The perf-trend tracker behind the scheduled CI job.
//!
//! `perf_trend` runs the pinned-seed [`perf`](crate::perf) suite across
//! *all* network profiles — lossless (both engines), lossy, partitioned
//! and churning (sequential convergence) — and appends one markdown row
//! to `docs/PERF_TREND.md`, building the bench trajectory commit by
//! commit. The file is committed back by the scheduled workflow, so the
//! repo carries its own performance history.

use crate::perf::{run_suite, run_thread_sweep, PerfConfig, SMOKE};
use dg_gossip::{AdversaryMix, EngineKind, NetworkProfile};

/// The tiny self-test config (keeps the unit test fast).
pub const TINY: PerfConfig = PerfConfig {
    name: "tiny",
    nodes: 150,
    rounds: 2,
    requests_per_edge: 3,
    shards: 2,
    traffic: dg_sim::TrafficModel::full(),
    scope: dg_sim::rounds::AggregationScope::Neighbourhood,
};

/// One appended history row.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// ISO date (supplied by the workflow; the suite itself is clock-free).
    pub date: String,
    /// Commit SHA (short form is fine).
    pub sha: String,
    /// Sequential engine throughput, node-rounds/s.
    pub sequential: f64,
    /// Parallel engine throughput, node-rounds/s.
    pub parallel: f64,
    /// Sharded engine throughput, node-rounds/s.
    pub sharded: f64,
    /// Incremental engine throughput on the smoke (full-traffic)
    /// workload, node-rounds/s — its skewed-workload headline lives in
    /// `BENCH_baseline_skewed.json`.
    pub incremental: f64,
    /// parallel / sequential.
    pub speedup: f64,
    /// Sharded-engine parallel efficiency at 2 threads (from a
    /// `--threads 1,2` sweep of the same config). 1.0 is perfect linear
    /// scaling; on a single-core runner the 2-thread point is
    /// oversubscribed, so read this column together with the runner's
    /// core count.
    pub efficiency_2t: f64,
    /// Gossip rounds to convergence per profile, in lossless / lossy /
    /// partitioned / churning order.
    pub convergence: [usize; 4],
    /// Residual error under the worst (churning) profile.
    pub churning_residual: f64,
}

impl TrendRow {
    /// The markdown table row.
    pub fn markdown(&self) -> String {
        format!(
            "| {} | {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.2}x | {:.2} | {} | {} | {} | {} | \
             {:.2e} |",
            self.date,
            self.sha,
            self.sequential,
            self.parallel,
            self.sharded,
            self.incremental,
            self.speedup,
            self.efficiency_2t,
            self.convergence[0],
            self.convergence[1],
            self.convergence[2],
            self.convergence[3],
            self.churning_residual,
        )
    }
}

/// The table header (written when the history file does not exist yet).
pub const HEADER: &str = "\
# Performance trend

Appended by the scheduled `perf-trend` CI job: one row per run of the
pinned-seed perf suite (smoke config, seed 42) across every network
profile. Throughput is engine node-rounds/s measured lossless;
`eff 2t` is the sharded engine's 2-thread parallel efficiency from a
`--threads 1,2` sweep of the same config (1.0 = perfect scaling);
`conv <profile>` is scalar-gossip rounds to convergence under that
profile; the residual is the estimate error left under the churning
profile. Hardware varies between runners — read trends, not absolutes.

| date | commit | seq n-r/s | par n-r/s | shd n-r/s | inc n-r/s | speedup | eff 2t | conv lossless | conv lossy | conv partitioned | conv churning | churn residual |
|------|--------|-----------|-----------|-----------|-----------|---------|--------|---------------|------------|------------------|---------------|----------------|
";

/// Run the suite across all profiles and assemble the row.
pub fn run_trend(
    config: &PerfConfig,
    seed: u64,
    date: String,
    sha: String,
) -> Result<TrendRow, Box<dyn std::error::Error>> {
    // Engine throughput: one lossless run measuring every engine.
    let lossless = run_suite(config, seed, None, NetworkProfile::lossless())?;
    let sequential = lossless
        .engine("sequential")
        .ok_or("missing sequential result")?
        .node_rounds_per_sec;
    let parallel = lossless
        .engine("parallel")
        .ok_or("missing parallel result")?
        .node_rounds_per_sec;
    let sharded = lossless
        .engine("sharded")
        .ok_or("missing sharded result")?
        .node_rounds_per_sec;
    let incremental = lossless
        .engine("incremental")
        .ok_or("missing incremental result")?
        .node_rounds_per_sec;

    // Convergence + residual: one sequential run per faulty profile.
    let mut convergence = [lossless.rounds_to_convergence, 0, 0, 0];
    let mut churning_residual = lossless.residual_error;
    for (slot, profile) in [
        NetworkProfile::lossy(),
        NetworkProfile::partitioned(),
        NetworkProfile::churning(),
    ]
    .into_iter()
    .enumerate()
    {
        let report = run_suite(config, seed, Some(EngineKind::Sequential), profile)?;
        convergence[slot + 1] = report.rounds_to_convergence;
        churning_residual = report.residual_error;
    }

    // Scaling: a 1,2-thread sweep of the sharded engine on the same
    // config, tracked alongside raw throughput so scheduler regressions
    // show up even when absolute numbers drift with runner hardware.
    let sweep = run_thread_sweep(
        config,
        seed,
        EngineKind::Sharded,
        &[1, 2],
        AdversaryMix::none(),
    )?;
    let efficiency_2t = sweep.point(2).map_or(0.0, |p| p.parallel_efficiency);

    Ok(TrendRow {
        date,
        sha,
        sequential,
        parallel,
        sharded,
        incremental,
        speedup: parallel / sequential.max(1e-9),
        efficiency_2t,
        convergence,
        churning_residual,
    })
}

/// Append a row to the history file, writing the header first if the
/// file does not exist.
pub fn append_row(path: &str, row: &TrendRow) -> std::io::Result<()> {
    let mut content = match std::fs::read_to_string(path) {
        Ok(existing) => existing,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => HEADER.to_owned(),
        Err(e) => return Err(e),
    };
    if !content.ends_with('\n') {
        content.push('\n');
    }
    content.push_str(&row.markdown());
    content.push('\n');
    std::fs::write(path, content)
}

/// The `perf_trend` binary's entry point.
pub fn trend_main() -> Result<(), Box<dyn std::error::Error>> {
    let mut seed = 42u64;
    let mut date = String::from("unknown-date");
    let mut sha = String::from("unknown-sha");
    let mut out = String::from("docs/PERF_TREND.md");
    let mut out_dir: Option<String> = None;
    let mut tiny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a u64 value")?;
            }
            "--date" => date = args.next().ok_or("--date needs a value")?,
            "--sha" => sha = args.next().ok_or("--sha needs a value")?,
            "--out" => out = args.next().ok_or("--out needs a path")?,
            "--out-dir" => out_dir = Some(args.next().ok_or("--out-dir needs a directory")?),
            "--tiny" => tiny = true,
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: perf_trend [--seed <u64>] [--date <iso>] \
                     [--sha <commit>] [--out <path>] [--out-dir <dir>] [--tiny]"
                )
                .into())
            }
        }
    }
    let out = crate::resolve_out_path(out_dir.as_deref(), &out);
    let config = if tiny { TINY } else { SMOKE };
    eprintln!(
        "perf_trend: {} config, seed {seed}, all profiles -> {out}",
        config.name
    );
    let row = run_trend(&config, seed, date, sha)?;
    append_row(&out, &row)?;
    eprintln!("appended: {}", row.markdown());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_trend_runs_and_rows_are_well_formed() {
        let row = run_trend(&TINY, 7, "2026-01-01".into(), "abc1234".into()).unwrap();
        assert!(row.sequential > 0.0 && row.parallel > 0.0 && row.sharded > 0.0);
        assert!(row.incremental > 0.0);
        assert!(row.convergence.iter().all(|&c| c > 0));
        assert!(row.efficiency_2t > 0.0);
        let md = row.markdown();
        assert_eq!(md.matches('|').count(), 14, "13 cells: {md}");
        assert!(md.contains("abc1234"));
    }

    #[test]
    fn append_creates_header_then_appends() {
        let dir = std::env::temp_dir().join("dg_trend_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("PERF_TREND.md");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        let row = TrendRow {
            date: "2026-01-01".into(),
            sha: "deadbee".into(),
            sequential: 1000.0,
            parallel: 2000.0,
            sharded: 1500.0,
            incremental: 1800.0,
            speedup: 2.0,
            efficiency_2t: 0.9,
            convergence: [10, 20, 30, 40],
            churning_residual: 1e-3,
        };
        append_row(path, &row).unwrap();
        append_row(path, &row).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("# Performance trend"));
        assert_eq!(content.matches("deadbee").count(), 2);
        std::fs::remove_file(path).unwrap();
    }
}
