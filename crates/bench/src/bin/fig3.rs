//! Fig. 3: gossip step counts vs network size for each error bound,
//! differential push vs normal push.
//!
//! The claim: differential step counts grow far slower than normal push
//! on PA graphs (polylogarithmically, Theorem 5.1/5.2), and the *total*
//! per-node communication of differential undercuts normal push for
//! N > 1000 despite its higher per-step cost.

use dg_bench::{size_grid, Cli, XI_GRID};
use dg_gossip::FanoutPolicy;
use dg_sim::experiments::steps_experiment;
use dg_sim::report::{render_table, to_json_lines};

fn main() {
    let cli = Cli::parse();
    let sizes = size_grid(cli.full);
    let policies = [FanoutPolicy::Differential, FanoutPolicy::Uniform(1)];
    let rows = steps_experiment(&sizes, &XI_GRID, &policies, cli.seed).expect("steps experiment");

    if cli.json {
        println!("{}", to_json_lines(&rows));
        return;
    }

    println!("Fig. 3 — gossip steps to convergence (PA graphs)\n");
    for policy in &policies {
        let label = policy.label();
        println!("policy: {label}");
        let mut headers = vec!["N".to_owned()];
        headers.extend(XI_GRID.iter().map(|xi| format!("xi={xi}")));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let table: Vec<Vec<String>> = sizes
            .iter()
            .map(|&n| {
                let mut row = vec![format!("N={n}")];
                for &xi in &XI_GRID {
                    let r = rows
                        .iter()
                        .find(|r| r.nodes == n && r.xi == xi && r.policy == label)
                        .expect("grid covered");
                    row.push(if r.converged {
                        r.steps.to_string()
                    } else {
                        format!("{}+", r.steps)
                    });
                }
                row
            })
            .collect();
        println!("{}", render_table(&headers_ref, &table));
    }

    println!("total messages per node for the round, paper's accounting (xi = 1e-4):");
    println!("(steps x msgs/node/step — every node pushes until the round ends;");
    println!(" the quiescence-aware measured totals are in the --json output)");
    let headers = ["N", "differential", "push", "winner"];
    let table: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let d = rows
                .iter()
                .find(|r| r.nodes == n && r.xi == 1e-4 && r.policy == "differential")
                .expect("grid covered");
            let p = rows
                .iter()
                .find(|r| r.nodes == n && r.xi == 1e-4 && r.policy == "push")
                .expect("grid covered");
            vec![
                format!("N={n}"),
                format!("{:.1}", d.msgs_per_node_no_quiesce),
                format!("{:.1}", p.msgs_per_node_no_quiesce),
                if d.msgs_per_node_no_quiesce <= p.msgs_per_node_no_quiesce {
                    "differential".to_owned()
                } else {
                    "push".to_owned()
                },
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &table));
    println!("(paper: differential wins on total cost for networks beyond ~1000 nodes)");
}
