//! CI perf-regression gate: compare fresh `perf_suite` reports against
//! their committed baselines and fail when any engine's nodes/round
//! throughput dropped by more than the allowed factor, when convergence
//! needs more than the allowed factor of extra gossip rounds, or when
//! the residual error grew past budget.
//!
//! ```text
//! perf_compare <baseline.json> <candidate.json> [<b2> <c2> ...] [max_regression]
//! perf_compare --threads <baseline.json> <candidate.json> [min_efficiency]
//! perf_compare --serve <baseline.json> <candidate.json> [min_queries_per_sec]
//! ```
//!
//! Reports are compared pairwise, so one invocation gates every profile
//! (e.g. the lossless smoke report *and* the lossy report). Exit code
//! 0 = within budget, 1 = regression, 2 = usage error.
//!
//! `--threads` mode compares [`ThreadScalingReport`]s
//! (`BENCH_threads.json` curves from `perf_suite --threads`) instead:
//! per-thread-count throughput is gated pairwise against the baseline
//! under the default regression budget, and the candidate's own
//! parallel efficiency must reach `min_efficiency` (default 0.75) at
//! every multi-thread point within the machine's hardware parallelism —
//! oversubscribed points are reported but exempt.
//!
//! `--serve` mode compares [`ServeReport`]s (`BENCH_serve*.json` from
//! `perf_suite --serve`): sustained queries/s is gated against the
//! baseline under the default regression budget, the candidate's
//! engine must have completed rounds inside the window, and an
//! optional trailing `min_queries_per_sec` enforces an absolute floor
//! (the million-node acceptance bar is 100 000).

use dg_bench::perf::{
    find_efficiency_violations, find_quality_regressions, find_regressions,
    find_thread_regressions, PerfReport, ThreadScalingReport, MAX_REGRESSION,
};
use dg_bench::serve::{find_serve_regressions, ServeReport};

/// The default lower bound on 2-thread parallel efficiency — the
/// work-stealing scheduler's CI bar (≥ 1.5x speedup on two cores).
const MIN_EFFICIENCY: f64 = 0.75;

fn load<T: serde::Deserialize>(path: &str) -> T {
    let parse = || -> Result<T, Box<dyn std::error::Error>> {
        Ok(serde_json::from_str(&std::fs::read_to_string(path)?)?)
    };
    parse().unwrap_or_else(|e| {
        eprintln!("cannot load report {path}: {e}");
        std::process::exit(2);
    })
}

/// `--threads` mode: gate two scaling curves. Exits the process.
fn threads_main(mut args: Vec<String>) -> ! {
    // Optional trailing efficiency bound.
    let min_efficiency = match args.last().and_then(|s| s.parse::<f64>().ok()) {
        Some(f) => {
            args.pop();
            if !(f.is_finite() && (0.0..=1.0).contains(&f)) {
                eprintln!("min_efficiency must be a finite number in [0, 1], got {f}");
                std::process::exit(2);
            }
            f
        }
        None => MIN_EFFICIENCY,
    };
    if args.len() != 2 {
        eprintln!(
            "usage: perf_compare --threads <baseline.json> <candidate.json> [min_efficiency]"
        );
        std::process::exit(2);
    }
    let baseline: ThreadScalingReport = load(&args[0]);
    let candidate: ThreadScalingReport = load(&args[1]);
    println!("comparing scaling curve {} against {}:", args[1], args[0]);
    if baseline.name != candidate.name || baseline.nodes != candidate.nodes {
        eprintln!(
            "  warning: comparing different configs ({} @ {} nodes vs {} @ {} nodes)",
            baseline.name, baseline.nodes, candidate.name, candidate.nodes
        );
    }
    for cand in &candidate.points {
        let delta = baseline.point(cand.threads).map_or_else(String::new, |b| {
            format!(
                "  ({:+.1}% vs baseline)",
                100.0 * (cand.node_rounds_per_sec / b.node_rounds_per_sec - 1.0)
            )
        });
        println!(
            "  {:>3} threads  {:>12.0} node-rounds/s  efficiency {:.3}{delta}",
            cand.threads, cand.node_rounds_per_sec, cand.parallel_efficiency
        );
    }
    if candidate
        .points
        .iter()
        .any(|p| p.threads > candidate.machine_threads)
    {
        println!(
            "  note: points beyond the machine's {} hardware threads are exempt from the \
             efficiency gate",
            candidate.machine_threads
        );
    }

    let mut failed = false;
    for violation in find_thread_regressions(&baseline, &candidate, MAX_REGRESSION) {
        eprintln!("  REGRESSION: {violation}");
        failed = true;
    }
    for violation in find_efficiency_violations(&candidate, min_efficiency) {
        eprintln!("  REGRESSION: {violation}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("scaling gate passed (min efficiency: {min_efficiency})");
    std::process::exit(0);
}

/// `--serve` mode: gate two serving-throughput reports. Exits the
/// process.
fn serve_main(mut args: Vec<String>) -> ! {
    // Optional trailing absolute queries/s floor.
    let min_qps = match args.last().and_then(|s| s.parse::<f64>().ok()) {
        Some(f) => {
            args.pop();
            if !(f.is_finite() && f >= 0.0) {
                eprintln!("min_queries_per_sec must be a finite number >= 0, got {f}");
                std::process::exit(2);
            }
            Some(f)
        }
        None => None,
    };
    if args.len() != 2 {
        eprintln!(
            "usage: perf_compare --serve <baseline.json> <candidate.json> [min_queries_per_sec]"
        );
        std::process::exit(2);
    }
    let baseline: ServeReport = load(&args[0]);
    let candidate: ServeReport = load(&args[1]);
    println!(
        "comparing serving throughput {} against {}:",
        args[1], args[0]
    );
    if baseline.name != candidate.name || baseline.nodes != candidate.nodes {
        eprintln!(
            "  warning: comparing different configs ({} @ {} nodes vs {} @ {} nodes)",
            baseline.name, baseline.nodes, candidate.name, candidate.nodes
        );
    }
    println!(
        "  baseline {:>12.0} queries/s  candidate {:>12.0} queries/s  ({:+.1}%, {} rounds \
         completed, ingest {}/{} accepted, {} shed)",
        baseline.queries_per_sec,
        candidate.queries_per_sec,
        100.0 * (candidate.queries_per_sec / baseline.queries_per_sec.max(1e-9) - 1.0),
        candidate.rounds_completed,
        candidate.ingest_accepted,
        candidate.ingest_attempted,
        candidate.ingest_shed,
    );
    let violations = find_serve_regressions(&baseline, &candidate, MAX_REGRESSION, min_qps);
    for violation in &violations {
        eprintln!("  REGRESSION: {violation}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
    match min_qps {
        Some(min) => println!("serve gate passed (absolute floor: {min:.0} queries/s)"),
        None => println!("serve gate passed (allowed regression: {MAX_REGRESSION}x)"),
    }
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--threads") {
        threads_main(args.split_off(1));
    }
    if args.first().map(String::as_str) == Some("--serve") {
        serve_main(args.split_off(1));
    }
    // Optional trailing budget factor.
    let max_regression = match args.last().and_then(|s| s.parse::<f64>().ok()) {
        Some(f) => {
            args.pop();
            // NaN must not slip through (every later comparison against
            // NaN is false, which would silently disable the gate).
            if !(f.is_finite() && f >= 1.0) {
                eprintln!("max_regression must be a finite number >= 1.0, got {f}");
                std::process::exit(2);
            }
            f
        }
        None => MAX_REGRESSION,
    };
    if args.is_empty() || args.len() % 2 != 0 {
        eprintln!(
            "usage: perf_compare <baseline.json> <candidate.json> [<b2> <c2> ...] \
             [max_regression]"
        );
        std::process::exit(2);
    }

    let mut failed = false;
    for pair in args.chunks(2) {
        let (baseline_path, candidate_path) = (&pair[0], &pair[1]);
        let baseline: PerfReport = load(baseline_path);
        let candidate: PerfReport = load(candidate_path);
        println!("comparing {candidate_path} against {baseline_path}:");

        if baseline.name != candidate.name || baseline.nodes != candidate.nodes {
            eprintln!(
                "  warning: comparing different configs ({} @ {} nodes vs {} @ {} nodes)",
                baseline.name, baseline.nodes, candidate.name, candidate.nodes
            );
        }

        for base in &baseline.engines {
            if let Some(cand) = candidate.engine(&base.engine) {
                println!(
                    "  {:<10} baseline {:>12.0} node-rounds/s  candidate {:>12.0} \
                     node-rounds/s  ({:+.1}%)",
                    base.engine,
                    base.node_rounds_per_sec,
                    cand.node_rounds_per_sec,
                    100.0 * (cand.node_rounds_per_sec / base.node_rounds_per_sec - 1.0),
                );
            }
        }
        println!(
            "  convergence {} -> {} rounds under `{}` (residual {:.2e} -> {:.2e})",
            baseline.rounds_to_convergence,
            candidate.rounds_to_convergence,
            candidate.profile,
            baseline.residual_error,
            candidate.residual_error,
        );

        for r in find_regressions(&baseline, &candidate, max_regression) {
            eprintln!(
                "  REGRESSION: {} dropped {:.2}x ({:.0} -> {:.0} node-rounds/s, budget {:.1}x)",
                r.engine, r.factor, r.baseline, r.candidate, max_regression
            );
            failed = true;
        }
        for violation in find_quality_regressions(&baseline, &candidate, max_regression) {
            eprintln!("  REGRESSION: {violation}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("perf gate passed (allowed regression: {max_regression}x)");
}
