//! CI perf-regression gate: compare fresh `perf_suite` reports against
//! their committed baselines and fail when any engine's nodes/round
//! throughput dropped by more than the allowed factor, when convergence
//! needs more than the allowed factor of extra gossip rounds, or when
//! the residual error grew past budget.
//!
//! ```text
//! perf_compare <baseline.json> <candidate.json> [<b2> <c2> ...] [max_regression]
//! ```
//!
//! Reports are compared pairwise, so one invocation gates every profile
//! (e.g. the lossless smoke report *and* the lossy report). Exit code
//! 0 = within budget, 1 = regression, 2 = usage error.

use dg_bench::perf::{find_quality_regressions, find_regressions, PerfReport, MAX_REGRESSION};

fn load(path: &str) -> PerfReport {
    let parse = || -> Result<PerfReport, Box<dyn std::error::Error>> {
        Ok(serde_json::from_str(&std::fs::read_to_string(path)?)?)
    };
    parse().unwrap_or_else(|e| {
        eprintln!("cannot load report {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Optional trailing budget factor.
    let max_regression = match args.last().and_then(|s| s.parse::<f64>().ok()) {
        Some(f) => {
            args.pop();
            // NaN must not slip through (every later comparison against
            // NaN is false, which would silently disable the gate).
            if !(f.is_finite() && f >= 1.0) {
                eprintln!("max_regression must be a finite number >= 1.0, got {f}");
                std::process::exit(2);
            }
            f
        }
        None => MAX_REGRESSION,
    };
    if args.is_empty() || args.len() % 2 != 0 {
        eprintln!(
            "usage: perf_compare <baseline.json> <candidate.json> [<b2> <c2> ...] \
             [max_regression]"
        );
        std::process::exit(2);
    }

    let mut failed = false;
    for pair in args.chunks(2) {
        let (baseline_path, candidate_path) = (&pair[0], &pair[1]);
        let baseline = load(baseline_path);
        let candidate = load(candidate_path);
        println!("comparing {candidate_path} against {baseline_path}:");

        if baseline.name != candidate.name || baseline.nodes != candidate.nodes {
            eprintln!(
                "  warning: comparing different configs ({} @ {} nodes vs {} @ {} nodes)",
                baseline.name, baseline.nodes, candidate.name, candidate.nodes
            );
        }

        for base in &baseline.engines {
            if let Some(cand) = candidate.engine(&base.engine) {
                println!(
                    "  {:<10} baseline {:>12.0} node-rounds/s  candidate {:>12.0} \
                     node-rounds/s  ({:+.1}%)",
                    base.engine,
                    base.node_rounds_per_sec,
                    cand.node_rounds_per_sec,
                    100.0 * (cand.node_rounds_per_sec / base.node_rounds_per_sec - 1.0),
                );
            }
        }
        println!(
            "  convergence {} -> {} rounds under `{}` (residual {:.2e} -> {:.2e})",
            baseline.rounds_to_convergence,
            candidate.rounds_to_convergence,
            candidate.profile,
            baseline.residual_error,
            candidate.residual_error,
        );

        for r in find_regressions(&baseline, &candidate, max_regression) {
            eprintln!(
                "  REGRESSION: {} dropped {:.2}x ({:.0} -> {:.0} node-rounds/s, budget {:.1}x)",
                r.engine, r.factor, r.baseline, r.candidate, max_regression
            );
            failed = true;
        }
        for violation in find_quality_regressions(&baseline, &candidate, max_regression) {
            eprintln!("  REGRESSION: {violation}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("perf gate passed (allowed regression: {max_regression}x)");
}
