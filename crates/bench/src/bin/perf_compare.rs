//! CI perf-regression gate: compare a fresh `perf_suite` report against
//! the committed baseline and fail when any engine's nodes/round
//! throughput dropped by more than the allowed factor.
//!
//! ```text
//! perf_compare <baseline.json> <candidate.json> [max_regression]
//! ```
//!
//! Exit code 0 = within budget, 1 = regression, 2 = usage error.

use dg_bench::perf::{find_regressions, PerfReport, MAX_REGRESSION};

fn load(path: &str) -> Result<PerfReport, Box<dyn std::error::Error>> {
    Ok(serde_json::from_str(&std::fs::read_to_string(path)?)?)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, candidate_path, max_regression) = match args.as_slice() {
        [b, c] => (b.clone(), c.clone(), MAX_REGRESSION),
        [b, c, f] => match f.parse::<f64>() {
            Ok(f) if f >= 1.0 => (b.clone(), c.clone(), f),
            _ => {
                eprintln!("max_regression must be a number >= 1.0, got `{f}`");
                std::process::exit(2);
            }
        },
        _ => {
            eprintln!("usage: perf_compare <baseline.json> <candidate.json> [max_regression]");
            std::process::exit(2);
        }
    };

    let baseline = load(&baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot load baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let candidate = load(&candidate_path).unwrap_or_else(|e| {
        eprintln!("cannot load candidate {candidate_path}: {e}");
        std::process::exit(2);
    });

    if baseline.name != candidate.name || baseline.nodes != candidate.nodes {
        eprintln!(
            "warning: comparing different configs ({} @ {} nodes vs {} @ {} nodes)",
            baseline.name, baseline.nodes, candidate.name, candidate.nodes
        );
    }

    for base in &baseline.engines {
        if let Some(cand) = candidate.engine(&base.engine) {
            println!(
                "{:<10} baseline {:>12.0} node-rounds/s  candidate {:>12.0} node-rounds/s  ({:+.1}%)",
                base.engine,
                base.node_rounds_per_sec,
                cand.node_rounds_per_sec,
                100.0 * (cand.node_rounds_per_sec / base.node_rounds_per_sec - 1.0),
            );
        }
    }

    let regressions = find_regressions(&baseline, &candidate, max_regression);
    if regressions.is_empty() {
        println!("perf gate passed (allowed regression: {max_regression}x)");
        return;
    }
    for r in &regressions {
        eprintln!(
            "REGRESSION: {} dropped {:.2}x ({:.0} -> {:.0} node-rounds/s, budget {:.1}x)",
            r.engine, r.factor, r.baseline, r.candidate, max_regression
        );
    }
    std::process::exit(1);
}
