//! Fig. 4: gossip step counts under packet loss (churn-induced).
//!
//! Paper setting: N = 10 000, loss probability ∈ {0, 0.1, 0.2, 0.3},
//! ξ grid as in Fig. 3. Failed pushes bounce back to the sender (mass
//! conservation); the claim is a *small* increment in steps as loss
//! rises. Default N is 2000; `--full` uses the paper's 10 000.

use dg_bench::{Cli, XI_GRID};
use dg_sim::experiments::loss_experiment;
use dg_sim::report::{render_table, to_json_lines};

const LOSS_GRID: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

fn main() {
    let cli = Cli::parse();
    let nodes = if cli.full { 10_000 } else { 2000 };
    let rows = loss_experiment(nodes, &XI_GRID, &LOSS_GRID, cli.seed).expect("loss experiment");

    if cli.json {
        println!("{}", to_json_lines(&rows));
        return;
    }

    println!("Fig. 4 — gossip steps vs error bound under packet loss (N = {nodes})\n");
    let mut headers = vec!["loss".to_owned()];
    headers.extend(XI_GRID.iter().map(|xi| format!("xi={xi}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table: Vec<Vec<String>> = LOSS_GRID
        .iter()
        .map(|&loss| {
            let mut row = vec![format!("p={loss}")];
            for &xi in &XI_GRID {
                let r = rows
                    .iter()
                    .find(|r| r.loss == loss && r.xi == xi)
                    .expect("grid covered");
                row.push(if r.converged {
                    r.steps.to_string()
                } else {
                    format!("{}+", r.steps)
                });
            }
            row
        })
        .collect();
    println!("{}", render_table(&headers_ref, &table));
    println!("(paper: small increment in steps as loss probability rises)");
}
