//! The scheduled perf-trend tracker (see `dg_bench::trend`).

fn main() {
    if let Err(e) = dg_bench::trend::trend_main() {
        eprintln!("perf_trend: {e}");
        std::process::exit(1);
    }
}
