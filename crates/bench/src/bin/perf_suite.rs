//! Round-engine performance suite: run the reputation lifecycle on a
//! pinned-seed scenario under both engines and emit a machine-readable
//! `BENCH_<name>.json` report (nodes/round throughput,
//! rounds-to-convergence, wall time).
//!
//! ```text
//! cargo run --release -p dg-bench --bin perf_suite            # smoke (5k nodes)
//! cargo run --release -p dg-bench --bin perf_suite -- --full  # 20k nodes
//! cargo run --release -p dg-bench --bin perf_suite -- --out BENCH_pr.json
//! cargo run --release -p dg-bench --bin perf_suite -- --engine parallel
//! ```
//!
//! CI's `perf-smoke` job uploads the report and gates on
//! `perf_compare` against the committed `crates/bench/BENCH_baseline.json`.

use dg_bench::perf::{run_suite, FULL, SMOKE};
use dg_bench::Cli;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::parse();
    let config = if cli.full { FULL } else { SMOKE };
    eprintln!(
        "perf_suite: {} ({} nodes, {} rounds, {} req/edge, seed {})",
        config.name, config.nodes, config.rounds, config.requests_per_edge, cli.seed
    );

    let report = run_suite(&config, cli.seed, cli.engine)?;
    for engine in &report.engines {
        eprintln!(
            "  {:<10} {:>10.1} ms  {:>12.0} node-rounds/s  (final free-rider service {:.3})",
            engine.engine,
            engine.wall_ms,
            engine.node_rounds_per_sec,
            engine.final_free_rider_service_rate,
        );
    }
    if let Some(speedup) = report.speedup_parallel_over_sequential {
        eprintln!("  speedup parallel/sequential: {speedup:.2}x");
    }
    eprintln!(
        "  {} gossip steps to convergence",
        report.rounds_to_convergence
    );

    let path = cli
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", report.name));
    std::fs::write(&path, serde_json::to_string_pretty(&report)?)?;
    eprintln!("wrote {path}");
    if cli.json {
        println!("{}", serde_json::to_string(&report)?);
    }
    Ok(())
}
