//! Convergence-degradation harness: how rounds-to-convergence and the
//! residual estimate error respond to a misbehaving network.
//!
//! Two sweeps over the same pinned-seed scenario:
//!
//! 1. **loss sweep** — steps and residual error as the packet-loss rate
//!    climbs (the paper's Fig. 4 axis, extended with the error left
//!    behind);
//! 2. **profile sweep** — the four named [`NetworkProfile`] presets
//!    (`lossless` / `lossy` / `partitioned` / `churning`), the source of
//!    README §Network faults' scenario × profile table.
//!
//! ```text
//! cargo run --release -p dg-bench --bin degradation
//! cargo run --release -p dg-bench --bin degradation -- --full --json
//! ```

use dg_bench::Cli;
use dg_gossip::NetworkProfile;
use dg_sim::experiments::{degradation_experiment, profile_experiment};
use dg_sim::report::{fmt_f, render_table, to_json_lines};

const LOSS_GRID: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::parse();
    let (nodes, xi) = if cli.full { (5000, 1e-4) } else { (1000, 1e-4) };

    let loss_rows = degradation_experiment(nodes, xi, &LOSS_GRID, cli.seed)?;
    let presets: Vec<NetworkProfile> = NetworkProfile::PRESETS
        .iter()
        .map(|p| NetworkProfile::parse(p).expect("preset"))
        .collect();
    let profile_rows = profile_experiment(nodes, xi, &presets, cli.seed)?;

    if cli.json {
        println!("{}", to_json_lines(&loss_rows));
        println!("{}", to_json_lines(&profile_rows));
        return Ok(());
    }

    println!(
        "degradation vs loss rate (N = {nodes}, xi = {xi:.0e}, seed {}):\n",
        cli.seed
    );
    let rows: Vec<Vec<String>> = loss_rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.loss),
                r.steps.to_string(),
                r.converged.to_string(),
                fmt_f(r.residual_error),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["loss", "steps", "converged", "residual"], &rows)
    );

    println!("degradation by profile preset:\n");
    let rows: Vec<Vec<String>> = profile_rows
        .iter()
        .map(|r| {
            vec![
                r.profile.clone(),
                format!("{:.2}", r.loss),
                format!("{:.2}", r.churn),
                r.steps.to_string(),
                r.converged.to_string(),
                fmt_f(r.residual_error),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["profile", "loss", "churn", "steps", "converged", "residual"],
            &rows
        )
    );
    Ok(())
}
