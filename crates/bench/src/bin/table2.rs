//! Table 2: messages per node per gossip step.
//!
//! Paper's grid: N ∈ {100, 500, 1000, 10000, 50000} × ξ ∈ {1e-2 … 1e-5},
//! differential push on PA graphs. Reported values sit slightly above 1
//! (≈ 1.11–1.21) and drift *down* as N grows or ξ tightens — the startup
//! overhead amortises over more steps. The default grid trims the two
//! largest sizes; pass `--full` for the paper's grid.

use dg_bench::{size_grid, Cli, XI_GRID};
use dg_gossip::FanoutPolicy;
use dg_sim::experiments::steps_experiment;
use dg_sim::report::{render_table, to_json_lines};

fn main() {
    let cli = Cli::parse();
    let sizes = size_grid(cli.full);
    let rows = steps_experiment(&sizes, &XI_GRID, &[FanoutPolicy::Differential], cli.seed)
        .expect("steps experiment");

    if cli.json {
        println!("{}", to_json_lines(&rows));
        return;
    }

    println!("Table 2 — messages per node per step (differential gossip, PA graphs)\n");
    let mut headers = vec!["N".to_owned()];
    headers.extend(XI_GRID.iter().map(|xi| format!("xi={xi}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();

    let table: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let mut row = vec![format!("N={n}")];
            for &xi in &XI_GRID {
                let r = rows
                    .iter()
                    .find(|r| r.nodes == n && r.xi == xi)
                    .expect("grid covered");
                row.push(format!("{:.3}", r.msgs_per_node_per_step));
            }
            row
        })
        .collect();
    println!("{}", render_table(&headers_ref, &table));

    println!("(paper: 1.112–1.212, decreasing with N and with tighter xi)");
}
