//! Markdown link-check gate: verify that local links in the given
//! markdown files/directories resolve on disk. Exits non-zero on the
//! first rot so CI can gate on it.
//!
//! ```text
//! cargo run -p dg-bench --bin linkcheck                 # README, ROADMAP, docs/
//! cargo run -p dg-bench --bin linkcheck -- CHANGES.md   # explicit set
//! ```

use dg_bench::linkcheck::check_paths;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<PathBuf> = if args.is_empty() {
        vec![
            PathBuf::from("README.md"),
            PathBuf::from("ROADMAP.md"),
            PathBuf::from("docs"),
        ]
    } else {
        args.into_iter().map(PathBuf::from).collect()
    };

    let issues = check_paths(&paths);
    if issues.is_empty() {
        eprintln!("linkcheck: all local markdown links resolve");
        return;
    }
    for issue in &issues {
        eprintln!("{issue}");
    }
    eprintln!("linkcheck: {} broken link(s)", issues.len());
    std::process::exit(1);
}
