//! The adversarial paper-claims gate (see `dg_bench::claims`).

fn main() {
    if let Err(e) = dg_bench::claims::claims_main() {
        eprintln!("claims: {e}");
        std::process::exit(1);
    }
}
