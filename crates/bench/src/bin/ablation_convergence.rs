//! Ablation A2: Theorems 5.1 and 5.2 checked empirically.
//!
//! Part 1 — rumor spreading (Theorem 5.1): mean steps to inform a PA
//! network under push / pull / push-pull / differential push, against the
//! `(log₂N)²` budget.
//!
//! Part 2 — potential decay (Theorem 5.2): the contribution-vector
//! potential ψ_n starts at N−1 and should decay geometrically under both
//! 1-push and differential push.

use dg_bench::Cli;
use dg_gossip::spread::SpreadProtocol;
use dg_gossip::FanoutPolicy;
use dg_sim::experiments::{potential_experiment, spread_experiment};
use dg_sim::report::{render_table, to_json_lines};

fn main() {
    let cli = Cli::parse();
    let sizes: Vec<usize> = if cli.full {
        vec![500, 1000, 5000, 20_000]
    } else {
        vec![200, 500, 2000]
    };
    let protocols = [
        SpreadProtocol::Push,
        SpreadProtocol::Pull,
        SpreadProtocol::PushPull,
        SpreadProtocol::DifferentialPush,
    ];
    let rows = spread_experiment(&sizes, &protocols, 10, cli.seed).expect("spread experiment");

    if cli.json {
        println!("{}", to_json_lines(&rows));
    } else {
        println!("Ablation A2.1 — rumor spreading steps on PA graphs (10 trials each)\n");
        let mut headers = vec!["N".to_owned(), "(log2 N)^2".to_owned()];
        headers.extend(protocols.iter().map(|p| p.label().to_owned()));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let table: Vec<Vec<String>> = sizes
            .iter()
            .map(|&n| {
                let log2n = (n as f64).log2();
                let mut row = vec![format!("N={n}"), format!("{:.0}", log2n * log2n)];
                for p in &protocols {
                    let r = rows
                        .iter()
                        .find(|r| r.nodes == n && r.protocol == p.label())
                        .expect("grid covered");
                    row.push(format!("{:.1}", r.mean_steps));
                }
                row
            })
            .collect();
        println!("{}", render_table(&headers_ref, &table));
        println!("(differential push should track push-pull, well inside the (log2 N)^2 budget)\n");
    }

    // Part 2: potential decay (O(N²) memory — small N).
    let n = if cli.full { 200 } else { 100 };
    let steps = 30;
    let push = potential_experiment(n, FanoutPolicy::Uniform(1), steps, cli.seed)
        .expect("potential experiment");
    let diff = potential_experiment(n, FanoutPolicy::Differential, steps, cli.seed)
        .expect("potential experiment");

    if cli.json {
        let rows: Vec<serde_json::Value> = (0..=steps)
            .map(|s| {
                serde_json::json!({
                    "step": s,
                    "psi_push": push[s],
                    "psi_differential": diff[s],
                })
            })
            .collect();
        for r in rows {
            println!("{r}");
        }
        return;
    }

    println!(
        "Ablation A2.2 — potential psi_n decay (N = {n}; psi_0 = N − 1 = {})\n",
        n - 1
    );
    let headers = ["step", "psi (push)", "psi (differential)"];
    let table: Vec<Vec<String>> = (0..=steps)
        .step_by(3)
        .map(|s| {
            vec![
                s.to_string(),
                format!("{:.6}", push[s]),
                format!("{:.6}", diff[s]),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &table));
    println!("(Theorem 5.2: geometric decay; differential at least as fast on PA graphs)");
}
