//! Fig. 5: average RMS error under **group** collusion.
//!
//! Colluding fraction sweeps 10–70%; group sizes {5, 10, 20}. The paper's
//! claims: the error of differential gossip trust stays small even at
//! high colluder percentages, group size makes only a minor difference,
//! and the weighted (GCLR) estimate beats the unweighted global one
//! (Eq. 17). Default N = 500; `--full` uses 2000.

use dg_bench::Cli;
use dg_sim::experiments::collusion_experiment;
use dg_sim::report::{render_table, to_json_lines};

const FRACTIONS: [f64; 7] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
const GROUP_SIZES: [usize; 3] = [5, 10, 20];

fn main() {
    let cli = Cli::parse();
    let nodes = if cli.full { 2000 } else { 500 };
    let rows = collusion_experiment(nodes, &FRACTIONS, &GROUP_SIZES, cli.seed)
        .expect("collusion experiment");

    if cli.json {
        println!("{}", to_json_lines(&rows));
        return;
    }

    println!("Fig. 5 — average RMS error (Eq. 18) vs %% colluding peers, group collusion (N = {nodes})\n");
    println!("differential gossip trust (weighted GCLR):");
    let mut headers = vec!["% colluders".to_owned()];
    headers.extend(GROUP_SIZES.iter().map(|g| format!("G={g}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table = |gclr: bool| -> Vec<Vec<String>> {
        FRACTIONS
            .iter()
            .map(|&f| {
                let pct = f * 100.0;
                let mut row = vec![format!("{pct:.0}%")];
                for &g in &GROUP_SIZES {
                    let r = rows
                        .iter()
                        .find(|r| (r.colluder_pct - pct).abs() < 1e-9 && r.group_size == g)
                        .expect("grid covered");
                    row.push(format!(
                        "{:.4}",
                        if gclr { r.rms_gclr } else { r.rms_global }
                    ));
                }
                row
            })
            .collect()
    };
    println!("{}", render_table(&headers_ref, &table(true)));
    println!("unweighted global estimate (GossipTrust-style baseline):");
    println!("{}", render_table(&headers_ref, &table(false)));
    println!("(paper: weighted errors stay small; group size has minor effect)");
}
