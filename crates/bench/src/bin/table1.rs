//! Table 1 + Fig. 2: the 10-node worked example.
//!
//! Reproduces the paper's per-iteration trace of the differential gossip
//! ratio at each node of the example topology, including the published
//! degree and fan-out rows (degrees 4,4,7,3,3,2,2,2,3,2; k = 1 except
//! the hub's k = 3). The underlying `t_ij` seed values are not published,
//! so the absolute entries differ; the asserted shape is the contraction
//! of all ten trajectories to the common average within ~8 iterations.

use dg_bench::Cli;
use dg_sim::experiments::example_trace;
use dg_sim::report::{fmt_f, render_table};

fn main() {
    let cli = Cli::parse();
    let iterations = 8;
    let trace = example_trace(iterations, cli.seed).expect("example trace");

    if cli.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&trace).expect("serialise")
        );
        return;
    }

    println!("Table 1 — aggregated value after every iteration at each node");
    println!(
        "(Fig. 2 example network; seed {}, target average {})\n",
        cli.seed,
        fmt_f(trace.target)
    );

    let mut headers: Vec<String> = vec!["".to_owned()];
    headers.extend((1..=10).map(|i| i.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut degree_row = vec!["degree".to_owned()];
    degree_row.extend(trace.degrees.iter().map(|d| d.to_string()));
    rows.push(degree_row);
    let mut k_row = vec!["k".to_owned()];
    k_row.extend(trace.fanouts.iter().map(|k| k.to_string()));
    rows.push(k_row);
    let mut init_row = vec!["t".to_owned()];
    init_row.extend(trace.initial.iter().map(|&v| fmt_f(v)));
    rows.push(init_row);
    for (it, ratios) in trace.rows.iter().enumerate() {
        let mut row = vec![format!("itr={}", it + 1)];
        row.extend(ratios.iter().map(|&v| fmt_f(v)));
        rows.push(row);
    }
    println!("{}", render_table(&headers_ref, &rows));

    let last = trace.rows.last().expect("iterations > 0");
    let max_dev = last
        .iter()
        .map(|v| (v - trace.target).abs())
        .fold(0.0f64, f64::max);
    println!(
        "max |ratio − target| after {iterations} iterations: {}",
        fmt_f(max_dev)
    );
}
