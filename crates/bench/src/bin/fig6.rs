//! Fig. 6: average RMS error under **individual** collusion (G = 1).
//!
//! Lone colluders bad-mouth every other node (report 0) and endorse only
//! themselves. Same sweep as Fig. 5 with group size 1.

use dg_bench::Cli;
use dg_sim::experiments::collusion_experiment;
use dg_sim::report::{render_table, to_json_lines};

const FRACTIONS: [f64; 7] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];

fn main() {
    let cli = Cli::parse();
    let nodes = if cli.full { 2000 } else { 500 };
    let rows =
        collusion_experiment(nodes, &FRACTIONS, &[1], cli.seed).expect("collusion experiment");

    if cli.json {
        println!("{}", to_json_lines(&rows));
        return;
    }

    println!("Fig. 6 — average RMS error (Eq. 18) vs % colluding peers, individual colluders (N = {nodes})\n");
    let headers = ["% colluders", "rms (GCLR)", "rms (global)"];
    let table: Vec<Vec<String>> = FRACTIONS
        .iter()
        .map(|&f| {
            let pct = f * 100.0;
            let r = rows
                .iter()
                .find(|r| (r.colluder_pct - pct).abs() < 1e-9)
                .expect("grid covered");
            vec![
                format!("{pct:.0}%"),
                format!("{:.4}", r.rms_gclr),
                format!("{:.4}", r.rms_global),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &table));
    println!("(paper: error remains small even at very high colluder percentages)");
}
