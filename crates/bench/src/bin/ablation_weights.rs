//! Ablation A1: the Eq. (17) error-shrink factor.
//!
//! For each weight-law parameterisation `(a, b)`, compares the *predicted*
//! collusion-error shrink `N / (N + Σ(w−1))` (averaged over observers)
//! against the *measured* ratio `rms_GCLR / rms_global` from the Fig. 5
//! machinery. Stronger weight laws should shrink the error more, and the
//! measured ratio should track the prediction's ordering.

use dg_bench::Cli;
use dg_sim::experiments::weight_ablation;
use dg_sim::report::{render_table, to_json_lines};

const PARAMS: [(f64, f64); 5] = [(1.0, 0.0), (1.5, 1.0), (2.0, 1.0), (2.0, 2.0), (4.0, 2.0)];

fn main() {
    let cli = Cli::parse();
    let nodes = if cli.full { 1000 } else { 300 };
    let rows = weight_ablation(nodes, &PARAMS, 0.3, 5, cli.seed).expect("weight ablation");

    if cli.json {
        println!("{}", to_json_lines(&rows));
        return;
    }

    println!("Ablation A1 — Eq. (17) shrink factor, predicted vs measured (N = {nodes}, 30% colluders, G = 5)\n");
    let headers = ["a", "b", "predicted shrink", "measured rms ratio"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.a),
                format!("{}", r.b),
                format!("{:.4}", r.predicted_shrink),
                if r.measured_ratio.is_nan() {
                    "n/a".to_owned()
                } else {
                    format!("{:.4}", r.measured_ratio)
                },
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &table));
    println!("(neutral law (a=1) predicts shrink 1.0 — no protection; larger a, b shrink more)");
}
