//! Shared plumbing for the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--full` — run the paper's full parameter grid (N up to 50 000);
//!   the default grid is scaled to finish in minutes on a laptop,
//! * `--scale` — run `perf_suite` on the pinned-seed N = 1 000 000
//!   sparse-graph scale config (`BENCH_scale.json`, with peak-RSS
//!   sampling); typically combined with `--engine sharded`,
//! * `--skewed` — run `perf_suite` on the pinned-seed skewed-traffic
//!   config (Zipf s = 1 request skew at 1% mean activity,
//!   `BENCH_skewed.json`) — the incremental engine's target workload,
//! * `--serve` — run `perf_suite`'s serving-throughput measurement
//!   instead of the round-loop suite: concurrent pipelined clients
//!   hammer a live `dg-serve` server while the engine keeps completing
//!   rounds (`BENCH_serve.json`, gated by `perf_compare --serve`);
//!   composes with `--scale` for the million-node serving floor,
//! * `--nodes <usize>` — override the node count of the selected
//!   `perf_suite` config (the `SCALING.md` table sweeps 10k/100k/1M
//!   this way),
//! * `--activity <f64>` / `--zipf <f64>` — override the selected
//!   config's traffic shape (mean activity fraction / Zipf exponent of
//!   the per-node request skew); overridden runs get their own report
//!   file so they cannot shadow a pinned config's gate,
//! * `--seed <u64>` — override the scenario seed (default 42),
//! * `--json` — emit JSON lines instead of a formatted table,
//! * `--engine <sequential|parallel|sharded|incremental>` — restrict a
//!   *round-loop driving* binary (`perf_suite`, which otherwise
//!   measures all engines) to one execution engine. The figure/table
//!   binaries measure the gossip layer itself, which is
//!   engine-independent — they accept and ignore the flag. Results
//!   never depend on it (see `tests/engine_equivalence.rs`),
//! * `--shards <usize>` — shard count for the sharded engine (0 = the
//!   deterministic auto partition; results are bit-identical either
//!   way),
//! * `--profile <lossless|lossy|partitioned|churning>` — network fault
//!   profile for profile-aware binaries (`perf_suite` emits
//!   `BENCH_<profile>.json`, `degradation` sweeps them),
//! * `--adversary <none|sybil|collusion|slander|whitewash|stealth>` —
//!   adversary preset for round-loop driving binaries (`perf_suite` composes it
//!   with `--engine` and `--profile`, so attacks run under either
//!   engine over any transport profile; the gossip-layer figure/table
//!   binaries accept and ignore it),
//! * `--out <path>` — where report-writing binaries put their JSON,
//! * `--out-dir <dir>` — directory report-writing binaries
//!   (`perf_suite`, `claims`, `perf_trend`) resolve their output files
//!   under (created if missing; composes with `--out`, which then names
//!   the file inside the directory),
//! * `--checkpoint-every <rounds>` — `perf_suite` session mode: run the
//!   smoke config through a `RunSession`, checkpointing every N rounds
//!   into `--out-dir` (or a temp dir),
//! * `--resume <dir>` — `perf_suite`: resume a `RunSession` from the
//!   store at `<dir>` and continue the run,
//! * `--checkpoint-overhead` — `perf_suite` gate: measure the pinned
//!   smoke config with and without checkpoint-every-4-rounds and exit
//!   non-zero if checkpointing costs more than 10% throughput,
//! * `--threads <list>` — `perf_suite` thread-scaling mode: run the
//!   selected config's round loop once per thread count in the
//!   comma-separated list (e.g. `1,2,4`) and emit the
//!   scaling-efficiency curve (node-rounds/s and parallel efficiency
//!   vs cores) into `BENCH_threads.json`; composes with `--engine`
//!   (default: the sharded engine, the work-stealing scheduler's
//!   target configuration).

use dg_gossip::{AdversaryMix, EngineKind, NetworkProfile};

pub mod claims;
pub mod linkcheck;
pub mod perf;
pub mod serve;
pub mod trend;

/// Parsed common CLI options.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Full-scale (paper-grid) mode.
    pub full: bool,
    /// Million-node scale mode (`perf_suite`).
    pub scale: bool,
    /// Skewed-traffic mode (`perf_suite`): Zipf request skew at 1%
    /// mean activity, the incremental engine's target workload.
    pub skewed: bool,
    /// Node-count override for the selected config.
    pub nodes: Option<usize>,
    /// Mean activity-fraction override for the selected config's
    /// traffic model.
    pub activity: Option<f64>,
    /// Zipf-exponent override for the selected config's traffic model.
    pub zipf: Option<f64>,
    /// Scenario seed.
    pub seed: u64,
    /// Emit JSON lines.
    pub json: bool,
    /// Engine restriction for round-loop driving binaries
    /// (`None` = the binary's default, e.g. `perf_suite` measures all).
    pub engine: Option<EngineKind>,
    /// Shard count for the sharded engine: `None` when the flag was
    /// not passed (keep the binary's config default), `Some(0)` for an
    /// explicit auto partition, `Some(n)` for a fixed count.
    pub shards: Option<usize>,
    /// Network fault profile (default lossless).
    pub profile: NetworkProfile,
    /// Adversary preset (default none).
    pub adversary: AdversaryMix,
    /// Output path for report files (binaries define their default).
    pub out: Option<String>,
    /// Directory report files are resolved under (default: the current
    /// directory). Created if missing.
    pub out_dir: Option<String>,
    /// `perf_suite` session mode: checkpoint cadence in rounds.
    pub checkpoint_every: Option<usize>,
    /// `perf_suite` session mode: resume from this store directory.
    pub resume: Option<String>,
    /// `perf_suite`: run the snapshot-overhead gate instead of the
    /// measurement suite.
    pub checkpoint_overhead: bool,
    /// `perf_suite` thread-scaling mode: the thread counts to sweep
    /// (ascending, deduplicated). `None` when `--threads` was not
    /// passed.
    pub threads: Option<Vec<usize>>,
    /// `perf_suite` serving mode: measure sustained queries/s against a
    /// live `dg-serve` server instead of the round-loop suite.
    pub serve: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            full: false,
            scale: false,
            skewed: false,
            nodes: None,
            activity: None,
            zipf: None,
            seed: 42,
            json: false,
            engine: None,
            shards: None,
            profile: NetworkProfile::lossless(),
            adversary: AdversaryMix::none(),
            out: None,
            out_dir: None,
            checkpoint_every: None,
            resume: None,
            checkpoint_overhead: false,
            threads: None,
            serve: false,
        }
    }
}

impl Cli {
    /// Parse from `std::env::args`. Unknown flags abort with a usage
    /// message (better than silently ignoring a typo in an experiment
    /// run).
    pub fn parse() -> Self {
        let mut cli = Cli::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => cli.full = true,
                "--scale" => cli.scale = true,
                "--skewed" => cli.skewed = true,
                "--json" => cli.json = true,
                "--nodes" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| usage("--nodes needs a positive node count"));
                    cli.nodes = Some(v);
                }
                "--activity" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|f: &f64| f.is_finite() && *f >= 0.0)
                        .unwrap_or_else(|| usage("--activity needs a fraction in [0, 1]"));
                    cli.activity = Some(v);
                }
                "--zipf" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|f: &f64| f.is_finite() && *f >= 0.0)
                        .unwrap_or_else(|| usage("--zipf needs a non-negative exponent"));
                    cli.zipf = Some(v);
                }
                "--seed" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a u64 value"));
                    cli.seed = v;
                }
                "--engine" => {
                    let v = args
                        .next()
                        .as_deref()
                        .and_then(EngineKind::parse)
                        .unwrap_or_else(|| {
                            usage(
                                "--engine needs `sequential`, `parallel`, `sharded` or \
                                 `incremental`",
                            )
                        });
                    cli.engine = Some(v);
                }
                "--shards" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--shards needs a usize value (0 = auto)"));
                    cli.shards = Some(v);
                }
                "--profile" => {
                    let v = args
                        .next()
                        .as_deref()
                        .and_then(NetworkProfile::parse)
                        .unwrap_or_else(|| {
                            usage("--profile needs one of: lossless, lossy, partitioned, churning")
                        });
                    cli.profile = v;
                }
                "--adversary" => {
                    let v = args
                        .next()
                        .as_deref()
                        .and_then(AdversaryMix::parse)
                        .unwrap_or_else(|| {
                            usage(
                                "--adversary needs one of: none, sybil, collusion, slander, \
                                 whitewash, stealth (with optional key=value overrides)",
                            )
                        });
                    cli.adversary = v;
                }
                "--out" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--out needs a file path"));
                    cli.out = Some(v);
                }
                "--out-dir" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--out-dir needs a directory path"));
                    cli.out_dir = Some(v);
                }
                "--checkpoint-every" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| {
                            usage("--checkpoint-every needs a positive round count")
                        });
                    cli.checkpoint_every = Some(v);
                }
                "--resume" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--resume needs a store directory"));
                    cli.resume = Some(v);
                }
                "--checkpoint-overhead" => cli.checkpoint_overhead = true,
                "--serve" => cli.serve = true,
                "--threads" => {
                    let v = args
                        .next()
                        .map(|s| parse_thread_list(&s))
                        .unwrap_or_else(|| {
                            usage("--threads needs a comma-separated list of positive counts")
                        });
                    cli.threads = Some(v);
                }
                "--help" | "-h" => usage(
                    "
",
                ),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        cli
    }
}

/// Parse a `--threads` list: comma-separated positive counts, returned
/// ascending and deduplicated (a scaling curve needs each point once).
fn parse_thread_list(raw: &str) -> Vec<usize> {
    let mut counts: Vec<usize> = raw
        .split(',')
        .map(|part| match part.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => usage("--threads needs a comma-separated list of positive counts (e.g. 1,2,4)"),
        })
        .collect();
    if counts.is_empty() {
        usage("--threads needs at least one thread count");
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "{msg}\nusage: <bin> [--full] [--scale] [--skewed] [--nodes <usize>] \
         [--activity <f64>] [--zipf <f64>] [--seed <u64>] [--json] \
         [--engine <sequential|parallel|sharded|incremental>] [--shards <usize>] \
         [--profile <lossless|lossy|partitioned|churning>] \
         [--adversary <none|sybil|collusion|slander|whitewash|stealth>] [--out <path>] \
         [--out-dir <dir>] [--checkpoint-every <rounds>] [--resume <dir>] \
         [--checkpoint-overhead] [--threads <list>] [--serve]"
    );
    std::process::exit(2)
}

/// Resolve a report file name under the CLI's `--out-dir` (creating the
/// directory if needed). `name` is `--out` when given, else the
/// binary's default; without `--out-dir` it is returned as-is.
pub fn resolve_out_path(out_dir: Option<&str>, name: &str) -> String {
    match out_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create --out-dir {dir}: {e}");
                std::process::exit(2);
            }
            std::path::Path::new(dir)
                .join(name)
                .to_string_lossy()
                .into_owned()
        }
        None => name.to_string(),
    }
}

/// The paper's tolerance grid (Figs. 3/4, Table 2).
pub const XI_GRID: [f64; 4] = [1e-2, 1e-3, 1e-4, 1e-5];

/// Network sizes: scaled-down default vs the paper's full grid
/// (100 … 50 000).
pub fn size_grid(full: bool) -> Vec<usize> {
    if full {
        vec![100, 500, 1000, 10_000, 50_000]
    } else {
        vec![100, 500, 1000, 5000]
    }
}
