//! The paper-claims gate: the pinned-seed adversarial attack matrix.
//!
//! The paper's central robustness claim is that gossip-based trust
//! aggregation *bounds* what free riders and manipulators can extract.
//! The `claims` binary makes that claim executable: for every attack in
//! the matrix (honest baseline, sybil rings, collusion cliques,
//! slander, whitewashing, stealth cartels) it runs the full reputation
//! lifecycle on a pinned seed, once with the paper's plain aggregation
//! and once with the trust-side countermeasures
//! ([`DefensePolicy::defended`]), plus a byzantine run of the real peer
//! deployment over the faulty transport. The stealth row is special:
//! it first *proves the evasion* — the cartel beats clamp + trim on the
//! defended run — and then gates the stochastic-audit countermeasure
//! ([`dg_trust::audit`]) on detection rate, false positives and audit
//! bandwidth.
//! Each attack emits a `CLAIMS_<attack>.json` report, and the binary
//! exits non-zero when any documented bound is violated — the CI gate.
//!
//! Everything is deterministic per seed, so the bounds are exact
//! repro thresholds, not statistical hopes. The default thresholds are
//! in [`ClaimThresholds::default`]; CI can override any of them with
//! repeated `--bound key=value` flags (see [`ClaimThresholds::apply`]).

use dg_core::behavior::Behavior;
use dg_gossip::{AdversaryMix, GossipPair, NetworkProfile};
use dg_graph::NodeId;
use dg_p2p::{run_distributed, DistributedConfig};
use dg_sim::rounds::{DefensePolicy, RoundStats, RoundsConfig, RoundsSimulator};
use dg_sim::scenario::{Scenario, ScenarioConfig};
use dg_trust::audit::AuditPolicy;
use serde::{Deserialize, Serialize};

/// Network size of the lifecycle matrix runs.
pub const MATRIX_NODES: usize = 250;
/// Lifecycle rounds per matrix run.
pub const MATRIX_ROUNDS: usize = 8;
/// Lifecycle rounds of the stealth-cartel arm: long enough for the
/// stochastic audits (rate × rounds samples per node) to reach the
/// documented detection rate, and for the post-conviction rounds to
/// pull honest reputations back inside the deviation bound.
pub const STEALTH_ROUNDS: usize = 200;
/// Network size of the byzantine distributed check.
pub const BYZANTINE_NODES: usize = 120;

/// The documented bounds the matrix gates on. All comparisons are on
/// the *defended* run (the open run is reported for contrast), except
/// the free-rider bound, which is the paper's baseline claim and must
/// hold without any defense.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClaimThresholds {
    /// Honest requesters keep at least this service rate under every
    /// attack (defended run, last round).
    pub honest_service_min: f64,
    /// Plain free riders are throttled to at most this service rate in
    /// the honest baseline (no defense needed — the paper's core claim).
    pub free_rider_service_max: f64,
    /// Leech-class adversaries that cannot fake a support base
    /// (whitewashers) extract at most this service rate under the
    /// defense's zero-prior rule.
    pub adversary_service_max: f64,
    /// Honest subjects' mean reputation moves by at most this (absolute)
    /// between the defended attack run and the defended no-attack
    /// reference — the executable Eq. (18): attacks must not move
    /// honest reputations.
    pub deviation_max: f64,
    /// Adversaries' mean reputation exceeds the honest mean by at most
    /// this under the defense (ballot-stuffing / ring-vouching bounded).
    pub inflation_max: f64,
    /// Sybil identities get no *preferential* service: their defended
    /// service rate is at most the honest rate plus this slack. (A ring
    /// that vouches for itself can reach ordinary membership — the
    /// claim is it cannot do better.)
    pub preferential_service_slack: f64,
    /// Absolute mass-conservation slack of the byzantine distributed
    /// run: `|Σ final − (Σ initial − lost + duplicated)|`.
    pub mass_tolerance: f64,
    /// Slack on the byzantine bias bound
    /// `|distorted mean − honest mean| ≤ fraction × (1 − honest mean)`.
    pub byzantine_bias_slack: f64,
    /// The audit countermeasure must convict at least this fraction of
    /// the stealth cartel by the end of the stealth arm.
    pub detection_min: f64,
    /// At most this many honest nodes may be convicted by audits
    /// (structurally zero: honest reports re-verify bit-exactly).
    pub false_positive_max: f64,
    /// Audit bandwidth (probe + re-verified entries) over the whole run
    /// stays within this fraction of the run's total report traffic.
    pub audit_overhead_max: f64,
}

impl Default for ClaimThresholds {
    fn default() -> Self {
        Self {
            honest_service_min: 0.9,
            free_rider_service_max: 0.2,
            adversary_service_max: 0.35,
            deviation_max: 0.1,
            inflation_max: 0.25,
            preferential_service_slack: 0.05,
            mass_tolerance: 1e-9,
            byzantine_bias_slack: 1e-9,
            detection_min: 0.95,
            false_positive_max: 0.0,
            audit_overhead_max: 0.03,
        }
    }
}

impl ClaimThresholds {
    /// Apply one `key=value` override (the `--bound` flag).
    pub fn apply(&mut self, spec: &str) -> Result<(), String> {
        let (key, value) = spec
            .split_once('=')
            .ok_or_else(|| format!("bound `{spec}` is not of the form key=value"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("bound `{spec}`: `{value}` is not a number"))?;
        if !value.is_finite() || value < 0.0 {
            return Err(format!("bound `{spec}`: must be finite and non-negative"));
        }
        let slot = match key.trim() {
            "honest_service_min" => &mut self.honest_service_min,
            "free_rider_service_max" => &mut self.free_rider_service_max,
            "adversary_service_max" => &mut self.adversary_service_max,
            "deviation_max" => &mut self.deviation_max,
            "inflation_max" => &mut self.inflation_max,
            "preferential_service_slack" => &mut self.preferential_service_slack,
            "mass_tolerance" => &mut self.mass_tolerance,
            "byzantine_bias_slack" => &mut self.byzantine_bias_slack,
            "detection_min" => &mut self.detection_min,
            "false_positive_max" => &mut self.false_positive_max,
            "audit_overhead_max" => &mut self.audit_overhead_max,
            other => return Err(format!("unknown bound `{other}`")),
        };
        *slot = value;
        Ok(())
    }
}

/// One lifecycle run's headline metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleMetrics {
    /// Last-round honest service rate.
    pub honest_service_rate: f64,
    /// Last-round plain free-rider service rate.
    pub free_rider_service_rate: f64,
    /// Last-round adversary service rate.
    pub adversary_service_rate: f64,
    /// Last-round mean aggregated reputation of honest nodes.
    pub mean_rep_honest: f64,
    /// Last-round mean aggregated reputation of adversaries.
    pub mean_rep_adversaries: f64,
    /// Diagnostic: honest subjects' mean |reputation − latent quality|
    /// (carries Eq. (6)'s systematic observer deflation; compare
    /// `honest_deviation` between runs for the attack effect).
    pub honest_residual_error: Option<f64>,
    /// Honest subjects' mean |reputation − same subject's reputation in
    /// the no-attack reference run under the same defense| — what the
    /// attack actually moved. `None` for the reference itself.
    pub honest_deviation: Option<f64>,
    /// Total whitewash identity resets over the run.
    pub washes: u64,
}

/// A finished lifecycle run with everything cross-run comparisons need.
pub struct LifecycleRun {
    stats: Vec<RoundStats>,
    residual: Option<f64>,
    /// Per-subject mean reputation at the end of the run.
    means: Vec<Option<f64>>,
    /// Per-subject mean reputation over *honest* observers only (no
    /// adversary roles, no convicted auditees).
    honest_means: Vec<Option<f64>>,
    /// Subjects that are honest contributors (and no adversary role).
    honest_mask: Vec<bool>,
    /// Nodes holding any adversary role.
    adversary_mask: Vec<bool>,
    /// Audit convictions: `(node, round convicted)`.
    convicted: Vec<(NodeId, u64)>,
}

impl LifecycleRun {
    /// Mean absolute reputation movement of honest subjects relative to
    /// a reference run (subjects aggregated in both runs only).
    pub fn deviation_from(&self, reference: &LifecycleRun) -> Option<f64> {
        let (mut acc, mut count) = (0.0, 0usize);
        for (i, &honest) in self.honest_mask.iter().enumerate() {
            if !honest {
                continue;
            }
            if let (Some(a), Some(r)) = (self.means[i], reference.means[i]) {
                acc += (a - r).abs();
                count += 1;
            }
        }
        (count > 0).then(|| acc / count as f64)
    }

    /// [`Self::deviation_from`] restricted to honest observers — the
    /// stealth arm's metric. A 45 % cartel owns nearly half the views in
    /// the plain mean, and its members rate each *other* 0.4 above
    /// honest level while slandering outsiders; the two biases partially
    /// cancel in an all-observer average and mask the damage the honest
    /// network actually experiences. Reputations only matter to the
    /// nodes that act on them, so the evasion claim is measured through
    /// honest eyes.
    pub fn honest_deviation_from(&self, reference: &LifecycleRun) -> Option<f64> {
        let (mut acc, mut count) = (0.0, 0usize);
        for (i, &honest) in self.honest_mask.iter().enumerate() {
            if !honest {
                continue;
            }
            if let (Some(a), Some(r)) = (self.honest_means[i], reference.honest_means[i]) {
                acc += (a - r).abs();
                count += 1;
            }
        }
        (count > 0).then(|| acc / count as f64)
    }

    fn metrics(&self, deviation: Option<f64>) -> LifecycleMetrics {
        let last = self.stats.last().expect("at least one round");
        LifecycleMetrics {
            honest_service_rate: last.honest_service_rate(),
            free_rider_service_rate: last.free_rider_service_rate(),
            adversary_service_rate: last.adversary_service_rate(),
            mean_rep_honest: last.mean_rep_honest,
            mean_rep_adversaries: last.mean_rep_adversaries,
            honest_residual_error: self.residual,
            honest_deviation: deviation,
            washes: self.stats.iter().map(|s| s.washes).sum(),
        }
    }
}

/// The byzantine distributed check: the real peer runtime over the
/// lossy transport with input-falsifying adversaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ByzantineCheck {
    /// Byzantine peer fraction (the mix's total adversary fraction).
    pub fraction: f64,
    /// Whether the run converged before the round cap.
    pub converged: bool,
    /// Rounds executed.
    pub rounds: usize,
    /// `|Σ final − (Σ initial − lost + duplicated)|` — exact mass
    /// accounting under both faults and byzantine inputs.
    pub mass_error: f64,
    /// The honest inputs' true mean.
    pub honest_mean: f64,
    /// The mean the falsified inputs actually average to.
    pub distorted_mean: f64,
    /// `|distorted − honest|`, the bias the attack achieved.
    pub measured_bias: f64,
    /// The documented worst-case bound
    /// `fraction × (1 − min honest input)` — sound for every seed, not
    /// just ones whose byzantine subset has average values.
    pub bias_bound: f64,
}

/// The stealth arm's audit-countermeasure metrics: what the seeded
/// stochastic audits ([`dg_trust::audit`]) achieved against a cartel
/// that provably evades the clamp + trim defense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StealthAudit {
    /// Stealth cartel members in the run.
    pub cartel_members: usize,
    /// Cartel members convicted (k strikes) by the end of the run.
    pub detected: usize,
    /// `detected / cartel_members`.
    pub detection_rate: f64,
    /// Honest nodes convicted (must be zero: an honest node's log
    /// re-verifies bit-exactly, so audits cannot strike it).
    pub false_positives: usize,
    /// Mean 1-based round at which detected members were convicted.
    pub mean_rounds_to_detection: Option<f64>,
    /// Run-total audit bandwidth as a fraction of run-total report
    /// traffic — the gated bandwidth claim. Totals, not a worst round:
    /// convictions purge the cartel's reports, so late rounds carry a
    /// fraction of the original traffic and a per-round ratio there
    /// measures the denominator's collapse, not the audits' cost.
    pub audit_overhead: f64,
    /// Worst single-round audit bandwidth fraction (diagnostic).
    pub max_audit_overhead: f64,
    /// Honest deviation of the defended run *without* audits — the
    /// evasion proof: this must exceed `deviation_max`, or the cartel
    /// never beat the defense and the countermeasure claim is vacuous.
    pub evasion_deviation: Option<f64>,
}

/// One violated bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Which bound.
    pub bound: String,
    /// The configured limit.
    pub limit: f64,
    /// The measured value.
    pub value: f64,
}

/// The full `CLAIMS_<attack>.json` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Attack label (`none` / `sybil` / `collusion` / `slander` /
    /// `whitewash` / `stealth`).
    pub attack: String,
    /// Scenario seed.
    pub seed: u64,
    /// Lifecycle network size.
    pub nodes: usize,
    /// Lifecycle rounds.
    pub rounds: usize,
    /// The adversary mix that ran.
    pub mix: AdversaryMix,
    /// Metrics with the paper's plain aggregation. For the `stealth`
    /// attack this slot holds the *defended-without-audits* run — the
    /// baseline the cartel evades.
    pub open: LifecycleMetrics,
    /// Metrics with [`DefensePolicy::defended`]. For the `stealth`
    /// attack the defense additionally runs [`AuditPolicy::standard`].
    pub defended: LifecycleMetrics,
    /// The distributed byzantine check.
    pub byzantine: ByzantineCheck,
    /// For the honest baseline only: whether a zero-fraction mix with
    /// non-default structural knobs replayed bit-identically.
    pub zero_mix_bit_identical: Option<bool>,
    /// For the stealth attack only: the audit-countermeasure metrics.
    #[serde(default)]
    pub stealth: Option<StealthAudit>,
    /// Violated bounds (empty = this attack's claims hold).
    pub violations: Vec<Violation>,
}

fn scenario_config(seed: u64, mix: AdversaryMix) -> ScenarioConfig {
    ScenarioConfig {
        nodes: MATRIX_NODES,
        seed,
        free_rider_fraction: 0.1,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    }
    .with_adversary(mix)
}

fn run_lifecycle(
    config: ScenarioConfig,
    defense: DefensePolicy,
    rounds: usize,
    audit: AuditPolicy,
) -> Result<LifecycleRun, Box<dyn std::error::Error>> {
    let scenario = Scenario::build(config)?;
    let mut sim = RoundsSimulator::new(
        &scenario,
        RoundsConfig {
            rounds,
            ..RoundsConfig::default()
        }
        .with_defense(defense)
        .with_audit(audit),
    );
    let mut rng = scenario.gossip_rng(2);
    let stats = sim.run(&mut rng)?;
    let residual = sim.honest_residual_error();
    let convicted = sim.convicted();
    // Subject means over the *operational* observers. Conviction resets
    // an auditee's identity, leaving it the zero-prior newcomer view of
    // everyone — counting those husks as observers would read as a
    // uniform deflation of every honest subject, drowning the signal the
    // deviation comparison is after. With no convictions this is exactly
    // [`RoundsSimulator::subject_mean_reputations`].
    let n = scenario.graph.node_count();
    let convicted_mask = {
        let mut mask = vec![false; n];
        for &(node, _) in &convicted {
            mask[node.index()] = true;
        }
        mask
    };
    let subject_means = |excluded: &dyn Fn(usize) -> bool| -> Vec<Option<f64>> {
        (0..n)
            .map(|s| {
                let (mut acc, mut count) = (0.0, 0usize);
                for o in 0..n {
                    if excluded(o) {
                        continue;
                    }
                    if let Some(v) = sim.aggregated(NodeId(o as u32), NodeId(s as u32)) {
                        acc += v;
                        count += 1;
                    }
                }
                (count > 0).then(|| acc / count as f64)
            })
            .collect()
    };
    let means = subject_means(&|o| convicted_mask[o]);
    let honest_means = subject_means(&|o| {
        convicted_mask[o] || scenario.adversaries.is_adversary(NodeId(o as u32))
    });
    let honest_mask = scenario
        .graph
        .nodes()
        .map(|v| {
            !scenario.adversaries.is_adversary(v)
                && matches!(scenario.population.behavior(v), Behavior::Honest { .. })
        })
        .collect();
    let adversary_mask = scenario
        .graph
        .nodes()
        .map(|v| scenario.adversaries.is_adversary(v))
        .collect();
    Ok(LifecycleRun {
        stats,
        residual,
        means,
        honest_means,
        honest_mask,
        adversary_mask,
        convicted,
    })
}

/// The defended and undefended no-attack reference runs every attack's
/// deviation is measured against.
pub struct Reference {
    open: LifecycleRun,
    defended: LifecycleRun,
    /// No-attack defended run at [`STEALTH_ROUNDS`]: the stealth arm's
    /// deviations need a reference of the same length.
    stealth_defended: LifecycleRun,
}

/// Build the reference runs for a seed.
pub fn reference(seed: u64) -> Result<Reference, Box<dyn std::error::Error>> {
    let config = scenario_config(seed, AdversaryMix::none());
    Ok(Reference {
        open: run_lifecycle(
            config,
            DefensePolicy::none(),
            MATRIX_ROUNDS,
            AuditPolicy::off(),
        )?,
        defended: run_lifecycle(
            config,
            DefensePolicy::defended(),
            MATRIX_ROUNDS,
            AuditPolicy::off(),
        )?,
        stealth_defended: run_lifecycle(
            config,
            DefensePolicy::defended(),
            STEALTH_ROUNDS,
            AuditPolicy::off(),
        )?,
    })
}

fn byzantine_check(
    seed: u64,
    mix: AdversaryMix,
) -> Result<ByzantineCheck, Box<dyn std::error::Error>> {
    // The real peer deployment over the lossy transport: byzantine
    // peers falsify their inputs, the network loses (and recredits)
    // shares, and the mass ledger must still close exactly.
    let substrate = Scenario::build(ScenarioConfig {
        nodes: BYZANTINE_NODES,
        seed,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    })?;
    let values = substrate.population.latent_qualities();
    let honest_mean = values.iter().sum::<f64>() / values.len() as f64;
    let initial: Vec<GossipPair> = values.iter().map(|&v| GossipPair::originator(v)).collect();
    let config = DistributedConfig {
        xi: 1e-4,
        seed,
        max_rounds: 5_000,
        profile: NetworkProfile::lossy(),
        adversary: mix,
        ..DistributedConfig::default()
    };
    let runtime = tokio::runtime::Builder::new_multi_thread().build()?;
    let out = runtime.block_on(run_distributed(&substrate.graph, config, initial))?;

    let expected = out.ledger.expected_total(out.initial_total);
    let actual = out.total_pair();
    let mass_error = (actual.value - expected.value)
        .abs()
        .max((actual.weight - expected.weight).abs());
    let distorted_mean = out.initial_total.value / out.initial_total.weight;
    // The sound worst-case bound: each byzantine peer shifts the mean by
    // at most `(1 − its value)/n ≤ (1 − worst input)/n`, regardless of
    // which peers the seed happened to select. (A mean-based bound would
    // fail for any seed whose byzantine subset has below-average values.)
    let worst_input = values.iter().copied().fold(f64::INFINITY, f64::min);
    Ok(ByzantineCheck {
        fraction: mix.adversary_fraction(),
        converged: out.converged,
        rounds: out.rounds,
        mass_error,
        honest_mean,
        distorted_mean,
        measured_bias: (distorted_mean - honest_mean).abs(),
        bias_bound: mix.adversary_fraction() * (1.0 - worst_input),
    })
}

/// The pinned attack matrix.
pub fn attack_matrix() -> Vec<(&'static str, AdversaryMix)> {
    vec![
        ("none", AdversaryMix::none()),
        ("sybil", AdversaryMix::sybil()),
        ("collusion", AdversaryMix::collusion()),
        ("slander", AdversaryMix::slander()),
        ("whitewash", AdversaryMix::whitewash()),
        ("stealth", AdversaryMix::stealth()),
    ]
}

fn check(violations: &mut Vec<Violation>, bound: &str, limit: f64, value: f64, ok: bool) {
    if !ok {
        violations.push(Violation {
            bound: bound.to_owned(),
            limit,
            value,
        });
    }
}

/// Run one attack through the lifecycle (open + defended) and the
/// byzantine distributed check, and gate it against the thresholds.
/// `reference` supplies the no-attack runs deviations are measured
/// against.
pub fn run_attack(
    attack: &str,
    mix: AdversaryMix,
    seed: u64,
    thresholds: &ClaimThresholds,
    reference: &Reference,
) -> Result<AttackReport, Box<dyn std::error::Error>> {
    let config = scenario_config(seed, mix);
    let is_stealth = attack == "stealth";
    // The `none` row IS the reference — reuse its runs instead of
    // repeating the identical 250-node lifecycles. The stealth row runs
    // the *defended* lifecycle twice over the long horizon: once without
    // audits (the evasion proof) and once with them (the countermeasure).
    let attack_runs = if mix.is_none() {
        None
    } else if is_stealth {
        Some((
            run_lifecycle(
                config,
                DefensePolicy::defended(),
                STEALTH_ROUNDS,
                AuditPolicy::off(),
            )?,
            run_lifecycle(
                config,
                DefensePolicy::defended(),
                STEALTH_ROUNDS,
                AuditPolicy::standard(),
            )?,
        ))
    } else {
        Some((
            run_lifecycle(
                config,
                DefensePolicy::none(),
                MATRIX_ROUNDS,
                AuditPolicy::off(),
            )?,
            run_lifecycle(
                config,
                DefensePolicy::defended(),
                MATRIX_ROUNDS,
                AuditPolicy::off(),
            )?,
        ))
    };
    let (open_run, defended_run) = match &attack_runs {
        Some((open, defended)) => (open, defended),
        None => (&reference.open, &reference.defended),
    };
    let (open_dev, defended_dev) = if mix.is_none() {
        (None, None)
    } else if is_stealth {
        (
            open_run.honest_deviation_from(&reference.stealth_defended),
            defended_run.honest_deviation_from(&reference.stealth_defended),
        )
    } else {
        (
            open_run.deviation_from(&reference.open),
            defended_run.deviation_from(&reference.defended),
        )
    };
    let open = open_run.metrics(open_dev);
    let defended = defended_run.metrics(defended_dev);
    let byzantine = byzantine_check(seed, mix)?;

    let stealth = is_stealth.then(|| {
        let audit_run = defended_run;
        let cartel_members = audit_run.adversary_mask.iter().filter(|&&a| a).count();
        let mut detected = 0usize;
        let mut false_positives = 0usize;
        let mut round_sum = 0.0;
        for &(node, round) in &audit_run.convicted {
            if audit_run.adversary_mask[node.index()] {
                detected += 1;
                round_sum += round as f64 + 1.0;
            } else {
                false_positives += 1;
            }
        }
        StealthAudit {
            cartel_members,
            detected,
            detection_rate: if cartel_members == 0 {
                0.0
            } else {
                detected as f64 / cartel_members as f64
            },
            false_positives,
            mean_rounds_to_detection: (detected > 0).then(|| round_sum / detected as f64),
            audit_overhead: {
                let audit: u64 = audit_run.stats.iter().map(|s| s.audit_entries).sum();
                let report: u64 = audit_run.stats.iter().map(|s| s.report_entries).sum();
                if report == 0 {
                    0.0
                } else {
                    audit as f64 / report as f64
                }
            },
            max_audit_overhead: audit_run
                .stats
                .iter()
                .map(RoundStats::audit_overhead)
                .fold(0.0, f64::max),
            evasion_deviation: open_dev,
        }
    });

    // The zero-adversary bit-identity pin: a mix with all fractions at
    // zero but non-default structural knobs must replay the honest
    // baseline exactly.
    let zero_mix_bit_identical = if mix.is_none() {
        let knobbed = AdversaryMix {
            sybil_ring: 3,
            sybil_spawn_rate: 0.5,
            collusion_clique: 7,
            slander_factor: 0.9,
            wash_threshold: 0.8,
            ..AdversaryMix::none()
        };
        let replay = run_lifecycle(
            scenario_config(seed, knobbed),
            DefensePolicy::none(),
            MATRIX_ROUNDS,
            AuditPolicy::off(),
        )?;
        Some(replay.stats == open_run.stats && replay.means == open_run.means)
    } else {
        None
    };

    let t = thresholds;
    let mut violations = Vec::new();
    check(
        &mut violations,
        "honest_service_min",
        t.honest_service_min,
        defended.honest_service_rate,
        defended.honest_service_rate >= t.honest_service_min,
    );
    if let Some(deviation) = defended.honest_deviation {
        check(
            &mut violations,
            "deviation_max",
            t.deviation_max,
            deviation,
            deviation <= t.deviation_max,
        );
    }
    check(
        &mut violations,
        "mass_tolerance",
        t.mass_tolerance,
        byzantine.mass_error,
        byzantine.mass_error <= t.mass_tolerance,
    );
    check(
        &mut violations,
        "byzantine_bias_slack",
        byzantine.bias_bound + t.byzantine_bias_slack,
        byzantine.measured_bias,
        byzantine.measured_bias <= byzantine.bias_bound + t.byzantine_bias_slack,
    );
    match attack {
        "none" => {
            check(
                &mut violations,
                "free_rider_service_max",
                t.free_rider_service_max,
                open.free_rider_service_rate,
                open.free_rider_service_rate <= t.free_rider_service_max,
            );
            check(
                &mut violations,
                "zero_mix_bit_identical",
                1.0,
                if zero_mix_bit_identical == Some(true) {
                    1.0
                } else {
                    0.0
                },
                zero_mix_bit_identical == Some(true),
            );
        }
        "sybil" => {
            // A self-vouching ring can reach ordinary membership; the
            // bound is that it gains nothing *beyond* it, in service or
            // in rank.
            check(
                &mut violations,
                "preferential_service_slack",
                defended.honest_service_rate + t.preferential_service_slack,
                defended.adversary_service_rate,
                defended.adversary_service_rate
                    <= defended.honest_service_rate + t.preferential_service_slack,
            );
            let inflation = defended.mean_rep_adversaries - defended.mean_rep_honest;
            check(
                &mut violations,
                "inflation_max",
                t.inflation_max,
                inflation,
                inflation <= t.inflation_max,
            );
        }
        "whitewash" => {
            check(
                &mut violations,
                "adversary_service_max",
                t.adversary_service_max,
                defended.adversary_service_rate,
                defended.adversary_service_rate <= t.adversary_service_max,
            );
            // The attack must actually have been exercised.
            check(
                &mut violations,
                "washes_exercised",
                1.0,
                open.washes as f64,
                open.washes >= 1,
            );
        }
        "collusion" => {
            let inflation = defended.mean_rep_adversaries - defended.mean_rep_honest;
            check(
                &mut violations,
                "inflation_max",
                t.inflation_max,
                inflation,
                inflation <= t.inflation_max,
            );
        }
        "stealth" => {
            let s = stealth.as_ref().expect("stealth arm computes its audit");
            // The evasion proof: *without* audits the cartel must push
            // honest reputations past the deviation bound, or the
            // countermeasure has nothing to counter. Note the inverted
            // sense — staying under the limit is the violation here.
            let evasion = s.evasion_deviation.unwrap_or(0.0);
            check(
                &mut violations,
                "stealth_evasion_proven",
                t.deviation_max,
                evasion,
                evasion > t.deviation_max,
            );
            check(
                &mut violations,
                "detection_min",
                t.detection_min,
                s.detection_rate,
                s.detection_rate >= t.detection_min,
            );
            check(
                &mut violations,
                "false_positive_max",
                t.false_positive_max,
                s.false_positives as f64,
                (s.false_positives as f64) <= t.false_positive_max,
            );
            check(
                &mut violations,
                "audit_overhead_max",
                t.audit_overhead_max,
                s.audit_overhead,
                s.audit_overhead <= t.audit_overhead_max,
            );
        }
        _ => {}
    }

    Ok(AttackReport {
        attack: attack.to_owned(),
        seed,
        nodes: MATRIX_NODES,
        rounds: if is_stealth {
            STEALTH_ROUNDS
        } else {
            MATRIX_ROUNDS
        },
        mix,
        open,
        defended,
        byzantine,
        zero_mix_bit_identical,
        stealth,
        violations,
    })
}

/// Run the whole matrix; returns every report (pass and fail alike).
pub fn run_matrix(
    seed: u64,
    thresholds: &ClaimThresholds,
) -> Result<Vec<AttackReport>, Box<dyn std::error::Error>> {
    let reference = reference(seed)?;
    attack_matrix()
        .into_iter()
        .map(|(attack, mix)| run_attack(attack, mix, seed, thresholds, &reference))
        .collect()
}

/// The `claims` binary's entry point.
pub fn claims_main() -> Result<(), Box<dyn std::error::Error>> {
    let mut seed = 42u64;
    let mut json = false;
    let mut out_dir = String::from(".");
    let mut thresholds = ClaimThresholds::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a u64 value")?;
            }
            "--json" => json = true,
            "--out-dir" => {
                out_dir = args.next().ok_or("--out-dir needs a path")?;
            }
            "--bound" => {
                let spec = args.next().ok_or("--bound needs key=value")?;
                thresholds.apply(&spec)?;
            }
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: claims [--seed <u64>] [--json] \
                     [--out-dir <path>] [--bound <key>=<value>]..."
                )
                .into())
            }
        }
    }

    eprintln!(
        "claims: attack matrix at N={MATRIX_NODES}, {MATRIX_ROUNDS} rounds, seed {seed} \
         (byzantine check at N={BYZANTINE_NODES} over the lossy transport)"
    );
    let reports = run_matrix(seed, &thresholds)?;
    let mut failed = false;
    eprintln!(
        "  {:<10} {:>8} {:>8} {:>8} {:>9} {:>7} {:>9}  bounds",
        "attack", "honest", "adv", "advDEF", "devDEF", "washes", "byzBias"
    );
    for report in &reports {
        let deviation = report
            .defended
            .honest_deviation
            .map(|d| format!("{d:.4}"))
            .unwrap_or_else(|| "-".into());
        let verdict = if report.violations.is_empty() {
            "ok".to_owned()
        } else {
            failed = true;
            format!(
                "VIOLATED: {}",
                report
                    .violations
                    .iter()
                    .map(|v| format!("{} ({:.4} vs {:.4})", v.bound, v.value, v.limit))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        eprintln!(
            "  {:<10} {:>8.3} {:>8.3} {:>8.3} {:>9} {:>7} {:>9.4}  {}",
            report.attack,
            report.defended.honest_service_rate,
            report.open.adversary_service_rate,
            report.defended.adversary_service_rate,
            deviation,
            report.open.washes,
            report.byzantine.measured_bias,
            verdict,
        );
        let path = format!("{out_dir}/CLAIMS_{}.json", report.attack);
        std::fs::write(&path, serde_json::to_string_pretty(report)?)?;
        if json {
            println!("{}", serde_json::to_string(report)?);
        }
    }
    if failed {
        return Err("claims gate: documented bounds violated (see table above)".into());
    }
    eprintln!("claims gate: all documented bounds hold");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_overrides_parse() {
        let mut t = ClaimThresholds::default();
        t.apply("honest_service_min=0.5").unwrap();
        assert_eq!(t.honest_service_min, 0.5);
        t.apply(" deviation_max = 0.25 ").unwrap(); // whitespace is trimmed
        assert_eq!(t.deviation_max, 0.25);
        t.apply("mass_tolerance=1e-6").unwrap();
        assert_eq!(t.mass_tolerance, 1e-6);
    }

    #[test]
    fn threshold_parsing_rejects_garbage() {
        let mut t = ClaimThresholds::default();
        assert!(t.apply("no_equals_sign").is_err());
        assert!(t.apply("unknown_bound=1.0").is_err());
        assert!(t.apply("deviation_max=abc").is_err());
        assert!(t.apply("deviation_max=-1.0").is_err());
        assert!(t.apply("deviation_max=inf").is_err());
        // Errors leave the thresholds untouched.
        assert_eq!(t, ClaimThresholds::default());
    }

    #[test]
    fn matrix_covers_every_preset_once() {
        let matrix = attack_matrix();
        let labels: Vec<&str> = matrix.iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            vec![
                "none",
                "sybil",
                "collusion",
                "slander",
                "whitewash",
                "stealth"
            ]
        );
        for (label, mix) in &matrix {
            assert_eq!(mix.label(), if *label == "none" { "none" } else { label });
            assert!(mix.validated().is_ok());
        }
    }
}
