//! The serving-throughput harness behind `perf_suite --serve`.
//!
//! Measures **sustained queries per second against a live server** —
//! concurrent pipelined TCP clients hammering the query endpoints while
//! the round engine keeps completing rounds and an ingest client keeps
//! submitting reports — and emits a `BENCH_serve*.json` report.
//! `perf_compare --serve` gates CI by comparing a fresh report against
//! the committed `crates/bench/BENCH_baseline_serve.json` (and, on the
//! million-node scale config, by enforcing the absolute ≥ 100 000
//! queries/s serving floor).
//!
//! The measurement is deliberately end-to-end: every counted query
//! crosses the wire protocol, a connection handler thread and a
//! snapshot load, so a regression anywhere in that path — framing,
//! handler scheduling, snapshot publication — shows up here.

use crate::perf::PerfConfig;
use dg_gossip::EngineKind;
use dg_serve::{Client, Request, Response, ServeOptions, Server};
use dg_sim::{RunConfig, TrafficModel};
use dg_trust::prelude::TransactionOutcome;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Query clients hammering the server during the measurement.
const CLIENTS: usize = 4;
/// Requests each client keeps in flight per batch (pipelining depth —
/// the server flushes once per drained batch, see `dg-serve`).
const PIPELINE: usize = 64;
/// Measurement window.
const WINDOW: Duration = Duration::from_secs(2);
/// The scale config's serving floor: the acceptance bar is ≥ 100k
/// sustained queries/s at N = 1 000 000 with the engine running.
pub const SCALE_MIN_QPS: f64 = 100_000.0;

/// A `BENCH_serve*.json` report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Config name (`smoke` / `scale` / ...).
    pub name: String,
    /// Network size served.
    pub nodes: usize,
    /// Scenario seed.
    pub seed: u64,
    /// The engine that ran rounds during the measurement.
    pub engine: String,
    /// Concurrent query connections.
    pub clients: usize,
    /// Requests in flight per client batch.
    pub pipeline: usize,
    /// Measurement wall time, milliseconds.
    pub wall_ms: f64,
    /// Queries answered inside the window, all clients.
    pub queries_total: u64,
    /// The headline number: sustained queries answered per second with
    /// the engine running. Future PRs must not regress it.
    pub queries_per_sec: f64,
    /// Rounds the engine completed inside the window (must be > 0 —
    /// otherwise the measurement was of an idle server).
    pub rounds_completed: usize,
    /// Ingest submissions attempted by the side channel.
    pub ingest_attempted: u64,
    /// ... of which accepted into a round.
    pub ingest_accepted: u64,
    /// ... of which shed with a typed `Busy` (backpressure working,
    /// not a failure).
    pub ingest_shed: u64,
}

fn serve_run_config(perf: &PerfConfig, seed: u64, engine: EngineKind) -> RunConfig {
    RunConfig::with_nodes(perf.nodes)
        .with_seed(seed)
        .with_engine(engine)
        .with_shards(perf.shards)
        .with_free_riders(0.25)
        .with_quality_range(0.4, 1.0)
        .with_traffic(perf.traffic)
        .with_requests_per_edge(perf.requests_per_edge)
        .with_scope(perf.scope)
}

/// One query client: pipelined batches of reputation lookups with a
/// periodic `top_k` mixed in, until `stop`. Returns queries answered.
fn query_client(
    addr: std::net::SocketAddr,
    id: u64,
    nodes: usize,
    stop: &AtomicBool,
) -> Result<u64, Box<dyn std::error::Error + Send + Sync>> {
    let mut client = Client::connect(addr, id)?;
    let mut answered = 0u64;
    // Subjects stride through the id space so snapshot rows are hit
    // broadly; a cheap LCG keeps the harness dependency-free.
    let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(id + 1);
    while !stop.load(Ordering::Acquire) {
        for i in 0..PIPELINE {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let request = if i % 16 == 15 {
                Request::TopK { k: 16 }
            } else {
                Request::Reputation {
                    subject: (state >> 33) as u32 % nodes as u32,
                }
            };
            client.send(&request)?;
        }
        client.flush()?;
        for _ in 0..PIPELINE {
            match client.recv()? {
                Response::Reputation { .. } | Response::TopK { .. } => answered += 1,
                other => return Err(format!("unexpected response {other:?}").into()),
            }
        }
    }
    Ok(answered)
}

/// The ingest side channel: keeps submitting reports so the measured
/// rounds fold real ingest and backpressure stays exercised. Returns
/// `(attempted, accepted, shed)`.
fn ingest_client(
    addr: std::net::SocketAddr,
    nodes: usize,
    stop: &AtomicBool,
) -> Result<(u64, u64, u64), Box<dyn std::error::Error + Send + Sync>> {
    let mut client = Client::connect(addr, u64::MAX)?;
    let (mut attempted, mut accepted, mut shed) = (0u64, 0u64, 0u64);
    let n = nodes as u32;
    while !stop.load(Ordering::Acquire) {
        let requester = attempted as u32 % n;
        let provider = (requester + 1) % n;
        attempted += 1;
        match client.ingest(
            requester,
            provider,
            TransactionOutcome::Served { quality: 0.8 },
        )? {
            Response::IngestAccepted { .. } => accepted += 1,
            Response::Busy => {
                shed += 1;
                // Busy is the server asking for a pause, not a retry
                // storm invitation.
                std::thread::sleep(Duration::from_millis(1));
            }
            other => return Err(format!("unexpected response {other:?}").into()),
        }
    }
    Ok((attempted, accepted, shed))
}

/// Run the serving measurement on `perf`: start the server, keep the
/// engine completing rounds on this thread, and count the queries the
/// client fleet gets answered inside the window.
pub fn run_serve(
    perf: &PerfConfig,
    seed: u64,
    engine: EngineKind,
) -> Result<ServeReport, Box<dyn std::error::Error>> {
    let config = serve_run_config(perf, seed, engine);
    let mut server =
        Server::start(config, ServeOptions::default()).map_err(|e| format!("server start: {e}"))?;
    let addr = server.local_addr();
    let stop = AtomicBool::new(false);

    let (queries_total, rounds_completed, ingest, wall) =
        std::thread::scope(|s| -> Result<_, Box<dyn std::error::Error>> {
            let clients: Vec<_> = (0..CLIENTS)
                .map(|id| {
                    let stop = &stop;
                    s.spawn(move || query_client(addr, id as u64, perf.nodes, stop))
                })
                .collect();
            let ingester = {
                let stop = &stop;
                s.spawn(move || ingest_client(addr, perf.nodes, stop))
            };

            // Drive rounds back-to-back until the window closes: the
            // headline queries/s number is measured *with the engine
            // running*, never against an idle snapshot.
            let start = Instant::now();
            let mut rounds_completed = 0usize;
            while start.elapsed() < WINDOW {
                server.run_round().map_err(|e| format!("round: {e}"))?;
                rounds_completed += 1;
            }
            stop.store(true, Ordering::Release);
            let wall = start.elapsed();

            let mut queries_total = 0u64;
            for client in clients {
                queries_total += client
                    .join()
                    .expect("query client thread")
                    .map_err(|e| format!("query client: {e}"))?;
            }
            let ingest = ingester
                .join()
                .expect("ingest client thread")
                .map_err(|e| format!("ingest client: {e}"))?;
            Ok((queries_total, rounds_completed, ingest, wall))
        })?;

    let wall_s = wall.as_secs_f64().max(1e-9);
    Ok(ServeReport {
        name: perf.name.to_owned(),
        nodes: perf.nodes,
        seed,
        engine: engine.label().to_owned(),
        clients: CLIENTS,
        pipeline: PIPELINE,
        wall_ms: wall_s * 1e3,
        queries_total,
        queries_per_sec: queries_total as f64 / wall_s,
        rounds_completed,
        ingest_attempted: ingest.0,
        ingest_accepted: ingest.1,
        ingest_shed: ingest.2,
    })
}

/// `perf_suite --serve` entry point: measure, print, write the report.
pub fn serve_main(cli: &crate::Cli) -> Result<(), Box<dyn std::error::Error>> {
    let mut perf = crate::perf::select_config(cli);
    if cli.scale && perf.traffic.activity_fraction >= 1.0 {
        // Full traffic at N = 1e6 makes rounds minutes long; the serve
        // measurement wants the engine *running*, which means rounds
        // completing inside the window — thin the traffic the way a
        // realistic serving deployment is loaded.
        perf.traffic = TrafficModel::full().with_activity(0.01).with_zipf(1.0);
    }
    let engine = cli.engine.unwrap_or(EngineKind::Parallel);
    eprintln!(
        "perf_suite --serve: {} ({} nodes, seed {}, engine {}, {} clients x {} pipelined)",
        perf.name,
        perf.nodes,
        cli.seed,
        engine.label(),
        CLIENTS,
        PIPELINE,
    );
    let report = run_serve(&perf, cli.seed, engine)?;
    eprintln!(
        "  {:>12.0} queries/s sustained ({} queries in {:.1} ms, {} rounds completed)",
        report.queries_per_sec, report.queries_total, report.wall_ms, report.rounds_completed,
    );
    eprintln!(
        "  ingest: {} attempted, {} accepted, {} shed (Busy)",
        report.ingest_attempted, report.ingest_accepted, report.ingest_shed,
    );
    let default_name = format!(
        "BENCH_serve{}.json",
        if report.name == "smoke" {
            String::new()
        } else {
            format!("_{}", report.name)
        }
    );
    let name = cli.out.clone().unwrap_or(default_name);
    let path = crate::resolve_out_path(cli.out_dir.as_deref(), &name);
    std::fs::write(&path, serde_json::to_string_pretty(&report)?)?;
    eprintln!("wrote {path}");
    if cli.json {
        println!("{}", serde_json::to_string(&report)?);
    }
    Ok(())
}

/// The `perf_compare --serve` gate: relative regression against the
/// baseline plus an optional absolute queries/s floor. Returns the
/// violations (empty = pass).
pub fn find_serve_regressions(
    baseline: &ServeReport,
    candidate: &ServeReport,
    max_regression: f64,
    min_qps: Option<f64>,
) -> Vec<String> {
    let mut violations = Vec::new();
    if candidate.rounds_completed == 0 {
        violations.push(
            "the engine completed no rounds inside the window: the measurement is of an \
             idle server"
                .to_owned(),
        );
    }
    let floor = baseline.queries_per_sec / max_regression;
    if candidate.queries_per_sec < floor {
        violations.push(format!(
            "sustained queries/s dropped more than {max_regression}x: {:.0} -> {:.0} \
             (floor {:.0})",
            baseline.queries_per_sec, candidate.queries_per_sec, floor,
        ));
    }
    if let Some(min) = min_qps {
        if candidate.queries_per_sec < min {
            violations.push(format!(
                "sustained queries/s {:.0} is below the absolute floor {min:.0}",
                candidate.queries_per_sec,
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(qps: f64, rounds: usize) -> ServeReport {
        ServeReport {
            name: "smoke".into(),
            nodes: 100,
            seed: 42,
            engine: "parallel".into(),
            clients: CLIENTS,
            pipeline: PIPELINE,
            wall_ms: 2000.0,
            queries_total: (qps * 2.0) as u64,
            queries_per_sec: qps,
            rounds_completed: rounds,
            ingest_attempted: 10,
            ingest_accepted: 9,
            ingest_shed: 1,
        }
    }

    #[test]
    fn gate_passes_within_budget() {
        let violations =
            find_serve_regressions(&report(200_000.0, 5), &report(120_000.0, 3), 2.0, None);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn gate_fails_on_regression() {
        let violations =
            find_serve_regressions(&report(200_000.0, 5), &report(90_000.0, 3), 2.0, None);
        assert_eq!(violations.len(), 1, "{violations:?}");
    }

    #[test]
    fn gate_fails_below_absolute_floor() {
        let violations = find_serve_regressions(
            &report(150_000.0, 5),
            &report(90_000.0, 3),
            2.0,
            Some(SCALE_MIN_QPS),
        );
        assert!(
            violations.iter().any(|v| v.contains("absolute floor")),
            "{violations:?}"
        );
    }

    #[test]
    fn gate_fails_on_idle_engine() {
        let violations =
            find_serve_regressions(&report(200_000.0, 5), &report(200_000.0, 0), 2.0, None);
        assert!(
            violations.iter().any(|v| v.contains("no rounds")),
            "{violations:?}"
        );
    }

    /// End-to-end smoke of the harness itself on a tiny config: the
    /// measurement machinery must produce a live, non-idle report.
    #[test]
    fn harness_measures_a_live_server() {
        let perf = PerfConfig {
            name: "harness-smoke",
            nodes: 64,
            rounds: 2,
            requests_per_edge: 2,
            shards: 0,
            traffic: dg_sim::TrafficModel::full(),
            scope: dg_sim::rounds::AggregationScope::Neighbourhood,
        };
        let report = run_serve(&perf, 1, EngineKind::Sequential).expect("measurement runs");
        assert!(report.queries_total > 0);
        assert!(report.rounds_completed > 0);
        assert!(report.ingest_attempted > 0);
    }
}
