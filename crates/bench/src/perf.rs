//! The perf-regression harness behind `perf_suite` / `perf_compare`.
//!
//! `perf_suite` runs the round-loop lifecycle on a pinned-seed scenario
//! under every engine and emits a machine-readable `BENCH_<name>.json`
//! report; `perf_compare` gates CI by comparing a fresh report against
//! the committed `BENCH_baseline.json` and failing on a > [`MAX_REGRESSION`]
//! throughput drop. Reports are additive: future PRs append engines or
//! configs without breaking older baselines (unknown engines in either
//! file are ignored by the comparison).

use dg_gossip::{AdversaryMix, EngineKind, NetworkProfile, ScalarGossip};
use dg_sim::rounds::{AggregationScope, RoundsConfig, RoundsSimulator};
use dg_sim::scenario::{Scenario, ScenarioConfig};
use dg_sim::{CheckpointKind, RunConfig, RunSession, TrafficModel};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Throughput may drop to this fraction of the baseline before the gate
/// fails (the ISSUE's ">2× regression" bar).
pub const MAX_REGRESSION: f64 = 2.0;

/// Residual errors below this floor are considered noise by the quality
/// gate (faulty profiles leave small non-zero residuals whose exact
/// value is seed-sensitive; only order-of-magnitude growth matters).
pub const RESIDUAL_FLOOR: f64 = 0.01;

/// One engine's measurement within a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineResult {
    /// Engine label (`sequential` / `parallel` / `sharded`).
    pub engine: String,
    /// Wall time of the whole round loop, milliseconds.
    pub wall_ms: f64,
    /// Node-rounds per second (`nodes × rounds / wall`): the headline
    /// throughput number future PRs must not regress.
    pub node_rounds_per_sec: f64,
    /// Free-rider service rate after the last round (sanity check that
    /// the lifecycle actually separated the classes).
    pub final_free_rider_service_rate: f64,
    /// Process peak RSS (`VmHWM`) sampled right after this engine's
    /// lifecycle run, bytes. A process-wide high-water mark, so it is
    /// only recorded when **this** engine's run raised it — in a
    /// multi-engine suite run a later, smaller engine reports 0
    /// (inherited peak, not attributable) rather than a misleading
    /// copy of an earlier engine's footprint. Restrict with `--engine`
    /// (as the scale workflow does) for a guaranteed-clean per-engine
    /// number. Also 0 where the platform exposes no reading, and
    /// absent — zero — in reports written before the scale config.
    #[serde(default)]
    pub peak_rss_bytes: u64,
}

/// A `BENCH_<name>.json` report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Config name (`smoke` / `full`).
    pub name: String,
    /// Network size.
    pub nodes: usize,
    /// Lifecycle rounds executed.
    pub rounds: usize,
    /// Requests per directed edge per round.
    pub requests_per_edge: u32,
    /// Scenario seed.
    pub seed: u64,
    /// Network fault profile the convergence measurement ran under
    /// (absent in pre-profile reports, which were all lossless). The
    /// synchronous measurement honours the profile's loss/churn knobs
    /// only — delay, duplication and partitions are transport-level and
    /// show up in the p2p runtime, not here.
    #[serde(default)]
    pub profile: String,
    /// Gossip steps to protocol quiescence for a scalar averaging run on
    /// the same overlay (the paper's convergence metric), under
    /// `profile`.
    pub rounds_to_convergence: usize,
    /// Residual estimate error (max |estimate − true mean|) left at
    /// termination of the convergence run — non-trivial only under
    /// faulty profiles.
    #[serde(default)]
    pub residual_error: f64,
    /// Adversary preset the lifecycle measurement ran under (empty in
    /// pre-adversary reports, which were all honest).
    #[serde(default)]
    pub adversary: String,
    /// Per-engine measurements.
    pub engines: Vec<EngineResult>,
    /// `parallel` throughput over `sequential` throughput; `None` when
    /// the suite was restricted to a single engine (`--engine`).
    pub speedup_parallel_over_sequential: Option<f64>,
    /// `incremental` throughput over `parallel` (batched) throughput —
    /// the delta-engine's headline gain, ≥ 3x on the skewed config by
    /// the committed `BENCH_baseline_skewed.json`. `None` when either
    /// engine was not measured (and absent in pre-incremental reports).
    #[serde(default)]
    pub speedup_incremental_over_parallel: Option<f64>,
}

impl PerfReport {
    /// The result for one engine, if present.
    pub fn engine(&self, label: &str) -> Option<&EngineResult> {
        self.engines.iter().find(|e| e.engine == label)
    }
}

/// A pinned perf-suite configuration.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// Config name (report + file name).
    pub name: &'static str,
    /// Network size.
    pub nodes: usize,
    /// Lifecycle rounds.
    pub rounds: usize,
    /// Requests per directed edge per round.
    pub requests_per_edge: u32,
    /// Shard count for the sharded engine (0 = auto).
    pub shards: usize,
    /// Traffic shape of the lifecycle measurement
    /// ([`TrafficModel::full`] for the legacy every-node-every-round
    /// workload).
    pub traffic: TrafficModel,
    /// Aggregation scope of the lifecycle measurement (every pinned
    /// config is neighbourhood-scoped — the serving-relevant scope —
    /// but ad-hoc sweeps can measure network-wide aggregation too).
    pub scope: AggregationScope,
}

/// The CI smoke config: 5 000 nodes, heavy per-edge request load,
/// neighbourhood-scoped closed-form aggregation.
pub const SMOKE: PerfConfig = PerfConfig {
    name: "smoke",
    nodes: 5_000,
    rounds: 5,
    requests_per_edge: 50,
    // Explicitly multi-shard: the auto partition would use one shard at
    // 5k nodes, and the per-PR gate must exercise real cross-shard
    // assembly, not the degenerate fused-but-serial path.
    shards: 4,
    traffic: TrafficModel::full(),
    scope: AggregationScope::Neighbourhood,
};

/// The `--skewed` config: realistic skewed request traffic — Zipf
/// (s = 1) per-node request skew at 1% mean activity, so under 1% of
/// the 100 000 rows fold records in any round (the head of the Zipf is
/// pinned at p = 1) while every row stays live for serving. The
/// incremental engine's target configuration and the workload its
/// ≥ 3x headline throughput bar is recorded on
/// (`BENCH_baseline_skewed.json`).
pub const SKEWED: PerfConfig = PerfConfig {
    name: "skewed",
    nodes: 100_000,
    rounds: 32,
    requests_per_edge: 8,
    shards: 4,
    traffic: TrafficModel {
        activity_fraction: 0.01,
        zipf_exponent: 1.0,
        flash_interval: 0,
        flash_multiplier: 1.0,
    },
    scope: AggregationScope::Neighbourhood,
};

/// The `--full` config.
pub const FULL: PerfConfig = PerfConfig {
    name: "full",
    nodes: 20_000,
    rounds: 5,
    requests_per_edge: 50,
    shards: 4,
    traffic: TrafficModel::full(),
    scope: AggregationScope::Neighbourhood,
};

/// The `--scale` config: one million nodes on the sparse PA overlay
/// (`m = 2` → ~4M directed trust edges), light per-edge load, the
/// sharded engine's target configuration. Run restricted
/// (`--engine sharded`) so the recorded peak RSS is the sharded
/// engine's own footprint.
pub const SCALE: PerfConfig = PerfConfig {
    name: "scale",
    nodes: 1_000_000,
    rounds: 3,
    requests_per_edge: 1,
    shards: 0,
    traffic: TrafficModel::full(),
    scope: AggregationScope::Neighbourhood,
};

/// Process peak RSS in bytes (`VmHWM` from `/proc/self/status`), or 0
/// where the platform exposes no reading.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

fn scenario_config(
    perf: &PerfConfig,
    seed: u64,
    engine: EngineKind,
    profile: NetworkProfile,
    adversary: AdversaryMix,
) -> ScenarioConfig {
    ScenarioConfig {
        nodes: perf.nodes,
        seed,
        free_rider_fraction: 0.25,
        quality_range: (0.4, 1.0),
        engine,
        profile,
        adversary,
        traffic: perf.traffic,
        ..ScenarioConfig::default()
    }
}

fn measure_engine(
    perf: &PerfConfig,
    seed: u64,
    engine: EngineKind,
    adversary: AdversaryMix,
) -> Result<EngineResult, Box<dyn std::error::Error>> {
    // The lifecycle loop aggregates in closed form, so engine throughput
    // is profile-independent — always measured lossless for
    // baseline-comparability.
    let rss_before = peak_rss_bytes();
    let scenario = Scenario::build(scenario_config(
        perf,
        seed,
        engine,
        NetworkProfile::lossless(),
        adversary,
    ))?;
    let config = RoundsConfig {
        rounds: perf.rounds,
        requests_per_edge: perf.requests_per_edge,
        scope: perf.scope,
        ..RoundsConfig::default()
    }
    .with_engine(engine)
    .with_shards(perf.shards)
    .with_traffic(perf.traffic);
    let mut sim = RoundsSimulator::new(&scenario, config);
    let mut rng = scenario.gossip_rng(1);
    let start = Instant::now();
    let stats = sim.run(&mut rng)?;
    let wall = start.elapsed();
    let wall_s = wall.as_secs_f64().max(1e-9);
    let last = stats.last().expect("at least one round");
    // Attribute the high-water mark to this engine only if its run
    // raised it (see the field doc).
    let rss_after = peak_rss_bytes();
    Ok(EngineResult {
        engine: engine.label().to_owned(),
        wall_ms: wall_s * 1e3,
        node_rounds_per_sec: (perf.nodes * perf.rounds) as f64 / wall_s,
        final_free_rider_service_rate: last.free_rider_service_rate(),
        peak_rss_bytes: if rss_after > rss_before { rss_after } else { 0 },
    })
}

/// Run the suite on the pinned config and assemble the report. With
/// `only = None` every engine is measured (the CI setting); passing an
/// engine restricts the run to it. The convergence measurement runs
/// under `profile` (engine throughput stays profile-independent).
pub fn run_suite(
    perf: &PerfConfig,
    seed: u64,
    only: Option<EngineKind>,
    profile: NetworkProfile,
) -> Result<PerfReport, Box<dyn std::error::Error>> {
    run_suite_with_adversary(perf, seed, only, profile, AdversaryMix::none())
}

/// [`run_suite`] with an adversarial mix composed into the lifecycle
/// measurement (engine throughput under attack). The scalar convergence
/// metric is built without the mix so it stays comparable against
/// honest baselines; byzantine gossip numbers come from the `claims`
/// harness.
pub fn run_suite_with_adversary(
    perf: &PerfConfig,
    seed: u64,
    only: Option<EngineKind>,
    profile: NetworkProfile,
    adversary: AdversaryMix,
) -> Result<PerfReport, Box<dyn std::error::Error>> {
    // Engines are measured FIRST so each result's `peak_rss_bytes`
    // (a process-wide high-water mark) reflects scenario build + that
    // engine's round loop only, not the convergence measurement below.
    let mut engines = Vec::new();
    for engine in EngineKind::ALL {
        if only.is_none() || only == Some(engine) {
            engines.push(measure_engine(perf, seed, engine, adversary)?);
        }
    }
    let find = |label: &str| engines.iter().find(|e| e.engine == label);
    let speedup = match (only, find("sequential"), find("parallel")) {
        (None, Some(sequential), Some(parallel)) => {
            Some(parallel.node_rounds_per_sec / sequential.node_rounds_per_sec.max(1e-9))
        }
        _ => None,
    };
    let speedup_incremental = match (find("incremental"), find("parallel")) {
        (Some(incremental), Some(parallel)) => {
            Some(incremental.node_rounds_per_sec / parallel.node_rounds_per_sec.max(1e-9))
        }
        _ => None,
    };

    // Convergence metric: scalar differential-gossip averaging on the
    // same overlay, steps to protocol quiescence, under the requested
    // network profile. Built WITHOUT the adversary mix — the mix
    // rewrites leech-role latent qualities, and this metric must stay
    // comparable against honest baselines (byzantine gossip numbers
    // come from the `claims` harness).
    let scenario = Scenario::build(scenario_config(
        perf,
        seed,
        EngineKind::Sequential,
        profile,
        AdversaryMix::none(),
    ))?;
    let values = scenario.population.latent_qualities();
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let gossip = scenario.gossip_config(1e-4)?.with_sticky_announcements();
    let out =
        ScalarGossip::average(&scenario.graph, gossip, &values)?.run(&mut scenario.gossip_rng(1));
    let residual_error = out.max_error(mean);
    drop(scenario);

    Ok(PerfReport {
        name: perf.name.to_owned(),
        nodes: perf.nodes,
        rounds: perf.rounds,
        requests_per_edge: perf.requests_per_edge,
        seed,
        profile: profile.label().to_owned(),
        rounds_to_convergence: out.steps,
        residual_error,
        adversary: adversary.label().to_owned(),
        engines,
        speedup_parallel_over_sequential: speedup,
        speedup_incremental_over_parallel: speedup_incremental,
    })
}

/// One point of a thread-scaling curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadPoint {
    /// Worker threads this point was measured at.
    pub threads: usize,
    /// Wall time of the whole round loop, milliseconds.
    pub wall_ms: f64,
    /// Node-rounds per second at this thread count.
    pub node_rounds_per_sec: f64,
    /// Parallel efficiency against the curve's first (lowest-thread)
    /// point: `(tput / base_tput) × (base_threads / threads)` — 1.0 is
    /// perfect linear scaling, the CI gate bounds it from below.
    pub parallel_efficiency: f64,
}

/// A `BENCH_threads.json` report: the scaling-efficiency curve
/// (node-rounds/s vs cores) of one engine on one pinned config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadScalingReport {
    /// Config name (`smoke` / `full` / ...).
    pub name: String,
    /// Network size.
    pub nodes: usize,
    /// Lifecycle rounds executed per point.
    pub rounds: usize,
    /// Requests per directed edge per round.
    pub requests_per_edge: u32,
    /// Scenario seed.
    pub seed: u64,
    /// The engine swept.
    pub engine: String,
    /// Shard count (0 = auto).
    pub shards: usize,
    /// The measuring machine's available parallelism — points beyond
    /// it are oversubscribed and exempt from the efficiency gate.
    pub machine_threads: usize,
    /// The curve, ascending by thread count.
    pub points: Vec<ThreadPoint>,
}

impl ThreadScalingReport {
    /// The point measured at `threads`, if present.
    pub fn point(&self, threads: usize) -> Option<&ThreadPoint> {
        self.points.iter().find(|p| p.threads == threads)
    }
}

/// Annotate raw `(threads, wall_ms, node_rounds_per_sec)` measurements
/// with parallel efficiency against the lowest-thread point.
fn efficiency_points(mut raw: Vec<(usize, f64, f64)>) -> Vec<ThreadPoint> {
    raw.sort_by_key(|&(t, _, _)| t);
    let base = raw.first().copied();
    raw.into_iter()
        .map(|(threads, wall_ms, tput)| {
            let parallel_efficiency = match base {
                Some((base_threads, _, base_tput)) if base_tput > 0.0 => {
                    (tput / base_tput) * (base_threads as f64 / threads as f64)
                }
                _ => 0.0,
            };
            ThreadPoint {
                threads,
                wall_ms,
                node_rounds_per_sec: tput,
                parallel_efficiency,
            }
        })
        .collect()
}

/// Measure the scaling-efficiency curve: the full round-loop lifecycle
/// of `engine` on `perf`, once per thread count (each run inside an
/// installed pool of that width). Results are bit-identical across the
/// sweep — only wall-clock changes — so the curve is a pure scheduler
/// measurement.
pub fn run_thread_sweep(
    perf: &PerfConfig,
    seed: u64,
    engine: EngineKind,
    threads: &[usize],
    adversary: AdversaryMix,
) -> Result<ThreadScalingReport, Box<dyn std::error::Error>> {
    let mut raw = Vec::with_capacity(threads.len());
    for &t in threads {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(t).build()?;
        let result = pool.install(|| measure_engine(perf, seed, engine, adversary))?;
        raw.push((t, result.wall_ms, result.node_rounds_per_sec));
    }
    Ok(ThreadScalingReport {
        name: perf.name.to_owned(),
        nodes: perf.nodes,
        rounds: perf.rounds,
        requests_per_edge: perf.requests_per_edge,
        seed,
        engine: engine.label().to_owned(),
        shards: perf.shards,
        machine_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        points: efficiency_points(raw),
    })
}

/// `--threads` mode: sweep the selected config over the requested
/// thread counts and write the curve report.
fn thread_sweep_main(
    cli: &crate::Cli,
    threads: &[usize],
) -> Result<(), Box<dyn std::error::Error>> {
    let config = select_config(cli);
    // The sharded engine is the work-stealing scheduler's target
    // configuration; `--engine` overrides.
    let engine = cli.engine.unwrap_or(EngineKind::Sharded);
    eprintln!(
        "perf_suite: thread sweep {:?} on {} ({} nodes, {} rounds, {} req/edge, seed {}, \
         engine {})",
        threads,
        config.name,
        config.nodes,
        config.rounds,
        config.requests_per_edge,
        cli.seed,
        engine.label(),
    );
    let report = run_thread_sweep(&config, cli.seed, engine, threads, cli.adversary)?;
    for p in &report.points {
        eprintln!(
            "  {:>3} threads  {:>10.1} ms  {:>12.0} node-rounds/s  efficiency {:.3}",
            p.threads, p.wall_ms, p.node_rounds_per_sec, p.parallel_efficiency
        );
    }
    if threads.iter().any(|&t| t > report.machine_threads) {
        eprintln!(
            "  note: this machine has {} hardware threads — oversubscribed points are \
             reported but exempt from the efficiency gate",
            report.machine_threads
        );
    }
    // The pinned smoke sweep keeps the historical gate file name;
    // other configs and overridden runs get their own files so they
    // cannot shadow the committed baseline (same rule as the plain
    // suite reports).
    let mut suffix = String::new();
    if config.name != SMOKE.name {
        suffix.push_str(&format!("_{}", config.name));
    }
    if let Some(n) = cli.nodes {
        suffix.push_str(&format!("_{n}"));
    }
    if cli.activity.is_some() || cli.zipf.is_some() {
        suffix.push_str(&format!(
            "_a{:.2}_z{:.2}",
            config.traffic.activity_fraction, config.traffic.zipf_exponent
        ));
    }
    let default_name = format!("BENCH_threads{suffix}.json");
    let name = cli.out.clone().unwrap_or(default_name);
    let path = crate::resolve_out_path(cli.out_dir.as_deref(), &name);
    std::fs::write(&path, serde_json::to_string_pretty(&report)?)?;
    eprintln!("wrote {path}");
    if cli.json {
        println!("{}", serde_json::to_string(&report)?);
    }
    Ok(())
}

/// Pairwise throughput gate between two scaling curves: every thread
/// count present in both must keep at least `1 / max_regression` of
/// the baseline throughput. Returns human-readable violations.
pub fn find_thread_regressions(
    baseline: &ThreadScalingReport,
    candidate: &ThreadScalingReport,
    max_regression: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    for base in &baseline.points {
        let Some(cand) = candidate.point(base.threads) else {
            continue;
        };
        let factor = base.node_rounds_per_sec / cand.node_rounds_per_sec.max(1e-9);
        if factor > max_regression {
            out.push(format!(
                "{} threads: throughput fell {:.0} -> {:.0} node-rounds/s ({factor:.2}x, \
                 budget {max_regression:.1}x)",
                base.threads, base.node_rounds_per_sec, cand.node_rounds_per_sec,
            ));
        }
    }
    out
}

/// Absolute parallel-efficiency gate on a fresh curve: every
/// non-oversubscribed multi-thread point (1 < threads ≤
/// `machine_threads`) must reach `min_efficiency`. This bounds the
/// *candidate measurement itself* — unlike the pairwise throughput
/// gate it needs no baseline, so a scheduler that stops scaling fails
/// even if a stale baseline scaled just as badly.
pub fn find_efficiency_violations(
    candidate: &ThreadScalingReport,
    min_efficiency: f64,
) -> Vec<String> {
    candidate
        .points
        .iter()
        .filter(|p| p.threads > 1 && p.threads <= candidate.machine_threads)
        .filter(|p| p.parallel_efficiency < min_efficiency)
        .map(|p| {
            format!(
                "{} threads: parallel efficiency {:.3} below the {min_efficiency:.2} bound \
                 ({:.0} node-rounds/s)",
                p.threads, p.parallel_efficiency, p.node_rounds_per_sec,
            )
        })
        .collect()
}

/// The `perf_suite` binary's entry point (the binary itself lives in the
/// umbrella package so `cargo run --bin perf_suite` works from the
/// workspace root).
pub fn suite_main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = crate::Cli::parse();
    if cli.serve {
        return crate::serve::serve_main(&cli);
    }
    if let Some(threads) = cli.threads.clone() {
        return thread_sweep_main(&cli, &threads);
    }
    if cli.checkpoint_overhead {
        return checkpoint_overhead_main(&cli);
    }
    if cli.resume.is_some() || cli.checkpoint_every.is_some() {
        return session_main(&cli);
    }
    let config = select_config(&cli);
    eprintln!(
        "perf_suite: {} ({} nodes, {} rounds, {} req/edge, seed {}, profile {}, adversary {}, \
         activity {:.2} zipf {:.2})",
        config.name,
        config.nodes,
        config.rounds,
        config.requests_per_edge,
        cli.seed,
        cli.profile.label(),
        cli.adversary.label(),
        config.traffic.activity_fraction,
        config.traffic.zipf_exponent,
    );
    if cli.profile.has_transport_only_faults() {
        eprintln!(
            "  note: profile `{}` carries delay/duplication/partition knobs, which have \
             no synchronous analogue — this convergence measurement reflects only its \
             loss/churn view. Full-fidelity numbers come from the dg-p2p runtime \
             (`cargo run --release --example faulty_network`).",
            cli.profile.label()
        );
    }

    let report =
        run_suite_with_adversary(&config, cli.seed, cli.engine, cli.profile, cli.adversary)?;
    for engine in &report.engines {
        eprintln!(
            "  {:<10} {:>10.1} ms  {:>12.0} node-rounds/s  (final free-rider service {:.3}, \
             peak RSS {:.0} MiB)",
            engine.engine,
            engine.wall_ms,
            engine.node_rounds_per_sec,
            engine.final_free_rider_service_rate,
            engine.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        );
    }
    if let Some(speedup) = report.speedup_parallel_over_sequential {
        eprintln!("  speedup parallel/sequential: {speedup:.2}x");
    }
    if let Some(speedup) = report.speedup_incremental_over_parallel {
        eprintln!("  speedup incremental/parallel: {speedup:.2}x");
    }
    eprintln!(
        "  {} gossip steps to convergence under `{}` (residual error {:.2e})",
        report.rounds_to_convergence, report.profile, report.residual_error
    );

    // Lossless keeps the historical BENCH_<config>.json name (the
    // committed baseline); faulty profiles and adversarial runs get
    // their own report files, and a `--nodes` override stamps the
    // overridden count into the name so an off-scale report can never
    // shadow the pinned config's file (and trivially pass its gate).
    let mut nodes_suffix = cli.nodes.map(|n| format!("_{n}")).unwrap_or_default();
    if cli.activity.is_some() || cli.zipf.is_some() {
        // Same shadowing concern as `--nodes`: a thinned-traffic run is
        // faster by construction and must not overwrite (and trivially
        // pass) a pinned config's gate file.
        nodes_suffix.push_str(&format!(
            "_a{:.2}_z{:.2}",
            config.traffic.activity_fraction, config.traffic.zipf_exponent
        ));
    }
    let default_name = if !cli.adversary.is_none() {
        // Keep the profile in the name so lossless and faulty
        // adversarial reports don't clobber each other.
        if cli.profile.is_reliable() {
            format!("BENCH_adv_{}{nodes_suffix}.json", report.adversary)
        } else {
            format!(
                "BENCH_adv_{}_{}{nodes_suffix}.json",
                report.adversary, report.profile
            )
        }
    } else if cli.profile.is_reliable() {
        format!("BENCH_{}{nodes_suffix}.json", report.name)
    } else {
        format!("BENCH_{}{nodes_suffix}.json", report.profile)
    };
    let name = cli.out.clone().unwrap_or(default_name);
    let path = crate::resolve_out_path(cli.out_dir.as_deref(), &name);
    std::fs::write(&path, serde_json::to_string_pretty(&report)?)?;
    eprintln!("wrote {path}");
    if cli.json {
        println!("{}", serde_json::to_string(&report)?);
    }
    Ok(())
}

/// The config the CLI mode flags select, with overrides applied.
pub(crate) fn select_config(cli: &crate::Cli) -> PerfConfig {
    let mut config = if cli.scale {
        SCALE
    } else if cli.full {
        FULL
    } else if cli.skewed {
        SKEWED
    } else {
        SMOKE
    };
    if let Some(nodes) = cli.nodes {
        config.nodes = nodes;
    }
    if let Some(shards) = cli.shards {
        config.shards = shards;
    }
    if let Some(activity) = cli.activity {
        config.traffic = config.traffic.with_activity(activity);
    }
    if let Some(zipf) = cli.zipf {
        config.traffic = config.traffic.with_zipf(zipf);
    }
    config
}

/// The consolidated session config a perf config maps onto (same
/// population and workload knobs as [`scenario_config`]).
fn session_run_config(perf: &PerfConfig, cli: &crate::Cli) -> RunConfig {
    RunConfig::with_nodes(perf.nodes)
        .with_seed(cli.seed)
        .with_engine(cli.engine.unwrap_or(EngineKind::Parallel))
        .with_shards(perf.shards)
        .with_free_riders(0.25)
        .with_quality_range(0.4, 1.0)
        .with_profile(cli.profile)
        .with_adversary(cli.adversary)
        .with_traffic(perf.traffic)
        .with_rounds(perf.rounds)
        .with_requests_per_edge(perf.requests_per_edge)
        .with_scope(perf.scope)
}

/// `--checkpoint-every` / `--resume` mode: drive the selected config
/// through a [`RunSession`], checkpointing into (or resuming from) a
/// durable store directory.
fn session_main(cli: &crate::Cli) -> Result<(), Box<dyn std::error::Error>> {
    let perf = select_config(cli);
    let store_dir: std::path::PathBuf = match (&cli.resume, &cli.out_dir) {
        (Some(dir), _) => dir.into(),
        (None, Some(dir)) => {
            std::fs::create_dir_all(dir)?;
            std::path::Path::new(dir).join("session_store")
        }
        (None, None) => {
            std::env::temp_dir().join(format!("dg_perf_session_{}", std::process::id()))
        }
    };
    let mut session = if cli.resume.is_some() {
        let session = RunSession::resume(&store_dir)?;
        eprintln!(
            "perf_suite: resumed {} nodes at round {} from {}",
            session.config().nodes,
            session.round(),
            store_dir.display()
        );
        session
    } else {
        let config = session_run_config(&perf, cli);
        eprintln!(
            "perf_suite: session over {} nodes, {} rounds, checkpoint every {} rounds into {}",
            config.nodes,
            config.rounds,
            cli.checkpoint_every.unwrap_or(config.rounds),
            store_dir.display()
        );
        RunSession::new(config)?
    };
    let rounds = session.config().rounds.max(session.round());
    let done_already = session.round();
    let start = Instant::now();
    while session.round() < rounds {
        let next = match cli.checkpoint_every {
            Some(every) => (session.round() + every).min(rounds),
            None => rounds,
        };
        session.run_to(next)?;
        if cli.checkpoint_every.is_some() {
            let kind = session.checkpoint(&store_dir)?;
            let tag = match kind {
                CheckpointKind::Full => "full epoch",
                CheckpointKind::Delta => "delta",
            };
            eprintln!("  round {:>4}: checkpointed ({tag})", session.round());
        }
    }
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let ran = rounds - done_already;
    eprintln!(
        "  {} rounds in {:.1} ms ({:.0} node-rounds/s incl. checkpointing)",
        ran,
        wall_s * 1e3,
        (session.config().nodes * ran) as f64 / wall_s
    );
    if let Some(last) = session.stats().last() {
        eprintln!(
            "  final free-rider service rate {:.3}",
            last.free_rider_service_rate()
        );
    }
    Ok(())
}

/// Throughput of one session run, checkpointing every `cadence` rounds
/// into `store` when given. Best of `tries`.
fn best_session_throughput(
    config: RunConfig,
    store: Option<(&std::path::Path, usize)>,
    tries: usize,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut best = 0.0f64;
    for _ in 0..tries {
        if let Some((dir, _)) = store {
            let _ = std::fs::remove_dir_all(dir);
        }
        let mut session = RunSession::new(config)?;
        let start = Instant::now();
        match store {
            None => {
                session.run()?;
            }
            Some((dir, cadence)) => {
                while session.round() < config.rounds {
                    let next = (session.round() + cadence).min(config.rounds);
                    session.run_to(next)?;
                    session.checkpoint(dir)?;
                }
            }
        }
        let wall_s = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max((config.nodes * config.rounds) as f64 / wall_s);
    }
    Ok(best)
}

/// `--checkpoint-overhead` gate: on a pinned smoke-scale config, a
/// session checkpointing every 4 rounds must keep at least 90% of the
/// no-checkpoint throughput. Exits non-zero on violation — the CI
/// perf-smoke job runs this so snapshot overhead cannot regress
/// silently (the paper-claims pipeline depends on checkpointed runs
/// staying cheap).
pub fn checkpoint_overhead_main(cli: &crate::Cli) -> Result<(), Box<dyn std::error::Error>> {
    const CADENCE: usize = 4;
    const ROUNDS: usize = 8;
    const MIN_RATIO: f64 = 0.9;
    const TRIES: usize = 3;
    let perf = select_config(cli);
    let config = session_run_config(&perf, cli).with_rounds(ROUNDS);
    let store_dir = match &cli.out_dir {
        Some(dir) => std::path::Path::new(dir).join("checkpoint_overhead_store"),
        None => std::env::temp_dir().join(format!("dg_ckpt_overhead_{}", std::process::id())),
    };
    eprintln!(
        "perf_suite: checkpoint-overhead gate ({} nodes, {} rounds, cadence {}, best of {})",
        config.nodes, ROUNDS, CADENCE, TRIES
    );
    let plain = best_session_throughput(config, None, TRIES)?;
    let checkpointed = best_session_throughput(config, Some((&store_dir, CADENCE)), TRIES)?;
    let _ = std::fs::remove_dir_all(&store_dir);
    let ratio = checkpointed / plain.max(1e-9);
    eprintln!(
        "  no-checkpoint {plain:.0} node-rounds/s, checkpoint-every-{CADENCE} \
         {checkpointed:.0} node-rounds/s, ratio {ratio:.3} (gate ≥ {MIN_RATIO})"
    );
    if ratio < MIN_RATIO {
        eprintln!("  FAIL: checkpointing costs more than 10% throughput");
        std::process::exit(1);
    }
    eprintln!("  ok");
    Ok(())
}

/// One comparison finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Engine label.
    pub engine: String,
    /// Baseline throughput.
    pub baseline: f64,
    /// Candidate throughput.
    pub candidate: f64,
    /// `baseline / candidate`.
    pub factor: f64,
}

/// Compare a candidate report against the committed baseline: every
/// engine present in both must keep at least `1 / max_regression` of the
/// baseline throughput. Returns the list of violations (empty = pass).
pub fn find_regressions(
    baseline: &PerfReport,
    candidate: &PerfReport,
    max_regression: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for base in &baseline.engines {
        let Some(cand) = candidate.engine(&base.engine) else {
            continue;
        };
        let factor = base.node_rounds_per_sec / cand.node_rounds_per_sec.max(1e-9);
        if factor > max_regression {
            out.push(Regression {
                engine: base.engine.clone(),
                baseline: base.node_rounds_per_sec,
                candidate: cand.node_rounds_per_sec,
                factor,
            });
        }
    }
    out
}

/// Convergence-quality regressions between two reports of the same
/// profile: the candidate must not need more than `max_regression`
/// times the baseline's gossip rounds to converge, and its residual
/// error must not grow past `max_regression ×` the baseline (ignoring
/// residuals under [`RESIDUAL_FLOOR`], which are noise). Returns
/// human-readable violations (empty = pass).
pub fn find_quality_regressions(
    baseline: &PerfReport,
    candidate: &PerfReport,
    max_regression: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    let rounds_budget = (baseline.rounds_to_convergence as f64 * max_regression).ceil() as usize;
    if baseline.rounds_to_convergence > 0 && candidate.rounds_to_convergence > rounds_budget {
        out.push(format!(
            "rounds_to_convergence grew {} -> {} (budget {} at {:.1}x) under profile `{}`",
            baseline.rounds_to_convergence,
            candidate.rounds_to_convergence,
            rounds_budget,
            max_regression,
            candidate.profile,
        ));
    }
    let residual_budget = (baseline.residual_error * max_regression).max(RESIDUAL_FLOOR);
    if candidate.residual_error > residual_budget {
        out.push(format!(
            "residual_error grew {:.2e} -> {:.2e} (budget {:.2e}) under profile `{}`",
            baseline.residual_error, candidate.residual_error, residual_budget, candidate.profile,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seq: f64, par: f64) -> PerfReport {
        PerfReport {
            name: "smoke".into(),
            nodes: 100,
            rounds: 2,
            requests_per_edge: 5,
            seed: 42,
            profile: "lossless".into(),
            rounds_to_convergence: 10,
            residual_error: 0.0,
            adversary: "none".into(),
            engines: vec![
                EngineResult {
                    engine: "sequential".into(),
                    wall_ms: 1.0,
                    node_rounds_per_sec: seq,
                    final_free_rider_service_rate: 0.1,
                    peak_rss_bytes: 0,
                },
                EngineResult {
                    engine: "parallel".into(),
                    wall_ms: 1.0,
                    node_rounds_per_sec: par,
                    final_free_rider_service_rate: 0.1,
                    peak_rss_bytes: 0,
                },
            ],
            speedup_parallel_over_sequential: Some(par / seq),
            speedup_incremental_over_parallel: None,
        }
    }

    #[test]
    fn report_json_roundtrip() {
        let r = report(100.0, 200.0);
        let s = serde_json::to_string_pretty(&r).unwrap();
        let back: PerfReport = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.engine("parallel").unwrap().node_rounds_per_sec, 200.0);
    }

    #[test]
    fn regression_gate_fires_only_beyond_factor() {
        let baseline = report(1000.0, 2000.0);
        // Mild slowdown: inside the 2x budget.
        assert!(find_regressions(&baseline, &report(600.0, 1100.0), 2.0).is_empty());
        // Parallel engine collapsed by >2x.
        let bad = find_regressions(&baseline, &report(990.0, 900.0), 2.0);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].engine, "parallel");
        assert!(bad[0].factor > 2.0);
    }

    #[test]
    fn unknown_engines_are_ignored() {
        let mut candidate = report(1000.0, 2000.0);
        candidate.engines.remove(0);
        let baseline = report(1000.0, 2000.0);
        // Sequential missing from the candidate: skipped, not a failure.
        assert!(find_regressions(&baseline, &candidate, 2.0).is_empty());
    }

    #[test]
    fn tiny_suite_runs_end_to_end_and_all_engines_match() {
        let tiny = PerfConfig {
            name: "tiny",
            nodes: 120,
            rounds: 2,
            requests_per_edge: 3,
            shards: 4,
            traffic: TrafficModel::full(),
            scope: AggregationScope::Neighbourhood,
        };
        let r = run_suite(&tiny, 7, None, NetworkProfile::lossless()).unwrap();
        assert_eq!(r.engines.len(), 4);
        assert!(r.rounds_to_convergence > 0);
        assert_eq!(r.profile, "lossless");
        // Identical lifecycle outcomes under every engine.
        let seq = r.engine("sequential").unwrap();
        for label in ["parallel", "sharded", "incremental"] {
            assert_eq!(
                seq.final_free_rider_service_rate,
                r.engine(label).unwrap().final_free_rider_service_rate,
                "{label}"
            );
        }
        assert!(r.speedup_parallel_over_sequential.unwrap() > 0.0);
        assert!(r.speedup_incremental_over_parallel.unwrap() > 0.0);
        // peak_rss_bytes attribution is probed separately
        // (`peak_rss_sampling_works`): asserting on per-engine values
        // here would race other tests in this process raising the
        // process-wide high-water mark first.
    }

    #[test]
    fn peak_rss_sampling_works() {
        // Linux exposes VmHWM; other platforms report 0 by contract.
        #[cfg(target_os = "linux")]
        assert!(peak_rss_bytes() > 0);
        #[cfg(not(target_os = "linux"))]
        assert_eq!(peak_rss_bytes(), 0);
    }

    #[test]
    fn engine_restriction_measures_one_engine_and_omits_speedup() {
        let tiny = PerfConfig {
            name: "tiny",
            nodes: 60,
            rounds: 1,
            requests_per_edge: 2,
            shards: 0,
            traffic: TrafficModel::full(),
            scope: AggregationScope::Neighbourhood,
        };
        for engine in [EngineKind::Parallel, EngineKind::Sharded] {
            let r = run_suite(&tiny, 7, Some(engine), NetworkProfile::lossless()).unwrap();
            assert_eq!(r.engines.len(), 1);
            assert_eq!(r.engines[0].engine, engine.label());
            assert_eq!(r.speedup_parallel_over_sequential, None);
        }
    }

    #[test]
    fn lossy_profile_runs_and_reports_label() {
        let tiny = PerfConfig {
            name: "tiny",
            nodes: 120,
            rounds: 1,
            requests_per_edge: 2,
            shards: 0,
            traffic: TrafficModel::full(),
            scope: AggregationScope::Neighbourhood,
        };
        let r = run_suite(
            &tiny,
            7,
            Some(EngineKind::Sequential),
            NetworkProfile::lossy(),
        )
        .unwrap();
        assert_eq!(r.profile, "lossy");
        assert!(r.rounds_to_convergence > 0);
        // Engine throughput stays comparable against lossless baselines.
        assert!(r.engine("sequential").is_some());
    }

    #[test]
    fn pre_profile_reports_still_parse() {
        // A report written before the profile/residual fields existed
        // (the committed baseline's shape) must keep deserializing.
        let legacy = r#"{
            "name": "smoke", "nodes": 100, "rounds": 2,
            "requests_per_edge": 5, "seed": 42,
            "rounds_to_convergence": 10,
            "engines": [], "speedup_parallel_over_sequential": null
        }"#;
        let report: PerfReport = serde_json::from_str(legacy).unwrap();
        assert_eq!(report.profile, "");
        assert_eq!(report.residual_error, 0.0);
        assert_eq!(report.adversary, "");
        assert_eq!(report.speedup_incremental_over_parallel, None);
    }

    #[test]
    fn skewed_tiny_suite_reports_incremental_gain() {
        // A downscaled SKEWED: the incremental engine must be measured,
        // agree with the others on the lifecycle outcome, and report
        // its speedup-over-batched headline. The ≥ 3x bar itself is
        // pinned by the full-size committed baseline, not here — at
        // 150 nodes the constant factors dominate.
        let tiny = PerfConfig {
            name: "tiny-skewed",
            nodes: 150,
            rounds: 3,
            requests_per_edge: 3,
            shards: 2,
            traffic: SKEWED.traffic.with_activity(0.1),
            scope: SKEWED.scope,
        };
        let r = run_suite(&tiny, 7, None, NetworkProfile::lossless()).unwrap();
        let par = r.engine("parallel").unwrap();
        let inc = r.engine("incremental").unwrap();
        assert_eq!(
            par.final_free_rider_service_rate,
            inc.final_free_rider_service_rate
        );
        assert!(r.speedup_incremental_over_parallel.unwrap() > 0.0);
    }

    #[test]
    fn quality_gate_fires_on_convergence_and_residual_growth() {
        let baseline = report(1000.0, 2000.0);
        // Identical: clean.
        assert!(find_quality_regressions(&baseline, &report(1.0, 1.0), 2.0).is_empty());
        // Convergence within budget (10 -> 20 at 2x): clean.
        let mut cand = report(1.0, 1.0);
        cand.rounds_to_convergence = 20;
        assert!(find_quality_regressions(&baseline, &cand, 2.0).is_empty());
        // Convergence beyond budget: violation.
        cand.rounds_to_convergence = 21;
        let v = find_quality_regressions(&baseline, &cand, 2.0);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("rounds_to_convergence"));
        // Residual under the floor: noise, clean.
        let mut cand = report(1.0, 1.0);
        cand.residual_error = 0.009;
        assert!(find_quality_regressions(&baseline, &cand, 2.0).is_empty());
        // Residual past both floor and 2x budget: violation.
        let mut lossy_base = report(1.0, 1.0);
        lossy_base.residual_error = 0.02;
        let mut cand = report(1.0, 1.0);
        cand.residual_error = 0.05;
        let v = find_quality_regressions(&lossy_base, &cand, 2.0);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("residual_error"));
    }

    fn curve(machine_threads: usize, points: &[(usize, f64)]) -> ThreadScalingReport {
        ThreadScalingReport {
            name: "smoke".into(),
            nodes: 100,
            rounds: 3,
            requests_per_edge: 1,
            seed: 42,
            engine: "sharded".into(),
            shards: 4,
            machine_threads,
            points: efficiency_points(
                points
                    .iter()
                    .map(|&(t, tput)| (t, 1000.0 / tput, tput))
                    .collect(),
            ),
        }
    }

    #[test]
    fn efficiency_is_relative_to_the_lowest_thread_point() {
        let r = curve(8, &[(4, 3000.0), (1, 1000.0), (2, 1800.0)]);
        // Points come back sorted ascending regardless of input order.
        let threads: Vec<usize> = r.points.iter().map(|p| p.threads).collect();
        assert_eq!(threads, vec![1, 2, 4]);
        assert!((r.point(1).unwrap().parallel_efficiency - 1.0).abs() < 1e-12);
        assert!((r.point(2).unwrap().parallel_efficiency - 0.9).abs() < 1e-12);
        assert!((r.point(4).unwrap().parallel_efficiency - 0.75).abs() < 1e-12);
    }

    #[test]
    fn thread_regression_gate_fires_only_beyond_factor() {
        let base = curve(8, &[(1, 1000.0), (2, 1800.0)]);
        // Half the throughput at 2 threads: within the 2x budget.
        let ok = curve(8, &[(1, 1000.0), (2, 901.0)]);
        assert!(find_thread_regressions(&base, &ok, 2.0).is_empty());
        // Beyond 2x at one point: exactly one violation, naming it.
        let bad = curve(8, &[(1, 1000.0), (2, 800.0)]);
        let v = find_thread_regressions(&base, &bad, 2.0);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].starts_with("2 threads"), "{v:?}");
        // Thread counts absent from the candidate are skipped, not errors.
        let sparse = curve(8, &[(1, 1000.0)]);
        assert!(find_thread_regressions(&base, &sparse, 2.0).is_empty());
    }

    #[test]
    fn efficiency_gate_skips_base_and_oversubscribed_points() {
        // 2-thread point at 0.6 efficiency on a 2-core machine: violation.
        let bad = curve(2, &[(1, 1000.0), (2, 1200.0)]);
        let v = find_efficiency_violations(&bad, 0.75);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("0.600"), "{v:?}");
        // Same curve with an 8-thread point on the same 2-core machine:
        // the oversubscribed point is exempt, so still one violation.
        let over = curve(2, &[(1, 1000.0), (2, 1200.0), (8, 1300.0)]);
        assert_eq!(find_efficiency_violations(&over, 0.75).len(), 1);
        // Healthy scaling passes.
        let good = curve(2, &[(1, 1000.0), (2, 1800.0)]);
        assert!(find_efficiency_violations(&good, 0.75).is_empty());
        // The 1-thread base point is never gated.
        let solo = curve(2, &[(1, 1000.0)]);
        assert!(find_efficiency_violations(&solo, 0.75).is_empty());
    }

    #[test]
    fn thread_report_roundtrips_through_json() {
        let r = curve(4, &[(1, 5000.0), (2, 9000.0)]);
        let text = serde_json::to_string_pretty(&r).unwrap();
        let back: ThreadScalingReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn tiny_thread_sweep_is_bit_identical_across_thread_counts() {
        let tiny = PerfConfig {
            name: "tiny",
            nodes: 60,
            rounds: 2,
            requests_per_edge: 1,
            shards: 4,
            traffic: SMOKE.traffic,
            scope: SMOKE.scope,
        };
        let r = run_thread_sweep(
            &tiny,
            11,
            EngineKind::Sharded,
            &[1, 2],
            AdversaryMix::none(),
        )
        .unwrap();
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.engine, "sharded");
        assert!((r.point(1).unwrap().parallel_efficiency - 1.0).abs() < 1e-12);
        assert!(r.points.iter().all(|p| p.node_rounds_per_sec > 0.0));
    }
}
