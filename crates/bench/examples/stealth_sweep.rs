//! How far a stealth cartel moves honest reputations under the
//! clamp + trim defense, across overlay density, cartel fraction and
//! bias — the sweep behind the `AdversaryMix::stealth()` preset and the
//! claims gate's stealth arm (see docs/AUDITS.md). Prints the deviation
//! both over all observers and over honest observers only; the honest
//! lens is the gated metric, and the gap between the two columns is the
//! cartel's own propaganda diluting the all-observer average.
//!
//! Run: `cargo run --release -p dg-bench --example stealth_sweep [rounds]`

use dg_core::behavior::Behavior;
use dg_gossip::AdversaryMix;
use dg_graph::NodeId;
use dg_sim::rounds::{DefensePolicy, RoundsConfig, RoundsSimulator};
use dg_sim::scenario::{Scenario, ScenarioConfig};

const NODES: usize = 250;

struct Run {
    means_all: Vec<Option<f64>>,
    means_honest_obs: Vec<Option<f64>>,
    honest: Vec<bool>,
}

fn run(m: usize, mix: AdversaryMix, rounds: usize) -> Run {
    let config = ScenarioConfig {
        nodes: NODES,
        m,
        seed: 42,
        free_rider_fraction: 0.1,
        quality_range: (0.4, 1.0),
        ..ScenarioConfig::default()
    }
    .with_adversary(mix);
    let scenario = Scenario::build(config).unwrap();
    let mut sim = RoundsSimulator::new(
        &scenario,
        RoundsConfig {
            rounds,
            ..RoundsConfig::default()
        }
        .with_defense(DefensePolicy::defended()),
    );
    let mut rng = scenario.gossip_rng(2);
    sim.run(&mut rng).unwrap();
    let adv: Vec<bool> = scenario
        .graph
        .nodes()
        .map(|v| scenario.adversaries.is_adversary(v))
        .collect();
    let honest = scenario
        .graph
        .nodes()
        .map(|v| {
            !scenario.adversaries.is_adversary(v)
                && matches!(scenario.population.behavior(v), Behavior::Honest { .. })
        })
        .collect();
    let mean = |skip_adv: bool| -> Vec<Option<f64>> {
        (0..NODES)
            .map(|s| {
                let (mut acc, mut count) = (0.0, 0usize);
                for (o, &is_adv) in adv.iter().enumerate() {
                    if skip_adv && is_adv {
                        continue;
                    }
                    if let Some(v) = sim.aggregated(NodeId(o as u32), NodeId(s as u32)) {
                        acc += v;
                        count += 1;
                    }
                }
                (count > 0).then(|| acc / count as f64)
            })
            .collect()
    };
    Run {
        means_all: mean(false),
        means_honest_obs: mean(true),
        honest,
    }
}

fn deviation(atk: &[Option<f64>], reference: &[Option<f64>], honest: &[bool]) -> f64 {
    let (mut acc, mut count) = (0.0, 0usize);
    for (i, &h) in honest.iter().enumerate() {
        if !h {
            continue;
        }
        if let (Some(a), Some(r)) = (atk[i], reference[i]) {
            acc += (a - r).abs();
            count += 1;
        }
    }
    acc / count as f64
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    println!("N={NODES}, seed 42, defended, {rounds} rounds");
    println!("{:<28}  dev(all obs)  dev(honest obs)", "configuration");
    for m in [2usize, 4, 8] {
        let reference = run(m, AdversaryMix::none(), rounds);
        for fraction in [0.35f64, 0.45] {
            for bias in [0.5f64, 1.0] {
                let mix = AdversaryMix {
                    stealth_fraction: fraction,
                    stealth_bias: bias,
                    ..AdversaryMix::stealth()
                };
                let atk = run(m, mix, rounds);
                println!(
                    "m={m} fraction={fraction:.2} bias={bias:.1}      {:>8.4}      {:>8.4}",
                    deviation(&atk.means_all, &reference.means_all, &atk.honest),
                    deviation(
                        &atk.means_honest_obs,
                        &reference.means_honest_obs,
                        &atk.honest
                    ),
                );
            }
        }
    }
}
