//! Round-engine micro-benchmarks: sequential reference driver vs the
//! batched parallel engine on the same pinned scenario, plus the
//! CSR-vs-dynamic trust build underneath them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dg_gossip::EngineKind;
use dg_graph::NodeId;
use dg_sim::rounds::{AggregationScope, RoundsConfig, RoundsSimulator};
use dg_sim::scenario::{Scenario, ScenarioConfig};
use dg_trust::{TrustMatrix, TrustValue};

fn scenario(nodes: usize, engine: EngineKind) -> Scenario {
    Scenario::build(ScenarioConfig {
        nodes,
        seed: 42,
        free_rider_fraction: 0.25,
        quality_range: (0.4, 1.0),
        engine,
        ..ScenarioConfig::default()
    })
    .expect("scenario builds")
}

fn bench_round_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounds/engine");
    group.sample_size(3);
    for engine in [
        EngineKind::Sequential,
        EngineKind::Parallel,
        EngineKind::Sharded,
    ] {
        let s = scenario(1000, engine);
        group.bench_with_input(
            BenchmarkId::new("lifecycle_1000x3", engine.label()),
            &s,
            |b, s| {
                b.iter(|| {
                    let mut sim = RoundsSimulator::new(
                        s,
                        RoundsConfig {
                            rounds: 3,
                            requests_per_edge: 20,
                            scope: AggregationScope::Neighbourhood,
                            ..RoundsConfig::default()
                        }
                        .with_engine(engine)
                        // Real cross-shard assembly, not the degenerate
                        // single-shard path auto would pick at 1000 nodes.
                        .with_shards(4),
                    );
                    let mut rng = s.gossip_rng(1);
                    sim.run(&mut rng).expect("rounds")
                })
            },
        );
    }
    group.finish();
}

fn bench_trust_build(c: &mut Criterion) {
    let s = scenario(5000, EngineKind::Sequential);
    let entries: Vec<(NodeId, NodeId, TrustValue)> = s.trust.entries().collect();
    let n = s.graph.node_count();

    let mut group = c.benchmark_group("rounds/trust_build");
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::from_parameter("dynamic"), &entries, |b, e| {
        b.iter(|| {
            let mut m = TrustMatrix::new(n);
            for &(i, j, t) in e {
                m.set(i, j, t).expect("in range");
            }
            m
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("csr"), &entries, |b, e| {
        b.iter(|| {
            let mut builder = TrustMatrix::builder(n);
            for &(i, j, t) in e {
                builder.set(i, j, t).expect("in range");
            }
            TrustMatrix::from_csr(builder.build())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_round_engines, bench_trust_build);
criterion_main!(benches);
