//! Micro-benchmarks of the gossip engines: per-step cost and full-run
//! cost, differential vs normal push (the engine-level view of Fig. 3 /
//! Table 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dg_gossip::{FanoutPolicy, GossipConfig, ScalarGossip};
use dg_graph::pa::{preferential_attachment, PaConfig};
use dg_graph::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn pa_graph(n: usize) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    preferential_attachment(PaConfig { nodes: n, m: 2 }, &mut rng).expect("valid PA config")
}

fn values(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 31) % 97) as f64 / 97.0).collect()
}

fn bench_scalar_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalar_step");
    for &n in &[1000usize, 10_000] {
        let graph = pa_graph(n);
        let vals = values(n);
        for (label, policy) in [
            ("differential", FanoutPolicy::Differential),
            ("push", FanoutPolicy::Uniform(1)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                let config = GossipConfig {
                    xi: 1e-12, // never converges: isolate raw step cost
                    fanout: policy,
                    ..GossipConfig::default()
                };
                let mut engine = ScalarGossip::average(&graph, config, &vals).expect("engine");
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                b.iter(|| black_box(engine.step(&mut rng)));
            });
        }
    }
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_run_xi_1e-4");
    group.sample_size(10);
    for &n in &[1000usize, 5000] {
        let graph = pa_graph(n);
        let vals = values(n);
        for (label, policy) in [
            ("differential", FanoutPolicy::Differential),
            ("push", FanoutPolicy::Uniform(1)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let config = GossipConfig {
                        xi: 1e-4,
                        fanout: policy,
                        ..GossipConfig::default()
                    };
                    let engine = ScalarGossip::average(&graph, config, &vals).expect("engine");
                    let mut rng = ChaCha8Rng::seed_from_u64(7);
                    black_box(engine.run(&mut rng).steps)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scalar_step, bench_full_run);
criterion_main!(benches);
