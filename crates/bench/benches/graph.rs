//! Micro-benchmarks of the topology layer: PA generation and the
//! per-node differential fan-out computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dg_graph::pa::{preferential_attachment, PaConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_pa_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pa_generation");
    group.sample_size(10);
    for &n in &[1000usize, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(42);
                black_box(
                    preferential_attachment(PaConfig { nodes: n, m: 2 }, &mut rng)
                        .expect("valid config"),
                )
            });
        });
    }
    group.finish();
}

fn bench_fanouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("differential_fanouts");
    for &n in &[10_000usize, 50_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let graph =
            preferential_attachment(PaConfig { nodes: n, m: 2 }, &mut rng).expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(graph.differential_fanouts()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pa_generation, bench_fanouts);
criterion_main!(benches);
