//! Micro-benchmarks of the aggregation layer: the four algorithm
//! variants, the closed-form GCLR evaluation, the weight law, and the
//! EigenTrust baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dg_core::algorithms::{alg1, alg3};
use dg_core::reputation::{trust_from_qualities, ReputationSystem};
use dg_gossip::GossipConfig;
use dg_graph::pa::{preferential_attachment, PaConfig};
use dg_graph::{Graph, NodeId};
use dg_sim::baselines::{eigentrust, EigenTrustConfig};
use dg_trust::{TrustValue, WeightParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn setup(n: usize) -> (Graph, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let graph =
        preferential_attachment(PaConfig { nodes: n, m: 2 }, &mut rng).expect("valid config");
    let qualities: Vec<f64> = (0..n).map(|i| 0.1 + 0.8 * ((i % 9) as f64 / 8.0)).collect();
    (graph, qualities)
}

fn bench_alg1(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1_single_subject");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        let (graph, q) = setup(n);
        let trust = trust_from_qualities(&graph, &q);
        let system = ReputationSystem::new(&graph, trust, WeightParams::default()).expect("system");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                black_box(
                    alg1::run(
                        &system,
                        NodeId(0),
                        GossipConfig::differential(1e-4).expect("config"),
                        &mut rng,
                    )
                    .expect("run"),
                )
            });
        });
    }
    group.finish();
}

fn bench_alg3(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg3_all_subjects");
    group.sample_size(10);
    for &n in &[200usize, 500] {
        let (graph, q) = setup(n);
        let trust = trust_from_qualities(&graph, &q);
        let system = ReputationSystem::new(&graph, trust, WeightParams::default()).expect("system");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                black_box(
                    alg3::run(
                        &system,
                        GossipConfig::differential(1e-3).expect("config"),
                        &mut rng,
                    )
                    .expect("run"),
                )
            });
        });
    }
    group.finish();
}

fn bench_closed_form_gclr(c: &mut Criterion) {
    let (graph, q) = setup(2000);
    let trust = trust_from_qualities(&graph, &q);
    let system = ReputationSystem::new(&graph, trust, WeightParams::default()).expect("system");
    c.bench_function("closed_form_gclr_2000_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..2000u32 {
                acc += system
                    .gclr(NodeId(i), NodeId(i.wrapping_mul(7) % 2000))
                    .unwrap_or(0.0);
            }
            black_box(acc)
        });
    });
}

fn bench_weight_law(c: &mut Criterion) {
    let w = WeightParams::new(2.0, 2.0).expect("params");
    let ts: Vec<TrustValue> = (0..1000)
        .map(|i| TrustValue::new(i as f64 / 999.0).expect("in range"))
        .collect();
    c.bench_function("weight_law_1000_evals", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &t in &ts {
                acc += w.weight(t);
            }
            black_box(acc)
        });
    });
}

fn bench_eigentrust(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigentrust");
    group.sample_size(10);
    for &n in &[1000usize, 5000] {
        let (graph, q) = setup(n);
        let trust = trust_from_qualities(&graph, &q);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(eigentrust(
                    &trust,
                    &[NodeId(0), NodeId(1)],
                    &EigenTrustConfig::default(),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_alg1,
    bench_alg3,
    bench_closed_form_gclr,
    bench_weight_law,
    bench_eigentrust
);
criterion_main!(benches);
