//! The per-node reputation table of the system model (Section 3).
//!
//! "Every node maintains a reputation table. In this table, a node
//! maintains the reputation of the nodes with whom it has interacted...
//! When another node asks for the resource from this node, it checks the
//! reputation table and according to the reputation value of the
//! requesting node, it allocates resource to the other node."
//!
//! The table also implements the liveness rule of Section 4.1.2: "If node
//! will not hear from a node for a long time, it will assume that this
//! node is no longer present and hence it will drop its feedback after
//! some time."

use crate::estimator::{TransactionOutcome, TrustEstimator};
use crate::value::TrustValue;
use dg_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One row of a node's reputation table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// Local trust from direct interaction (`t_ij`).
    pub local_trust: TrustValue,
    /// Aggregated reputation from the last completed gossip round
    /// (`Rep_ij`), if any round has completed.
    pub aggregated: Option<TrustValue>,
    /// Round number at which this peer was last heard from.
    pub last_heard_round: u64,
    /// Transactions backing `local_trust`.
    pub transactions: u64,
}

/// Reputation table of a single node, keyed by peer id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ReputationTable {
    entries: BTreeMap<NodeId, TableEntry>,
}

impl ReputationTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a peer.
    pub fn get(&self, peer: NodeId) -> Option<&TableEntry> {
        self.entries.get(&peer)
    }

    /// Insert (or replace) a peer's entry wholesale — the
    /// checkpoint-restore path, which rebuilds a table row for row from
    /// persisted [`TableEntry`] values rather than replaying the
    /// transactions that produced them. Returns the displaced entry, if
    /// any.
    pub fn insert(&mut self, peer: NodeId, entry: TableEntry) -> Option<TableEntry> {
        self.entries.insert(peer, entry)
    }

    /// Record a transaction outcome with `peer` using the supplied
    /// estimator state (the estimator is owned by the caller so different
    /// estimator types can share the table).
    pub fn record_transaction<E: TrustEstimator>(
        &mut self,
        peer: NodeId,
        estimator: &mut E,
        outcome: TransactionOutcome,
        round: u64,
    ) {
        estimator.record(outcome);
        let entry = self.entries.entry(peer).or_insert(TableEntry {
            local_trust: TrustValue::ZERO,
            aggregated: None,
            last_heard_round: round,
            transactions: 0,
        });
        entry.local_trust = estimator.estimate();
        entry.last_heard_round = round;
        entry.transactions = estimator.transactions();
    }

    /// Store the aggregated reputation produced by a gossip round.
    pub fn set_aggregated(&mut self, peer: NodeId, rep: TrustValue, round: u64) {
        let entry = self.entries.entry(peer).or_insert(TableEntry {
            local_trust: TrustValue::ZERO,
            aggregated: None,
            last_heard_round: round,
            transactions: 0,
        });
        entry.aggregated = Some(rep);
        entry.last_heard_round = round;
    }

    /// Forget a peer entirely — the whitewash case: the peer discarded
    /// its identity, so every opinion held about the old identity dies
    /// with it. Returns the dropped entry, if the peer was known.
    pub fn remove(&mut self, peer: NodeId) -> Option<TableEntry> {
        self.entries.remove(&peer)
    }

    /// Keep only the peers `keep` approves — the bulk form of
    /// [`remove`](Self::remove) the round engines' whitewash purge
    /// uses: one `O(len)` sweep instead of a lookup per discarded
    /// identity.
    pub fn retain(&mut self, mut keep: impl FnMut(NodeId) -> bool) {
        self.entries.retain(|&id, _| keep(id));
    }

    /// Mark that `peer` was heard from (any protocol traffic) at `round`.
    pub fn touch(&mut self, peer: NodeId, round: u64) {
        if let Some(e) = self.entries.get_mut(&peer) {
            e.last_heard_round = round;
        }
    }

    /// The reputation used for admission control: aggregated value when
    /// available, otherwise local trust, otherwise zero (stranger).
    pub fn effective_reputation(&self, peer: NodeId) -> TrustValue {
        match self.entries.get(&peer) {
            Some(e) => e.aggregated.unwrap_or(e.local_trust),
            None => TrustValue::ZERO,
        }
    }

    /// Drop every peer not heard from within `max_silence` rounds of
    /// `current_round`; returns how many entries were evicted.
    pub fn evict_silent(&mut self, current_round: u64, max_silence: u64) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|_, e| current_round.saturating_sub(e.last_heard_round) <= max_silence);
        before - self.entries.len()
    }

    /// Number of peers tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(peer, entry)` ordered by peer id.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &TableEntry)> + '_ {
        self.entries.iter().map(|(&id, e)| (id, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EwmaEstimator;

    fn served(q: f64) -> TransactionOutcome {
        TransactionOutcome::Served { quality: q }
    }

    #[test]
    fn stranger_has_zero_reputation() {
        let table = ReputationTable::new();
        assert_eq!(table.effective_reputation(NodeId(7)), TrustValue::ZERO);
        assert!(table.is_empty());
    }

    #[test]
    fn transactions_update_local_trust() {
        let mut table = ReputationTable::new();
        let mut est = EwmaEstimator::new(0.5);
        table.record_transaction(NodeId(3), &mut est, served(1.0), 1);
        table.record_transaction(NodeId(3), &mut est, served(1.0), 2);
        let e = table.get(NodeId(3)).unwrap();
        assert!(e.local_trust.get() > 0.7);
        assert_eq!(e.transactions, 2);
        assert_eq!(e.last_heard_round, 2);
        assert_eq!(table.effective_reputation(NodeId(3)), e.local_trust);
    }

    #[test]
    fn aggregated_overrides_local() {
        let mut table = ReputationTable::new();
        let mut est = EwmaEstimator::new(0.5);
        table.record_transaction(NodeId(3), &mut est, served(1.0), 1);
        table.set_aggregated(NodeId(3), TrustValue::new(0.1).unwrap(), 2);
        assert_eq!(
            table.effective_reputation(NodeId(3)),
            TrustValue::new(0.1).unwrap()
        );
    }

    #[test]
    fn eviction_drops_silent_peers() {
        let mut table = ReputationTable::new();
        let mut est = EwmaEstimator::new(0.5);
        table.record_transaction(NodeId(1), &mut est, served(1.0), 0);
        let mut est2 = EwmaEstimator::new(0.5);
        table.record_transaction(NodeId(2), &mut est2, served(1.0), 9);
        let evicted = table.evict_silent(10, 5);
        assert_eq!(evicted, 1);
        assert!(table.get(NodeId(1)).is_none());
        assert!(table.get(NodeId(2)).is_some());
    }

    #[test]
    fn touch_refreshes_liveness() {
        let mut table = ReputationTable::new();
        let mut est = EwmaEstimator::new(0.5);
        table.record_transaction(NodeId(1), &mut est, served(1.0), 0);
        table.touch(NodeId(1), 10);
        assert_eq!(table.evict_silent(11, 5), 0);
        assert_eq!(table.get(NodeId(1)).unwrap().last_heard_round, 10);
    }

    #[test]
    fn set_aggregated_creates_entry_for_unknown_peer() {
        let mut table = ReputationTable::new();
        table.set_aggregated(NodeId(9), TrustValue::HALF, 4);
        let e = table.get(NodeId(9)).unwrap();
        assert_eq!(e.aggregated, Some(TrustValue::HALF));
        assert_eq!(e.local_trust, TrustValue::ZERO);
        assert_eq!(table.len(), 1);
    }
}
