//! Error type for trust primitives.

use thiserror::Error;

/// Errors produced by trust-layer constructors and updates.
#[derive(Debug, Error, PartialEq)]
pub enum TrustError {
    /// Trust values must lie in `[0, 1]` (Section 4 of the paper).
    #[error("trust value {0} outside [0, 1]")]
    OutOfRange(f64),

    /// Trust values must be finite numbers.
    #[error("trust value must be finite, got {0}")]
    NotFinite(f64),

    /// Weight-law parameters must keep every weight ≥ 1.
    #[error("invalid weight parameters: {0}")]
    InvalidWeightParams(String),

    /// A robust-aggregation policy failed validation.
    #[error("invalid robust aggregation policy: {0}")]
    InvalidRobustPolicy(String),

    /// An audit policy failed validation.
    #[error("invalid audit policy: {0}")]
    InvalidAuditPolicy(String),

    /// A node id exceeded the matrix dimension.
    #[error("node id {id} out of range for {n} nodes")]
    NodeOutOfRange {
        /// Offending id.
        id: u32,
        /// Matrix dimension.
        n: usize,
    },

    /// Shard parts did not match the partition they were assembled
    /// under (wrong shard count, or a shard covering the wrong number
    /// of rows).
    #[error("shard shape mismatch: expected {expected}, got {got}")]
    ShardMismatch {
        /// What the `ShardSpec` requires.
        expected: usize,
        /// What was supplied.
        got: usize,
    },

    /// A bulk row replacement violated its ordering contract: replaced
    /// rows must be sorted by ascending observer without duplicates,
    /// and every replacement run sorted by ascending subject.
    #[error("row replacement around node {id} is not sorted/deduplicated")]
    UnsortedRowReplacement {
        /// Observer id at (or after) the violation.
        id: u32,
    },
}
