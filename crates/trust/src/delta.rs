//! Delta-maintained per-subject aggregates over a trust matrix.
//!
//! The closed-form aggregation phase needs, for every subject `j`, the
//! robust `(Σᵢ t_ij, N_d)` pair over all observers (see
//! [`TrustMatrix::robust_subject_sums_and_counts`]). The batched
//! engines recompute that from scratch every round — `O(total nnz)`
//! even when a round only touched a handful of rows. Under skewed
//! traffic (1 % per-round activity at production scale) >99 % of that
//! sweep re-derives unchanged numbers.
//!
//! [`SubjectAggregateCache`] turns the sweep into a delta computation.
//! It mirrors the matrix as **column postings**: per subject, the
//! `(observer, value)` pairs sorted by observer — exactly the reports
//! the row-major sweep would visit for that subject, in the same
//! order. When an observer's row is replaced, a merge-walk of the old
//! and new runs updates only the postings of subjects whose value
//! actually changed and marks those subjects dirty;
//! [`refresh`](SubjectAggregateCache::refresh) then re-aggregates the
//! dirty subjects only.
//!
//! **Bit-identity, not approximation.** Float addition is not
//! associative, so the cache never "subtracts the old value and adds
//! the new one" — that would drift from the from-scratch sweep within
//! one round. Instead a dirty subject's aggregate is recomputed over
//! its full postings list in ascending-observer order through the same
//! [`RobustAggregation::subject_sum`] kernel the from-scratch sweep
//! uses. Recomputation is `O(column degree)` per dirty subject; clean
//! subjects cost nothing. The proptest at the bottom pins
//! delta-refreshed aggregates bit-for-bit against the from-scratch
//! sweep on random op sequences, under both the plain and the defended
//! robust policy.

use crate::matrix::TrustMatrix;
use crate::robust::RobustAggregation;
use crate::value::TrustValue;
use dg_graph::NodeId;

/// Column-postings mirror of a trust matrix with delta-maintained
/// per-subject aggregates.
///
/// ```
/// use dg_graph::NodeId;
/// use dg_trust::{RobustAggregation, SubjectAggregateCache, TrustMatrix, TrustValue};
///
/// let mut m = TrustMatrix::new(3);
/// let mut cache = SubjectAggregateCache::new(3);
///
/// // Observer 0 rates subjects 1 and 2; mirror the row into the cache.
/// let row = vec![
///     (NodeId(1), TrustValue::new(0.8)?),
///     (NodeId(2), TrustValue::new(0.4)?),
/// ];
/// cache.apply_row_diff(NodeId(0), &[], &row);
/// m.replace_rows(&[(NodeId(0), row)])?;
///
/// let dirty = cache.refresh(&RobustAggregation::none());
/// assert_eq!(dirty, vec![NodeId(1), NodeId(2)]);
/// let (sums, counts) = m.robust_subject_sums_and_counts(&RobustAggregation::none());
/// assert_eq!(cache.sums(), &sums[..]);
/// assert_eq!(cache.counts(), &counts[..]);
/// # Ok::<(), dg_trust::TrustError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubjectAggregateCache {
    /// `postings[j]` = `(observer, value)` pairs sorted by observer —
    /// subject `j`'s column in ascending-observer (row-major) order.
    postings: Vec<Vec<(NodeId, TrustValue)>>,
    sums: Vec<f64>,
    counts: Vec<usize>,
    dirty: Vec<bool>,
    dirty_list: Vec<NodeId>,
}

impl SubjectAggregateCache {
    /// Empty cache over `n` subjects (mirroring an empty matrix).
    pub fn new(n: usize) -> Self {
        Self {
            postings: vec![Vec::new(); n],
            sums: vec![0.0; n],
            counts: vec![0usize; n],
            dirty: vec![false; n],
            dirty_list: Vec::new(),
        }
    }

    /// Dimension `N`.
    pub fn node_count(&self) -> usize {
        self.postings.len()
    }

    /// Mirror a matrix wholesale (marks every populated subject dirty;
    /// call [`refresh`](Self::refresh) afterwards). `O(nnz)`.
    pub fn rebuild_from(&mut self, matrix: &TrustMatrix) {
        let n = self.postings.len();
        for postings in &mut self.postings {
            postings.clear();
        }
        self.sums = vec![0.0; n];
        self.counts = vec![0usize; n];
        self.dirty = vec![false; n];
        self.dirty_list.clear();
        // `entries()` is row-major, so each column fills in ascending
        // observer order without sorting.
        for (i, j, t) in matrix.entries() {
            self.postings[j.index()].push((i, t));
            self.mark_dirty(j);
        }
    }

    fn mark_dirty(&mut self, j: NodeId) {
        if !self.dirty[j.index()] {
            self.dirty[j.index()] = true;
            self.dirty_list.push(j);
        }
    }

    /// Record that `observer`'s row changed from `old_run` to
    /// `new_run` (both sorted by subject, the order every matrix
    /// backend stores rows in). A merge-walk touches only the subjects
    /// present in either run; subjects whose value is bit-equal in
    /// both are skipped entirely. The caller applies the same
    /// replacement to the matrix itself (the cache never writes the
    /// matrix).
    pub fn apply_row_diff(
        &mut self,
        observer: NodeId,
        old_run: &[(NodeId, TrustValue)],
        new_run: &[(NodeId, TrustValue)],
    ) {
        let (mut a, mut b) = (0usize, 0usize);
        while a < old_run.len() || b < new_run.len() {
            match (old_run.get(a), new_run.get(b)) {
                (Some(&(oj, ot)), Some(&(nj, nt))) if oj == nj => {
                    if ot != nt {
                        self.update_posting(oj, observer, Some(nt));
                    }
                    a += 1;
                    b += 1;
                }
                (Some(&(oj, _)), Some(&(nj, nt))) if nj < oj => {
                    self.update_posting(nj, observer, Some(nt));
                    b += 1;
                }
                (Some(&(oj, _)), _) => {
                    self.update_posting(oj, observer, None);
                    a += 1;
                }
                (None, Some(&(nj, nt))) => {
                    self.update_posting(nj, observer, Some(nt));
                    b += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
    }

    /// Insert/overwrite (`Some`) or remove (`None`) one posting.
    fn update_posting(&mut self, j: NodeId, observer: NodeId, value: Option<TrustValue>) {
        let postings = &mut self.postings[j.index()];
        match postings.binary_search_by_key(&observer, |&(o, _)| o) {
            Ok(idx) => match value {
                Some(t) => postings[idx].1 = t,
                None => {
                    postings.remove(idx);
                }
            },
            Err(idx) => {
                if let Some(t) = value {
                    postings.insert(idx, (observer, t));
                }
            }
        }
        self.mark_dirty(j);
    }

    /// Re-aggregate every dirty subject under `policy` and return the
    /// sorted list of subjects that were refreshed. Each dirty subject
    /// is recomputed over its full postings list in ascending-observer
    /// order through [`RobustAggregation::subject_sum`] — the exact
    /// computation the from-scratch sweep performs — so the cached
    /// `(sum, count)` pairs stay bit-identical to
    /// [`TrustMatrix::robust_subject_sums_and_counts`] on the mirrored
    /// matrix.
    pub fn refresh(&mut self, policy: &RobustAggregation) -> Vec<NodeId> {
        let mut refreshed = std::mem::take(&mut self.dirty_list);
        refreshed.sort_unstable();
        let mut scratch = Vec::new();
        for &j in &refreshed {
            self.dirty[j.index()] = false;
            scratch.clear();
            scratch.extend(self.postings[j.index()].iter().map(|&(_, t)| t.get()));
            let (sum, count) = policy.subject_sum(&mut scratch);
            self.sums[j.index()] = sum;
            self.counts[j.index()] = count;
        }
        refreshed
    }

    /// Cached per-subject robust sums (valid after
    /// [`refresh`](Self::refresh)).
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Cached per-subject robust report counts (the paper's `N_d`).
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// One subject's cached `(sum, count)`.
    pub fn aggregate(&self, j: NodeId) -> (f64, usize) {
        (self.sums[j.index()], self.counts[j.index()])
    }

    /// Subjects touched since the last refresh (unsorted).
    pub fn pending_dirty(&self) -> &[NodeId] {
        &self.dirty_list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tv(v: f64) -> TrustValue {
        TrustValue::saturating(v)
    }

    fn row_of(m: &TrustMatrix, i: NodeId) -> Vec<(NodeId, TrustValue)> {
        m.row(i).collect()
    }

    #[test]
    fn diff_then_refresh_tracks_inserts_overwrites_and_removes() {
        let policy = RobustAggregation::none();
        let n = 4;
        let mut m = TrustMatrix::new(n);
        let mut cache = SubjectAggregateCache::new(n);

        let r0 = vec![(NodeId(1), tv(0.5)), (NodeId(3), tv(0.2))];
        cache.apply_row_diff(NodeId(0), &row_of(&m, NodeId(0)), &r0);
        m.replace_rows(&[(NodeId(0), r0)]).unwrap();
        assert_eq!(
            cache.refresh(&policy),
            vec![NodeId(1), NodeId(3)],
            "both rated subjects refresh"
        );

        // Overwrite one subject, drop the other, add a third.
        let r0b = vec![(NodeId(1), tv(0.9)), (NodeId(2), tv(0.4))];
        cache.apply_row_diff(NodeId(0), &row_of(&m, NodeId(0)), &r0b);
        m.replace_rows(&[(NodeId(0), r0b)]).unwrap();
        assert_eq!(
            cache.refresh(&policy),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );

        let (sums, counts) = m.robust_subject_sums_and_counts(&policy);
        assert_eq!(cache.sums(), &sums[..]);
        assert_eq!(cache.counts(), &counts[..]);
        assert_eq!(cache.aggregate(NodeId(3)), (0.0, 0));
    }

    #[test]
    fn identical_replacement_marks_nothing_dirty() {
        let mut cache = SubjectAggregateCache::new(3);
        let run = vec![(NodeId(0), tv(0.3)), (NodeId(2), tv(0.7))];
        cache.apply_row_diff(NodeId(1), &[], &run);
        cache.refresh(&RobustAggregation::none());
        cache.apply_row_diff(NodeId(1), &run, &run);
        assert!(cache.pending_dirty().is_empty());
        assert!(cache.refresh(&RobustAggregation::none()).is_empty());
    }

    #[test]
    fn rebuild_matches_from_scratch() {
        let mut m = TrustMatrix::new(5);
        m.set(NodeId(4), NodeId(0), tv(0.9)).unwrap();
        m.set(NodeId(0), NodeId(4), tv(0.3)).unwrap();
        m.set(NodeId(2), NodeId(4), tv(0.7)).unwrap();
        for policy in [RobustAggregation::none(), RobustAggregation::defended()] {
            let mut cache = SubjectAggregateCache::new(5);
            cache.rebuild_from(&m);
            cache.refresh(&policy);
            let (sums, counts) = m.robust_subject_sums_and_counts(&policy);
            assert_eq!(cache.sums(), &sums[..]);
            assert_eq!(cache.counts(), &counts[..]);
        }
    }

    proptest! {
        /// Delta-applied aggregates equal from-scratch aggregates —
        /// **bit-for-bit** — on random row-replacement sequences with
        /// interleaved refreshes, under both the plain and the
        /// defended robust policy. This is the contract that lets the
        /// incremental engine skip clean subjects entirely.
        #[test]
        fn delta_aggregates_match_scratch_bitwise(
            steps in proptest::collection::vec(
                (0u32..6, proptest::collection::vec((0u32..6, 0.0..1.0f64), 0..5), 0u8..2),
                1..40,
            ),
            defended in 0u8..2,
        ) {
            let n = 6;
            let policy = if defended == 1 {
                RobustAggregation::defended()
            } else {
                RobustAggregation::none()
            };
            let mut m = TrustMatrix::new(n);
            let mut cache = SubjectAggregateCache::new(n);

            for (observer, raw_run, refresh_now) in steps {
                let observer = NodeId(observer);
                // Sorted, deduplicated replacement run (last write wins).
                let mut run: Vec<(NodeId, TrustValue)> = Vec::new();
                let mut sorted = raw_run;
                sorted.sort_by_key(|&(j, _)| j);
                for (j, v) in sorted {
                    match run.last_mut() {
                        Some(last) if last.0 == NodeId(j) => last.1 = tv(v),
                        _ => run.push((NodeId(j), tv(v))),
                    }
                }
                let old: Vec<_> = m.row(observer).collect();
                cache.apply_row_diff(observer, &old, &run);
                m.replace_rows(&[(observer, run)]).unwrap();
                if refresh_now == 1 {
                    cache.refresh(&policy);
                }
            }

            cache.refresh(&policy);
            let (sums, counts) = m.robust_subject_sums_and_counts(&policy);
            prop_assert_eq!(cache.counts(), &counts[..]);
            for (j, sum) in sums.iter().enumerate().take(n) {
                prop_assert_eq!(
                    cache.sums()[j].to_bits(),
                    sum.to_bits(),
                    "subject {} diverged",
                    j
                );
            }
        }
    }
}
