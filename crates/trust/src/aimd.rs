//! BLUE-inspired AIMD trust estimator.
//!
//! The paper delegates trust *estimation* to the authors' earlier work
//! "Trust estimation in peer-to-peer network using BLUE" (its reference
//! \[20\]), which adapts the BLUE queue-management idea: instead of
//! tracking a statistic of the outcome stream directly, maintain the
//! estimate as a control variable nudged by *events* — additive increase
//! on sustained good service, multiplicative decrease on failures. The
//! result reacts fast to betrayal (a single refusal costs a constant
//! fraction) but forgives slowly (rebuilding trust is linear), the
//! asymmetry most reputation systems want.

use crate::estimator::{TransactionOutcome, TrustEstimator};
use crate::value::TrustValue;
use serde::{Deserialize, Serialize};

/// Parameters of the AIMD rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AimdParams {
    /// Additive increment applied per successful transaction.
    pub increase: f64,
    /// Multiplicative factor applied on a failed/refused transaction
    /// (`0 < decrease < 1`).
    pub decrease: f64,
    /// Quality threshold separating success from failure.
    pub success_threshold: f64,
}

impl Default for AimdParams {
    fn default() -> Self {
        Self {
            increase: 0.05,
            decrease: 0.5,
            success_threshold: 0.5,
        }
    }
}

impl AimdParams {
    /// Validated constructor.
    pub fn new(increase: f64, decrease: f64, success_threshold: f64) -> Option<Self> {
        let ok = increase.is_finite()
            && increase > 0.0
            && decrease.is_finite()
            && (0.0..1.0).contains(&decrease)
            && (0.0..=1.0).contains(&success_threshold);
        ok.then_some(Self {
            increase,
            decrease,
            success_threshold,
        })
    }
}

/// BLUE-style AIMD estimator: slow additive trust growth, fast
/// multiplicative collapse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AimdEstimator {
    params: AimdParams,
    value: TrustValue,
    count: u64,
}

impl AimdEstimator {
    /// Fresh estimator at the anti-whitewash initial value 0.
    pub fn new(params: AimdParams) -> Self {
        Self {
            params,
            value: TrustValue::ZERO,
            count: 0,
        }
    }

    /// Start from a non-zero prior.
    pub fn with_initial(params: AimdParams, initial: TrustValue) -> Self {
        Self {
            params,
            value: initial,
            count: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> AimdParams {
        self.params
    }
}

impl Default for AimdEstimator {
    fn default() -> Self {
        Self::new(AimdParams::default())
    }
}

impl TrustEstimator for AimdEstimator {
    fn record(&mut self, outcome: TransactionOutcome) {
        let q = outcome.quality();
        let next = if q >= self.params.success_threshold {
            // Additive increase, scaled by how good the service was so a
            // barely-passing transaction builds trust slower than a
            // perfect one.
            self.value.get() + self.params.increase * q
        } else {
            self.value.get() * self.params.decrease
        };
        self.value = TrustValue::saturating(next);
        self.count += 1;
    }

    fn estimate(&self) -> TrustValue {
        self.value
    }

    fn transactions(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn served(q: f64) -> TransactionOutcome {
        TransactionOutcome::Served { quality: q }
    }

    #[test]
    fn params_validation() {
        assert!(AimdParams::new(0.05, 0.5, 0.5).is_some());
        assert!(AimdParams::new(0.0, 0.5, 0.5).is_none());
        assert!(AimdParams::new(0.05, 1.0, 0.5).is_none());
        assert!(AimdParams::new(0.05, -0.1, 0.5).is_none());
        assert!(AimdParams::new(f64::NAN, 0.5, 0.5).is_none());
        assert!(AimdParams::new(0.05, 0.5, 1.5).is_none());
    }

    #[test]
    fn trust_builds_linearly() {
        let mut e = AimdEstimator::default();
        for _ in 0..10 {
            e.record(served(1.0));
        }
        // 10 × 0.05 × 1.0 = 0.5.
        assert!((e.estimate().get() - 0.5).abs() < 1e-12);
        assert_eq!(e.transactions(), 10);
    }

    #[test]
    fn one_refusal_halves_trust() {
        let mut e =
            AimdEstimator::with_initial(AimdParams::default(), TrustValue::new(0.8).unwrap());
        e.record(TransactionOutcome::Refused);
        assert!((e.estimate().get() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn betrayal_is_costlier_than_recovery() {
        // Climbing back after a refusal takes many good transactions —
        // the asymmetry that deters oscillating free riders.
        let mut e =
            AimdEstimator::with_initial(AimdParams::default(), TrustValue::new(0.8).unwrap());
        e.record(TransactionOutcome::Refused);
        let dropped = e.estimate().get();
        let mut recover = 0;
        while e.estimate().get() < 0.8 {
            e.record(served(1.0));
            recover += 1;
        }
        assert!(dropped < 0.5);
        assert!(recover >= 8, "recovered in only {recover} transactions");
    }

    #[test]
    fn saturates_at_one() {
        let mut e = AimdEstimator::default();
        for _ in 0..100 {
            e.record(served(1.0));
        }
        assert_eq!(e.estimate(), TrustValue::ONE);
    }

    proptest! {
        #[test]
        fn estimate_always_in_unit_interval(
            qualities in proptest::collection::vec(-0.5f64..1.5, 0..60),
        ) {
            let mut e = AimdEstimator::default();
            for q in qualities {
                let o = if q < 0.0 { TransactionOutcome::Refused } else { served(q) };
                e.record(o);
                prop_assert!((0.0..=1.0).contains(&e.estimate().get()));
            }
        }
    }
}
