//! Transaction-outcome driven trust estimation.
//!
//! The paper assumes every node "periodically calculates the trust value of
//! the other nodes on the basis of quality of service provided by them
//! against the requests made", delegating the estimator itself to the
//! authors' earlier BLUE work \[20\], for which no trace data is published.
//! We substitute two standard estimators that exercise the same code path
//! (per-edge online updates producing `t_ij ∈ [0, 1]`):
//!
//! * [`EwmaEstimator`] — exponentially weighted moving average of outcome
//!   quality, the common choice in P2P trust systems;
//! * [`BetaEstimator`] — Beta-posterior mean `(s + 1)/(s + f + 2)` over
//!   success/failure counts (Jøsang-style), which naturally encodes the
//!   number of transactions as confidence.

use crate::value::TrustValue;
use serde::{Deserialize, Serialize};

/// Outcome of a single transaction (a chunk upload in the file-sharing
/// model), as judged by the downloader.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransactionOutcome {
    /// The provider served the request; `quality ∈ [0, 1]` reflects QoS
    /// (bandwidth granted, chunk validity, ...).
    Served {
        /// Quality-of-service score of the transaction.
        quality: f64,
    },
    /// The provider refused or failed to serve (free-riding behaviour).
    Refused,
}

impl TransactionOutcome {
    /// The quality signal of the outcome: `quality` for served (clamped),
    /// 0 for refused.
    pub fn quality(self) -> f64 {
        match self {
            TransactionOutcome::Served { quality } => {
                if quality.is_nan() {
                    0.0
                } else {
                    quality.clamp(0.0, 1.0)
                }
            }
            TransactionOutcome::Refused => 0.0,
        }
    }

    /// Whether the transaction counts as a success for the Beta estimator
    /// (served with quality ≥ 0.5).
    pub fn is_success(self) -> bool {
        self.quality() >= 0.5
    }
}

/// An online trust estimator fed by transaction outcomes.
pub trait TrustEstimator {
    /// Incorporate one outcome.
    fn record(&mut self, outcome: TransactionOutcome);

    /// Current estimate `t_ij`.
    fn estimate(&self) -> TrustValue;

    /// Number of transactions observed so far.
    fn transactions(&self) -> u64;
}

/// Exponentially-weighted moving average of transaction quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaEstimator {
    value: TrustValue,
    rate: f64,
    count: u64,
}

impl EwmaEstimator {
    /// New estimator starting at the anti-whitewash initial value 0 with
    /// the given learning rate (clamped to `[0, 1]`).
    pub fn new(rate: f64) -> Self {
        Self {
            value: TrustValue::ZERO,
            rate: if rate.is_nan() {
                0.0
            } else {
                rate.clamp(0.0, 1.0)
            },
            count: 0,
        }
    }

    /// Start from a non-default prior (e.g. a dynamically adjusted
    /// whitewash level, which the paper mentions but does not study).
    pub fn with_initial(rate: f64, initial: TrustValue) -> Self {
        let mut e = Self::new(rate);
        e.value = initial;
        e
    }

    /// The learning rate (needed to checkpoint the estimator).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Rebuild an estimator from checkpointed parts, bit for bit: the
    /// `rate` is stored as given (a checkpointed rate was already
    /// clamped by [`new`](Self::new) when the estimator was first
    /// built), and `value`/`count` are taken verbatim, so a
    /// snapshot/restore round-trip reproduces the exact estimator
    /// state.
    pub fn from_parts(rate: f64, value: TrustValue, count: u64) -> Self {
        Self { value, rate, count }
    }
}

impl Default for EwmaEstimator {
    fn default() -> Self {
        Self::new(0.3)
    }
}

impl TrustEstimator for EwmaEstimator {
    fn record(&mut self, outcome: TransactionOutcome) {
        self.value = self
            .value
            .blend_towards(TrustValue::saturating(outcome.quality()), self.rate);
        self.count += 1;
    }

    fn estimate(&self) -> TrustValue {
        self.value
    }

    fn transactions(&self) -> u64 {
        self.count
    }
}

/// Beta-posterior mean estimator: `t = (s + 1) / (s + f + 2)` where `s`
/// and `f` are weighted success/failure masses.
///
/// Unlike the raw Jøsang form, the observed quality contributes
/// fractionally: a transaction of quality `q` adds `q` to `s` and
/// `1 − q` to `f`, so QoS grades below/above the 0.5 threshold still move
/// the estimate proportionally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BetaEstimator {
    successes: f64,
    failures: f64,
    count: u64,
}

impl BetaEstimator {
    /// Fresh estimator (estimate starts at the indifferent 0.5; combine
    /// with [`TrustMatrix::get_or_zero`](crate::TrustMatrix::get_or_zero)
    /// semantics if a zero prior is required).
    pub fn new() -> Self {
        Self::default()
    }

    /// The (s, f) masses, mostly for diagnostics.
    pub fn masses(&self) -> (f64, f64) {
        (self.successes, self.failures)
    }
}

impl TrustEstimator for BetaEstimator {
    fn record(&mut self, outcome: TransactionOutcome) {
        let q = outcome.quality();
        self.successes += q;
        self.failures += 1.0 - q;
        self.count += 1;
    }

    fn estimate(&self) -> TrustValue {
        TrustValue::saturating((self.successes + 1.0) / (self.successes + self.failures + 2.0))
    }

    fn transactions(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn served(q: f64) -> TransactionOutcome {
        TransactionOutcome::Served { quality: q }
    }

    #[test]
    fn outcome_quality_clamps() {
        assert_eq!(served(2.0).quality(), 1.0);
        assert_eq!(served(-1.0).quality(), 0.0);
        assert_eq!(served(f64::NAN).quality(), 0.0);
        assert_eq!(TransactionOutcome::Refused.quality(), 0.0);
        assert!(served(0.9).is_success());
        assert!(!TransactionOutcome::Refused.is_success());
    }

    #[test]
    fn ewma_rises_with_good_service() {
        let mut e = EwmaEstimator::new(0.5);
        assert_eq!(e.estimate(), TrustValue::ZERO);
        for _ in 0..20 {
            e.record(served(1.0));
        }
        assert!(e.estimate().get() > 0.99);
        assert_eq!(e.transactions(), 20);
    }

    #[test]
    fn ewma_falls_after_refusals() {
        let mut e = EwmaEstimator::with_initial(0.5, TrustValue::ONE);
        for _ in 0..20 {
            e.record(TransactionOutcome::Refused);
        }
        assert!(e.estimate().get() < 0.01);
    }

    #[test]
    fn beta_estimator_converges_to_quality() {
        let mut e = BetaEstimator::new();
        for _ in 0..1000 {
            e.record(served(0.8));
        }
        assert!((e.estimate().get() - 0.8).abs() < 0.01);
        assert_eq!(e.transactions(), 1000);
    }

    #[test]
    fn beta_prior_is_indifferent() {
        let e = BetaEstimator::new();
        assert_eq!(e.estimate(), TrustValue::HALF);
    }

    #[test]
    fn beta_refusals_push_to_zero() {
        let mut e = BetaEstimator::new();
        for _ in 0..100 {
            e.record(TransactionOutcome::Refused);
        }
        assert!(e.estimate().get() < 0.02);
    }

    proptest! {
        #[test]
        fn estimates_always_in_range(qualities in proptest::collection::vec(-1.0..2.0f64, 0..50)) {
            let mut ewma = EwmaEstimator::default();
            let mut beta = BetaEstimator::new();
            for q in qualities {
                let o = if q < 0.0 { TransactionOutcome::Refused } else { served(q) };
                ewma.record(o);
                beta.record(o);
                prop_assert!((0.0..=1.0).contains(&ewma.estimate().get()));
                prop_assert!((0.0..=1.0).contains(&beta.estimate().get()));
            }
        }
    }
}
