//! Read-side reputation snapshots: an immutable per-round view with an
//! incremental rank index, plus the publish cell the serve layer reads
//! through.
//!
//! The round engines aggregate into per-observer state; what a service
//! answers queries from is the network-wide view — each subject's mean
//! aggregated reputation over the observers holding one. A
//! [`ReputationSnapshot`] freezes that view for one *completed* round:
//! point lookups ([`reputation`](ReputationSnapshot::reputation)) are
//! `O(1)`, and ranked queries ([`top_k`](ReputationSnapshot::top_k),
//! [`percentile`](ReputationSnapshot::percentile)) go through a
//! [`RankIndex`] — the scored subjects sorted by `(reputation bits,
//! subject)`. Between consecutive rounds only the subjects whose mean
//! moved re-sort: [`ReputationSnapshot::next_round`] diffs bitwise
//! against the previous snapshot and rebuilds the index with one merge
//! pass, `O(N + d log d)` for `d` moved subjects instead of a full
//! `O(N log N)` sort — and yields the exact index a from-scratch build
//! produces (pinned by proptest in `dg-serve`).
//!
//! [`SnapshotCell`] is the double-buffered hand-off: the engine builds
//! the next snapshot off to the side (its "back buffer") and publishes
//! it as one pointer store; readers clone an `Arc` to the current
//! front buffer and keep it for as long as they like. A reader can
//! never observe a half-published round — it holds either the old
//! snapshot or the new one, whole.

use std::sync::{Arc, RwLock};

use dg_graph::NodeId;

/// Map an `f64` to a `u64` whose unsigned order matches the float's
/// total order (negative floats invert; reputations are `[0, 1]`, but
/// the index stays correct for any finite input).
fn orderable_bits(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Total order of the rank index: descending reputation bits, ties
/// toward the smaller subject id — i.e. the order `top_k` answers in.
fn rank_cmp(a: &(u64, u32), b: &(u64, u32)) -> std::cmp::Ordering {
    b.0.cmp(&a.0).then(a.1.cmp(&b.1))
}

/// Scored subjects sorted by descending reputation (ties toward the
/// smaller subject id) — the ranked-query half of a snapshot.
/// Deterministic: the order compares raw bits, so it is identical on
/// every build of the same round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankIndex {
    /// `(orderable reputation bits, subject)` in [`rank_cmp`] order.
    keys: Vec<(u64, u32)>,
}

impl RankIndex {
    /// Build from scratch: sort every scored subject.
    pub fn build(reps: &[Option<f64>]) -> Self {
        let mut keys: Vec<(u64, u32)> = reps
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|r| (orderable_bits(r), i as u32)))
            .collect();
        keys.sort_unstable_by(rank_cmp);
        Self { keys }
    }

    /// Rebuild incrementally: drop `removed`, merge in `added` (both
    /// in [`rank_cmp`] order). One pass over the old index.
    fn merge(&self, removed: &[(u64, u32)], added: &[(u64, u32)]) -> Self {
        let mut keys = Vec::with_capacity(self.keys.len() + added.len() - removed.len());
        let mut rem = removed.iter().peekable();
        let mut add = added.iter().peekable();
        for &key in &self.keys {
            if rem.peek().is_some_and(|&&r| r == key) {
                rem.next();
                continue;
            }
            while add.peek().is_some_and(|&&a| rank_cmp(&a, &key).is_lt()) {
                keys.push(*add.next().expect("peeked"));
            }
            keys.push(key);
        }
        keys.extend(add.copied());
        debug_assert!(rem.peek().is_none(), "removal missing from the index");
        Self { keys }
    }

    /// Number of scored subjects.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// No scored subjects yet?
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// One completed round's network-wide reputation view (see the module
/// docs).
#[derive(Debug, Clone)]
pub struct ReputationSnapshot {
    round: u64,
    /// `reps[subject]` — mean aggregated reputation over the observers
    /// holding a view of `subject`; `None` while unscored.
    reps: Vec<Option<f64>>,
    rank: RankIndex,
}

impl ReputationSnapshot {
    /// An empty pre-first-round snapshot for `n` subjects (round 0,
    /// nobody scored).
    pub fn empty(n: usize) -> Self {
        Self {
            round: 0,
            reps: vec![None; n],
            rank: RankIndex { keys: Vec::new() },
        }
    }

    /// Build a snapshot from scratch (full sort) — the reference path,
    /// and the first-round path.
    pub fn build(round: u64, reps: Vec<Option<f64>>) -> Self {
        let rank = RankIndex::build(&reps);
        Self { round, reps, rank }
    }

    /// Build the next round's snapshot from this one: subjects whose
    /// mean is bitwise unchanged keep their index position for free,
    /// only moved subjects re-sort (`O(N + d log d)`), and the result
    /// is identical to [`build`](Self::build) over the same inputs.
    pub fn next_round(&self, round: u64, reps: Vec<Option<f64>>) -> Self {
        assert_eq!(
            reps.len(),
            self.reps.len(),
            "snapshot subject count is fixed for a run"
        );
        let mut removed = Vec::new();
        let mut added = Vec::new();
        for (i, (old, new)) in self.reps.iter().zip(&reps).enumerate() {
            let old_bits = old.map(|r| r.to_bits());
            let new_bits = new.map(|r| r.to_bits());
            if old_bits == new_bits {
                continue;
            }
            if let Some(r) = old {
                removed.push((orderable_bits(*r), i as u32));
            }
            if let Some(r) = new {
                added.push((orderable_bits(*r), i as u32));
            }
        }
        removed.sort_unstable_by(rank_cmp);
        added.sort_unstable_by(rank_cmp);
        let rank = self.rank.merge(&removed, &added);
        Self { round, reps, rank }
    }

    /// The completed round this snapshot describes (0 = none yet).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of subjects (scored or not).
    pub fn subject_count(&self) -> usize {
        self.reps.len()
    }

    /// Number of scored subjects.
    pub fn scored_count(&self) -> usize {
        self.rank.len()
    }

    /// The subject's network-wide mean reputation, `None` while no
    /// observer holds a view of it.
    pub fn reputation(&self, subject: NodeId) -> Option<f64> {
        self.reps.get(subject.index()).copied().flatten()
    }

    /// The `k` highest-reputation subjects, descending; ties break
    /// toward the smaller subject id. Fewer than `k` when fewer are
    /// scored.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        self.rank
            .keys
            .iter()
            .take(k)
            .map(|&(_, subject)| {
                let id = NodeId(subject);
                let rep = self.reps[subject as usize].expect("indexed subjects are scored");
                (id, rep)
            })
            .collect()
    }

    /// Nearest-rank percentile over the scored subjects: the smallest
    /// scored reputation such that at least `p` of the scored mass is
    /// at or below it (`p` in `[0, 1]`; `p = 0` gives the minimum,
    /// `p = 1` the maximum). `None` while nothing is scored or `p` is
    /// out of range / NaN.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&p) || self.rank.is_empty() {
            return None;
        }
        let m = self.rank.len();
        let rank = ((p * m as f64).ceil() as usize).clamp(1, m);
        // The index runs descending, so the rank-th *smallest* scored
        // value sits rank entries from the back.
        let (_, subject) = self.rank.keys[m - rank];
        self.reps[subject as usize]
    }
}

/// The engine→reader hand-off slot: readers [`load`](Self::load) an
/// `Arc` to the front snapshot without ever blocking the engine's
/// [`publish`](Self::publish), which replaces the front pointer in one
/// store. (The `RwLock` guards only the pointer: writers hold it for
/// one `Arc` move, readers for one `Arc` clone — no reader ever holds
/// it across a query.)
#[derive(Debug)]
pub struct SnapshotCell {
    front: RwLock<Arc<ReputationSnapshot>>,
}

impl SnapshotCell {
    /// A cell starting from the empty pre-first-round snapshot.
    pub fn new(subjects: usize) -> Self {
        Self {
            front: RwLock::new(Arc::new(ReputationSnapshot::empty(subjects))),
        }
    }

    /// Publish a completed round's snapshot: one pointer swap. The
    /// previous front stays alive for readers still holding it.
    pub fn publish(&self, snapshot: ReputationSnapshot) {
        *self.front.write().expect("snapshot lock poisoned") = Arc::new(snapshot);
    }

    /// Clone the current front snapshot; every answer derived from the
    /// clone is internally consistent (one round, whole).
    pub fn load(&self) -> Arc<ReputationSnapshot> {
        Arc::clone(&self.front.read().expect("snapshot lock poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reps(vals: &[(usize, f64)], n: usize) -> Vec<Option<f64>> {
        let mut out = vec![None; n];
        for &(i, v) in vals {
            out[i] = Some(v);
        }
        out
    }

    #[test]
    fn top_k_orders_descending_with_id_ties() {
        let snap = ReputationSnapshot::build(1, reps(&[(0, 0.5), (1, 0.9), (2, 0.5), (3, 0.1)], 5));
        assert_eq!(
            snap.top_k(3),
            vec![(NodeId(1), 0.9), (NodeId(0), 0.5), (NodeId(2), 0.5)]
        );
        assert_eq!(snap.top_k(10).len(), 4);
    }

    #[test]
    fn percentile_nearest_rank() {
        let snap = ReputationSnapshot::build(1, reps(&[(0, 0.1), (1, 0.2), (2, 0.3), (3, 0.4)], 4));
        assert_eq!(snap.percentile(0.0), Some(0.1));
        assert_eq!(snap.percentile(0.25), Some(0.1));
        assert_eq!(snap.percentile(0.5), Some(0.2));
        assert_eq!(snap.percentile(0.75), Some(0.3));
        assert_eq!(snap.percentile(1.0), Some(0.4));
        assert_eq!(snap.percentile(1.5), None);
        assert_eq!(snap.percentile(f64::NAN), None);
    }

    #[test]
    fn incremental_matches_from_scratch() {
        let n = 64;
        let first: Vec<Option<f64>> = (0..n)
            .map(|i| (i % 3 != 0).then(|| (i as f64 * 0.7).sin().abs()))
            .collect();
        let snap = ReputationSnapshot::build(1, first.clone());
        // Move some, unscore some, newly score some.
        let mut second = first;
        second[1] = Some(0.99);
        second[2] = None;
        second[3] = Some(0.01);
        second[10] = Some(0.5);
        second[11] = Some(0.5);
        let inc = snap.next_round(2, second.clone());
        let scratch = ReputationSnapshot::build(2, second);
        assert_eq!(inc.rank, scratch.rank);
        assert_eq!(inc.round(), 2);
        assert_eq!(inc.top_k(n), scratch.top_k(n));
    }

    #[test]
    fn cell_swaps_whole_snapshots() {
        let cell = SnapshotCell::new(4);
        assert_eq!(cell.load().round(), 0);
        assert_eq!(cell.load().scored_count(), 0);
        let held = cell.load();
        cell.publish(ReputationSnapshot::build(1, reps(&[(2, 0.8)], 4)));
        // The pre-publish clone still reads its own round coherently.
        assert_eq!(held.round(), 0);
        assert_eq!(held.reputation(NodeId(2)), None);
        let now = cell.load();
        assert_eq!(now.round(), 1);
        assert_eq!(now.reputation(NodeId(2)), Some(0.8));
    }
}
