//! The sparse trust matrix `t` of Section 4.
//!
//! "For the whole network, we can define a trust matrix of dimensions
//! N × N. Here `t_ij` represents the trust value of j as maintained by i
//! based on direct interaction. This matrix is generally sparse" — each
//! node only transacts with a handful of neighbours. Rows are the
//! *observer* (opining node) `i`, columns the *subject* `j`.
//!
//! Three storage backends share this API:
//!
//! * **Dynamic** — one ordered map per row; cheap point mutation, the
//!   default for interactive construction;
//! * **CSR** — sorted `(column, value)` runs over a single arena `Vec`
//!   (see [`crate::csr`]); contiguous row scans and binary-search point
//!   lookups for the aggregation hot path. Freeze a built matrix with
//!   [`TrustMatrix::freeze`] or bulk-build one via [`TrustMatrix::builder`];
//! * **Sharded** — contiguous row ranges, one shard-local CSR each (see
//!   [`crate::sharded`]); the million-node backend whose shards build
//!   independently on a thread pool. Bulk-build via
//!   [`TrustMatrix::sharded_builder`] or wrap with
//!   [`TrustMatrix::from_sharded`].
//!
//! Rows *and* columns are addressed by [`NodeId`] throughout — raw `u32`
//! indices never cross the API boundary.

use crate::csr::{CsrBuilder, CsrStorage};
use crate::error::TrustError;
use crate::sharded::{ShardSpec, ShardedCsr, ShardedCsrBuilder};
use crate::value::TrustValue;
use dg_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Storage {
    Dynamic(Vec<BTreeMap<NodeId, TrustValue>>),
    Csr(CsrStorage),
    Sharded(ShardedCsr),
}

/// Sparse `N × N` matrix of direct-interaction trust values.
///
/// Iteration order is deterministic under both backends, which keeps
/// gossip experiments reproducible. Equality is *logical*: a frozen and
/// a dynamic matrix with the same entries compare equal.
///
/// ```
/// use dg_graph::NodeId;
/// use dg_trust::{TrustMatrix, TrustValue};
///
/// let mut t = TrustMatrix::new(3);
/// t.set(NodeId(0), NodeId(1), TrustValue::new(0.8)?)?;
/// t.set(NodeId(1), NodeId(2), TrustValue::new(0.4)?)?;
/// assert_eq!(t.get(NodeId(0), NodeId(1)).map(|v| v.get()), Some(0.8));
/// assert_eq!(t.get(NodeId(2), NodeId(0)), None);
///
/// // Freeze into the flat CSR backend for the aggregation hot path;
/// // the contents — and equality — are unchanged.
/// let mut frozen = t.clone();
/// frozen.freeze();
/// assert!(frozen.is_csr());
/// assert_eq!(frozen, t);
/// assert_eq!(frozen.entry_count(), 2);
/// # Ok::<(), dg_trust::TrustError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrustMatrix {
    n: usize,
    storage: Storage,
}

impl TrustMatrix {
    /// Empty matrix for `n` nodes (dynamic backend).
    pub fn new(n: usize) -> Self {
        Self {
            n,
            storage: Storage::Dynamic(vec![BTreeMap::new(); n]),
        }
    }

    /// Bulk builder for the mutable phase; [`CsrBuilder::build`] plus
    /// [`TrustMatrix::from_csr`] produce a frozen matrix directly.
    pub fn builder(n: usize) -> CsrBuilder {
        CsrBuilder::new(n)
    }

    /// Wrap frozen CSR storage.
    pub fn from_csr(csr: CsrStorage) -> Self {
        Self {
            n: csr.node_count(),
            storage: Storage::Csr(csr),
        }
    }

    /// Wrap frozen sharded storage.
    pub fn from_sharded(sharded: ShardedCsr) -> Self {
        Self {
            n: sharded.node_count(),
            storage: Storage::Sharded(sharded),
        }
    }

    /// Bulk builder routing rows onto per-shard rectangular CSR
    /// builders; [`ShardedCsrBuilder::build`] plus
    /// [`TrustMatrix::from_sharded`] produce a sharded matrix directly.
    pub fn sharded_builder(spec: ShardSpec) -> ShardedCsrBuilder {
        ShardedCsrBuilder::new(spec)
    }

    /// Whether the matrix currently uses the flat CSR backend.
    pub fn is_csr(&self) -> bool {
        matches!(self.storage, Storage::Csr(_))
    }

    /// Whether the matrix currently uses the sharded CSR backend.
    pub fn is_sharded(&self) -> bool {
        matches!(self.storage, Storage::Sharded(_))
    }

    /// The sharded backend's partition (`None` on flat backends).
    pub fn shard_spec(&self) -> Option<ShardSpec> {
        match &self.storage {
            Storage::Sharded(sharded) => Some(sharded.spec()),
            _ => None,
        }
    }

    /// Compact into the flat CSR backend (no-op when already frozen).
    /// Merging a sharded matrix concatenates the shard arenas in row
    /// order — the result is exactly the arena one big builder would
    /// have produced.
    pub fn freeze(&mut self) {
        match &mut self.storage {
            Storage::Dynamic(rows) => {
                let mut builder = CsrBuilder::new(self.n);
                for (i, row) in std::mem::take(rows).into_iter().enumerate() {
                    builder
                        .extend_row(NodeId(i as u32), row)
                        .expect("dynamic rows are in range");
                }
                self.storage = Storage::Csr(builder.build());
            }
            Storage::Sharded(sharded) => {
                let sharded = std::mem::replace(sharded, ShardedCsr::new(ShardSpec::new(0, 1)));
                self.storage = Storage::Csr(sharded.into_flat());
            }
            Storage::Csr(_) => {}
        }
    }

    /// Re-partition into the sharded backend (from any backend).
    ///
    /// # Panics
    /// Panics when `spec` does not cover exactly this matrix's
    /// dimension — a shard partition is meaningless for any other `N`.
    pub fn shard(&mut self, spec: ShardSpec) {
        assert_eq!(
            spec.node_count(),
            self.n,
            "shard spec covers {} rows but the matrix has {}",
            spec.node_count(),
            self.n
        );
        let mut builder = ShardedCsrBuilder::new(spec);
        if let Storage::Dynamic(rows) = &mut self.storage {
            // Consume dynamic rows as they are routed so the source
            // and the sharded copy never fully coexist (the substrate
            // of a million-node scenario would otherwise transiently
            // double).
            for (i, row) in rows.iter_mut().enumerate() {
                builder
                    .extend_row(NodeId(i as u32), std::mem::take(row))
                    .expect("existing rows are in range");
            }
        } else {
            for i in 0..self.n as u32 {
                builder
                    .extend_row(NodeId(i), self.row(NodeId(i)))
                    .expect("existing rows are in range");
            }
        }
        self.storage = Storage::Sharded(builder.build());
    }

    /// Convert back to the dynamic backend (no-op when already dynamic).
    pub fn thaw(&mut self) {
        match &self.storage {
            Storage::Csr(csr) => {
                let rows = (0..self.n)
                    .map(|i| csr.row(NodeId(i as u32)).iter().copied().collect())
                    .collect();
                self.storage = Storage::Dynamic(rows);
            }
            Storage::Sharded(sharded) => {
                let rows = (0..self.n)
                    .map(|i| sharded.row(NodeId(i as u32)).iter().copied().collect())
                    .collect();
                self.storage = Storage::Dynamic(rows);
            }
            Storage::Dynamic(_) => {}
        }
    }

    /// Dimension `N`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    fn check(&self, id: NodeId) -> Result<(), TrustError> {
        if id.index() >= self.n {
            return Err(TrustError::NodeOutOfRange {
                id: id.0,
                n: self.n,
            });
        }
        Ok(())
    }

    /// Set `t_ij` (observer `i`, subject `j`).
    ///
    /// On the CSR backend this splices the arena — fine for touch-ups;
    /// use [`TrustMatrix::builder`] for bulk loads.
    pub fn set(&mut self, i: NodeId, j: NodeId, t: TrustValue) -> Result<(), TrustError> {
        self.check(i)?;
        self.check(j)?;
        match &mut self.storage {
            Storage::Dynamic(rows) => {
                rows[i.index()].insert(j, t);
                Ok(())
            }
            Storage::Csr(csr) => csr.set(i, j, t),
            Storage::Sharded(sharded) => sharded.set(i, j, t),
        }
    }

    /// Remove an entry (e.g. the feedback of a peer not heard from for a
    /// long time, which the paper says should be dropped). Returns the old
    /// value if present.
    pub fn remove(&mut self, i: NodeId, j: NodeId) -> Option<TrustValue> {
        match &mut self.storage {
            Storage::Dynamic(rows) => rows.get_mut(i.index())?.remove(&j),
            Storage::Csr(csr) => csr.remove(i, j),
            Storage::Sharded(sharded) => sharded.remove(i, j),
        }
    }

    /// `t_ij`, or `None` when `i` has never interacted with `j`.
    pub fn get(&self, i: NodeId, j: NodeId) -> Option<TrustValue> {
        match &self.storage {
            Storage::Dynamic(rows) => rows.get(i.index())?.get(&j).copied(),
            Storage::Csr(csr) => csr.get(i, j),
            Storage::Sharded(sharded) => sharded.get(i, j),
        }
    }

    /// `t_ij` with the paper's default of 0 for unknown pairs
    /// (anti-whitewash initial value).
    pub fn get_or_zero(&self, i: NodeId, j: NodeId) -> TrustValue {
        self.get(i, j).unwrap_or(TrustValue::ZERO)
    }

    /// Whether observer `i` holds any opinion about `j`.
    pub fn has_opinion(&self, i: NodeId, j: NodeId) -> bool {
        self.get(i, j).is_some()
    }

    /// All opinions held by observer `i`, ordered by subject id.
    pub fn row(&self, i: NodeId) -> RowIter<'_> {
        match &self.storage {
            Storage::Dynamic(rows) => match rows.get(i.index()) {
                Some(row) => RowIter::Dynamic(row.iter()),
                None => RowIter::Empty,
            },
            Storage::Csr(csr) => RowIter::Csr(csr.row(i).iter()),
            Storage::Sharded(sharded) => RowIter::Csr(sharded.row(i).iter()),
        }
    }

    /// Number of opinions held by observer `i`.
    pub fn row_len(&self, i: NodeId) -> usize {
        match &self.storage {
            Storage::Dynamic(rows) => rows.get(i.index()).map_or(0, BTreeMap::len),
            Storage::Csr(csr) => csr.row(i).len(),
            Storage::Sharded(sharded) => sharded.row(i).len(),
        }
    }

    /// All opinions *about* subject `j` (a column scan; `O(N log d)`).
    pub fn column(&self, j: NodeId) -> Vec<(NodeId, TrustValue)> {
        (0..self.n as u32)
            .filter_map(|i| self.get(NodeId(i), j).map(|t| (NodeId(i), t)))
            .collect()
    }

    /// Number of nodes holding an opinion about `j` — the paper's `N_d`
    /// (nodes with direct interaction), gossiped as `count`.
    pub fn opinion_count(&self, j: NodeId) -> usize {
        (0..self.n as u32)
            .filter(|&i| self.has_opinion(NodeId(i), j))
            .count()
    }

    /// Total stored entries.
    pub fn entry_count(&self) -> usize {
        match &self.storage {
            Storage::Dynamic(rows) => rows.iter().map(BTreeMap::len).sum(),
            Storage::Csr(csr) => csr.entry_count(),
            Storage::Sharded(sharded) => sharded.entry_count(),
        }
    }

    /// Iterator over all `(i, j, t_ij)` triples in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeId, TrustValue)> + '_ {
        (0..self.n as u32)
            .flat_map(move |i| self.row(NodeId(i)).map(move |(j, t)| (NodeId(i), j, t)))
    }

    /// Mean of all opinions about `j` over the nodes that hold one —
    /// the converged value of the paper's Algorithm 1 gossip
    /// (`Σᵢ y_ij / Σᵢ g_ij` with `g = 1` for opinion holders).
    ///
    /// Returns `None` when nobody has interacted with `j`.
    pub fn mean_opinion(&self, j: NodeId) -> Option<f64> {
        let col = self.column(j);
        if col.is_empty() {
            return None;
        }
        Some(col.iter().map(|(_, t)| t.get()).sum::<f64>() / col.len() as f64)
    }

    /// Sum of all opinions about `j` — the converged `Y_j = Σᵢ t_ij` of
    /// Algorithm 2's single-originator gossip.
    pub fn opinion_sum(&self, j: NodeId) -> f64 {
        (0..self.n as u32)
            .filter_map(|i| self.get(NodeId(i), j))
            .map(TrustValue::get)
            .sum()
    }

    /// Per-subject `(Σᵢ t_ij, N_d)` for every subject in one row-major
    /// pass — `O(nnz)` instead of `N` column scans. Feeds the closed-form
    /// aggregation phase.
    ///
    /// Beyond one L2 tile of subjects the sweep runs cache-aware and
    /// parallel (see `crate::tiled`): entries are bucketed by subject
    /// tile and each tile reduces into SoA accumulators on the
    /// work-stealing pool. Bit-identical to the naive scatter at any
    /// thread count — bucketing preserves each subject's row-major
    /// report order and tiles own disjoint output ranges.
    pub fn subject_sums_and_counts(&self) -> (Vec<f64>, Vec<usize>) {
        crate::tiled::plain_sums(self.n, crate::tiled::SUBJECT_TILE, self.entries())
    }

    /// [`Self::subject_sums_and_counts`] under a
    /// [`RobustAggregation`](crate::RobustAggregation) policy: every
    /// report is clamped into the policy window and the most extreme
    /// `trim_fraction` of each subject's reports is dropped from each
    /// tail before summing. With [`RobustAggregation::none`](crate::RobustAggregation::none)
    /// this is bit-for-bit the plain computation. Deterministic: values
    /// are gathered row-major (so per subject in ascending observer
    /// order — the tiled sweep's stable counting sort preserves it; see
    /// `crate::tiled`) and handed to the shared per-subject kernel
    /// [`RobustAggregation::subject_sum`](crate::RobustAggregation::subject_sum),
    /// the same kernel the delta cache
    /// ([`SubjectAggregateCache`](crate::SubjectAggregateCache)) uses.
    pub fn robust_subject_sums_and_counts(
        &self,
        policy: &crate::robust::RobustAggregation,
    ) -> (Vec<f64>, Vec<usize>) {
        if policy.is_none() {
            return self.subject_sums_and_counts();
        }
        crate::tiled::robust_sums(self.n, crate::tiled::SUBJECT_TILE, policy, self.entries())
    }

    /// Replace whole observer rows in one pass — the incremental
    /// engine's bulk write path. `rows` must be sorted by ascending
    /// observer id with no duplicates; each replacement run must be
    /// sorted by ascending subject id (the order every backend stores
    /// rows in). On the CSR backends this rebuilds only the touched
    /// arenas (the flat arena, or just the shards owning a replaced
    /// row) instead of splicing entry by entry.
    pub fn replace_rows(
        &mut self,
        rows: &[(NodeId, Vec<(NodeId, TrustValue)>)],
    ) -> Result<(), TrustError> {
        for window in rows.windows(2) {
            if window[0].0 >= window[1].0 {
                return Err(TrustError::UnsortedRowReplacement { id: window[1].0 .0 });
            }
        }
        for (i, run) in rows {
            self.check(*i)?;
            for &(j, _) in run {
                self.check(j)?;
            }
            if run.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(TrustError::UnsortedRowReplacement { id: i.0 });
            }
        }
        match &mut self.storage {
            Storage::Dynamic(dyn_rows) => {
                for (i, run) in rows {
                    dyn_rows[i.index()] = run.iter().copied().collect();
                }
            }
            Storage::Csr(csr) => csr.replace_rows(rows),
            Storage::Sharded(sharded) => sharded.replace_rows(rows),
        }
        Ok(())
    }
}

/// Logical equality over entries, independent of backend.
impl PartialEq for TrustMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
            && self.entry_count() == other.entry_count()
            && self.entries().eq(other.entries())
    }
}

/// Row iterator over either backend.
#[derive(Debug, Clone)]
pub enum RowIter<'a> {
    /// Row of a dynamic matrix.
    Dynamic(std::collections::btree_map::Iter<'a, NodeId, TrustValue>),
    /// Row run of a CSR matrix.
    Csr(std::slice::Iter<'a, (NodeId, TrustValue)>),
    /// Out-of-range row.
    Empty,
}

impl Iterator for RowIter<'_> {
    type Item = (NodeId, TrustValue);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            RowIter::Dynamic(it) => it.next().map(|(&j, &t)| (j, t)),
            RowIter::Csr(it) => it.next().copied(),
            RowIter::Empty => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RowIter::Dynamic(it) => it.size_hint(),
            RowIter::Csr(it) => it.size_hint(),
            RowIter::Empty => (0, Some(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tv(v: f64) -> TrustValue {
        TrustValue::new(v).unwrap()
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = TrustMatrix::new(4);
        m.set(NodeId(0), NodeId(1), tv(0.8)).unwrap();
        assert_eq!(m.get(NodeId(0), NodeId(1)), Some(tv(0.8)));
        assert_eq!(m.get(NodeId(1), NodeId(0)), None);
        assert_eq!(m.get_or_zero(NodeId(1), NodeId(0)), TrustValue::ZERO);
    }

    #[test]
    fn out_of_range_rejected() {
        for frozen in [false, true] {
            let mut m = TrustMatrix::new(2);
            if frozen {
                m.freeze();
            }
            assert_eq!(
                m.set(NodeId(5), NodeId(0), tv(0.1)),
                Err(TrustError::NodeOutOfRange { id: 5, n: 2 })
            );
            assert_eq!(
                m.set(NodeId(0), NodeId(2), tv(0.1)),
                Err(TrustError::NodeOutOfRange { id: 2, n: 2 })
            );
        }
    }

    #[test]
    fn column_and_count() {
        let mut m = TrustMatrix::new(4);
        m.set(NodeId(0), NodeId(3), tv(0.5)).unwrap();
        m.set(NodeId(1), NodeId(3), tv(0.7)).unwrap();
        m.set(NodeId(2), NodeId(0), tv(0.9)).unwrap();
        let col = m.column(NodeId(3));
        assert_eq!(col, vec![(NodeId(0), tv(0.5)), (NodeId(1), tv(0.7))]);
        assert_eq!(m.opinion_count(NodeId(3)), 2);
        assert_eq!(m.opinion_count(NodeId(1)), 0);
    }

    #[test]
    fn mean_and_sum() {
        let mut m = TrustMatrix::new(3);
        m.set(NodeId(0), NodeId(2), tv(0.2)).unwrap();
        m.set(NodeId(1), NodeId(2), tv(0.6)).unwrap();
        assert!((m.mean_opinion(NodeId(2)).unwrap() - 0.4).abs() < 1e-12);
        assert!((m.opinion_sum(NodeId(2)) - 0.8).abs() < 1e-12);
        assert_eq!(m.mean_opinion(NodeId(0)), None);
        assert_eq!(m.opinion_sum(NodeId(0)), 0.0);
    }

    #[test]
    fn overwrite_and_remove() {
        for frozen in [false, true] {
            let mut m = TrustMatrix::new(2);
            if frozen {
                m.freeze();
            }
            m.set(NodeId(0), NodeId(1), tv(0.2)).unwrap();
            m.set(NodeId(0), NodeId(1), tv(0.9)).unwrap();
            assert_eq!(m.get(NodeId(0), NodeId(1)), Some(tv(0.9)));
            assert_eq!(m.entry_count(), 1);
            assert_eq!(m.remove(NodeId(0), NodeId(1)), Some(tv(0.9)));
            assert_eq!(m.entry_count(), 0);
            assert_eq!(m.remove(NodeId(0), NodeId(1)), None);
        }
    }

    #[test]
    fn entries_row_major() {
        let mut m = TrustMatrix::new(3);
        m.set(NodeId(1), NodeId(0), tv(0.1)).unwrap();
        m.set(NodeId(0), NodeId(2), tv(0.3)).unwrap();
        m.set(NodeId(1), NodeId(2), tv(0.5)).unwrap();
        let all: Vec<_> = m.entries().collect();
        assert_eq!(
            all,
            vec![
                (NodeId(0), NodeId(2), tv(0.3)),
                (NodeId(1), NodeId(0), tv(0.1)),
                (NodeId(1), NodeId(2), tv(0.5)),
            ]
        );
    }

    #[test]
    fn serde_roundtrip_both_backends() {
        let mut m = TrustMatrix::new(3);
        m.set(NodeId(0), NodeId(1), tv(0.25)).unwrap();
        let s = serde_json::to_string(&m).unwrap();
        let back: TrustMatrix = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);

        m.freeze();
        let s = serde_json::to_string(&m).unwrap();
        let back: TrustMatrix = serde_json::from_str(&s).unwrap();
        assert!(back.is_csr());
        assert_eq!(m, back);
    }

    #[test]
    fn freeze_thaw_preserve_content_and_equality() {
        let mut dynamic = TrustMatrix::new(5);
        dynamic.set(NodeId(4), NodeId(0), tv(0.9)).unwrap();
        dynamic.set(NodeId(0), NodeId(4), tv(0.3)).unwrap();
        dynamic.set(NodeId(2), NodeId(3), tv(0.7)).unwrap();
        let mut frozen = dynamic.clone();
        frozen.freeze();
        assert!(frozen.is_csr() && !dynamic.is_csr());
        // Logical equality across backends.
        assert_eq!(frozen, dynamic);
        frozen.thaw();
        assert!(!frozen.is_csr());
        assert_eq!(frozen, dynamic);
    }

    #[test]
    fn sharded_backend_is_logically_equal_and_serde_roundtrips() {
        let mut dynamic = TrustMatrix::new(10);
        dynamic.set(NodeId(9), NodeId(0), tv(0.9)).unwrap();
        dynamic.set(NodeId(0), NodeId(9), tv(0.3)).unwrap();
        dynamic.set(NodeId(4), NodeId(5), tv(0.7)).unwrap();

        let mut sharded = dynamic.clone();
        sharded.shard(ShardSpec::new(10, 4));
        assert!(sharded.is_sharded());
        assert_eq!(sharded.shard_spec().unwrap().shard_count(), 4);
        assert_eq!(sharded, dynamic);
        let (ds, dc) = dynamic.subject_sums_and_counts();
        let (ss, sc) = sharded.subject_sums_and_counts();
        assert_eq!(dc, sc);
        assert_eq!(
            ds.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ss.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let s = serde_json::to_string(&sharded).unwrap();
        let back: TrustMatrix = serde_json::from_str(&s).unwrap();
        assert!(back.is_sharded());
        assert_eq!(back, dynamic);

        // freeze() merges into the flat arena; thaw() goes dynamic.
        let mut frozen = sharded.clone();
        frozen.freeze();
        assert!(frozen.is_csr());
        assert_eq!(frozen, dynamic);
        sharded.thaw();
        assert!(!sharded.is_sharded() && !sharded.is_csr());
        assert_eq!(sharded, dynamic);
    }

    #[test]
    fn builder_builds_frozen_matrix() {
        let mut b = TrustMatrix::builder(3);
        b.set(NodeId(2), NodeId(1), tv(0.4)).unwrap();
        b.set(NodeId(0), NodeId(2), tv(0.6)).unwrap();
        let m = TrustMatrix::from_csr(b.build());
        assert!(m.is_csr());
        assert_eq!(m.node_count(), 3);
        assert_eq!(m.get(NodeId(2), NodeId(1)), Some(tv(0.4)));
        assert_eq!(m.entry_count(), 2);
    }

    #[test]
    fn subject_sums_and_counts_match_column_scans() {
        let mut m = TrustMatrix::new(4);
        m.set(NodeId(0), NodeId(3), tv(0.5)).unwrap();
        m.set(NodeId(1), NodeId(3), tv(0.7)).unwrap();
        m.set(NodeId(2), NodeId(0), tv(0.9)).unwrap();
        let (sums, counts) = m.subject_sums_and_counts();
        for j in 0..4u32 {
            let j = NodeId(j);
            assert!((sums[j.index()] - m.opinion_sum(j)).abs() < 1e-15);
            assert_eq!(counts[j.index()], m.opinion_count(j));
        }
    }

    proptest! {
        /// The CSR and BTreeMap backends agree on arbitrary interleaved
        /// insert / overwrite / remove / read sequences.
        #[test]
        fn backends_agree_on_random_sequences(
            ops in proptest::collection::vec((0usize..8, 0usize..8, 0.0..1.0f64, 0u8..4), 1..120)
        ) {
            let n = 8;
            let mut dynamic = TrustMatrix::new(n);
            let mut frozen = TrustMatrix::new(n);
            frozen.freeze();
            prop_assert!(frozen.is_csr());

            for (i, j, v, op) in ops {
                let (i, j) = (NodeId(i as u32), NodeId(j as u32));
                match op {
                    0 | 1 => {
                        dynamic.set(i, j, tv(v)).unwrap();
                        frozen.set(i, j, tv(v)).unwrap();
                    }
                    2 => {
                        prop_assert_eq!(dynamic.remove(i, j), frozen.remove(i, j));
                    }
                    _ => {
                        prop_assert_eq!(dynamic.get(i, j), frozen.get(i, j));
                        prop_assert_eq!(dynamic.row_len(i), frozen.row_len(i));
                    }
                }
            }

            prop_assert_eq!(dynamic.entry_count(), frozen.entry_count());
            let d: Vec<_> = dynamic.entries().collect();
            let f: Vec<_> = frozen.entries().collect();
            prop_assert_eq!(d, f);
            for j in 0..n as u32 {
                let j = NodeId(j);
                prop_assert_eq!(dynamic.column(j), frozen.column(j));
                prop_assert_eq!(dynamic.opinion_count(j), frozen.opinion_count(j));
                prop_assert!((dynamic.opinion_sum(j) - frozen.opinion_sum(j)).abs() < 1e-12);
            }
            prop_assert_eq!(&dynamic, &frozen);
        }
    }
}
