//! The sparse trust matrix `t` of Section 4.
//!
//! "For the whole network, we can define a trust matrix of dimensions
//! N × N. Here `t_ij` represents the trust value of j as maintained by i
//! based on direct interaction. This matrix is generally sparse" — each
//! node only transacts with a handful of neighbours. Rows are the
//! *observer* (opining node) `i`, columns the *subject* `j`.

use crate::error::TrustError;
use crate::value::TrustValue;
use dg_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sparse `N × N` matrix of direct-interaction trust values.
///
/// Backed by one ordered map per row; iteration order is deterministic,
/// which keeps gossip experiments reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrustMatrix {
    n: usize,
    rows: Vec<BTreeMap<u32, TrustValue>>,
}

impl TrustMatrix {
    /// Empty matrix for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            rows: vec![BTreeMap::new(); n],
        }
    }

    /// Dimension `N`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    fn check(&self, id: NodeId) -> Result<(), TrustError> {
        if id.index() >= self.n {
            return Err(TrustError::NodeOutOfRange {
                id: id.0,
                n: self.n,
            });
        }
        Ok(())
    }

    /// Set `t_ij` (observer `i`, subject `j`).
    pub fn set(&mut self, i: NodeId, j: NodeId, t: TrustValue) -> Result<(), TrustError> {
        self.check(i)?;
        self.check(j)?;
        self.rows[i.index()].insert(j.0, t);
        Ok(())
    }

    /// Remove an entry (e.g. the feedback of a peer not heard from for a
    /// long time, which the paper says should be dropped). Returns the old
    /// value if present.
    pub fn remove(&mut self, i: NodeId, j: NodeId) -> Option<TrustValue> {
        self.rows.get_mut(i.index())?.remove(&j.0)
    }

    /// `t_ij`, or `None` when `i` has never interacted with `j`.
    pub fn get(&self, i: NodeId, j: NodeId) -> Option<TrustValue> {
        self.rows.get(i.index())?.get(&j.0).copied()
    }

    /// `t_ij` with the paper's default of 0 for unknown pairs
    /// (anti-whitewash initial value).
    pub fn get_or_zero(&self, i: NodeId, j: NodeId) -> TrustValue {
        self.get(i, j).unwrap_or(TrustValue::ZERO)
    }

    /// Whether observer `i` holds any opinion about `j`.
    pub fn has_opinion(&self, i: NodeId, j: NodeId) -> bool {
        self.get(i, j).is_some()
    }

    /// All opinions held by observer `i`, ordered by subject id.
    pub fn row(&self, i: NodeId) -> impl Iterator<Item = (NodeId, TrustValue)> + '_ {
        self.rows
            .get(i.index())
            .into_iter()
            .flat_map(|r| r.iter().map(|(&j, &t)| (NodeId(j), t)))
    }

    /// Number of opinions held by observer `i`.
    pub fn row_len(&self, i: NodeId) -> usize {
        self.rows.get(i.index()).map_or(0, |r| r.len())
    }

    /// All opinions *about* subject `j` (a column scan; `O(N log d)`).
    pub fn column(&self, j: NodeId) -> Vec<(NodeId, TrustValue)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, row)| row.get(&j.0).map(|&t| (NodeId(i as u32), t)))
            .collect()
    }

    /// Number of nodes holding an opinion about `j` — the paper's `N_d`
    /// (nodes with direct interaction), gossiped as `count`.
    pub fn opinion_count(&self, j: NodeId) -> usize {
        self.rows
            .iter()
            .filter(|row| row.contains_key(&j.0))
            .count()
    }

    /// Total stored entries.
    pub fn entry_count(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }

    /// Iterator over all `(i, j, t_ij)` triples in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeId, TrustValue)> + '_ {
        self.rows.iter().enumerate().flat_map(|(i, row)| {
            row.iter()
                .map(move |(&j, &t)| (NodeId(i as u32), NodeId(j), t))
        })
    }

    /// Mean of all opinions about `j` over the nodes that hold one —
    /// the converged value of the paper's Algorithm 1 gossip
    /// (`Σᵢ y_ij / Σᵢ g_ij` with `g = 1` for opinion holders).
    ///
    /// Returns `None` when nobody has interacted with `j`.
    pub fn mean_opinion(&self, j: NodeId) -> Option<f64> {
        let col = self.column(j);
        if col.is_empty() {
            return None;
        }
        Some(col.iter().map(|(_, t)| t.get()).sum::<f64>() / col.len() as f64)
    }

    /// Sum of all opinions about `j` — the converged `Y_j = Σᵢ t_ij` of
    /// Algorithm 2's single-originator gossip.
    pub fn opinion_sum(&self, j: NodeId) -> f64 {
        self.rows
            .iter()
            .filter_map(|row| row.get(&j.0))
            .map(|t| t.get())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(v: f64) -> TrustValue {
        TrustValue::new(v).unwrap()
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = TrustMatrix::new(4);
        m.set(NodeId(0), NodeId(1), tv(0.8)).unwrap();
        assert_eq!(m.get(NodeId(0), NodeId(1)), Some(tv(0.8)));
        assert_eq!(m.get(NodeId(1), NodeId(0)), None);
        assert_eq!(m.get_or_zero(NodeId(1), NodeId(0)), TrustValue::ZERO);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = TrustMatrix::new(2);
        assert_eq!(
            m.set(NodeId(5), NodeId(0), tv(0.1)),
            Err(TrustError::NodeOutOfRange { id: 5, n: 2 })
        );
        assert_eq!(
            m.set(NodeId(0), NodeId(2), tv(0.1)),
            Err(TrustError::NodeOutOfRange { id: 2, n: 2 })
        );
    }

    #[test]
    fn column_and_count() {
        let mut m = TrustMatrix::new(4);
        m.set(NodeId(0), NodeId(3), tv(0.5)).unwrap();
        m.set(NodeId(1), NodeId(3), tv(0.7)).unwrap();
        m.set(NodeId(2), NodeId(0), tv(0.9)).unwrap();
        let col = m.column(NodeId(3));
        assert_eq!(col, vec![(NodeId(0), tv(0.5)), (NodeId(1), tv(0.7))]);
        assert_eq!(m.opinion_count(NodeId(3)), 2);
        assert_eq!(m.opinion_count(NodeId(1)), 0);
    }

    #[test]
    fn mean_and_sum() {
        let mut m = TrustMatrix::new(3);
        m.set(NodeId(0), NodeId(2), tv(0.2)).unwrap();
        m.set(NodeId(1), NodeId(2), tv(0.6)).unwrap();
        assert!((m.mean_opinion(NodeId(2)).unwrap() - 0.4).abs() < 1e-12);
        assert!((m.opinion_sum(NodeId(2)) - 0.8).abs() < 1e-12);
        assert_eq!(m.mean_opinion(NodeId(0)), None);
        assert_eq!(m.opinion_sum(NodeId(0)), 0.0);
    }

    #[test]
    fn overwrite_and_remove() {
        let mut m = TrustMatrix::new(2);
        m.set(NodeId(0), NodeId(1), tv(0.2)).unwrap();
        m.set(NodeId(0), NodeId(1), tv(0.9)).unwrap();
        assert_eq!(m.get(NodeId(0), NodeId(1)), Some(tv(0.9)));
        assert_eq!(m.entry_count(), 1);
        assert_eq!(m.remove(NodeId(0), NodeId(1)), Some(tv(0.9)));
        assert_eq!(m.entry_count(), 0);
        assert_eq!(m.remove(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn entries_row_major() {
        let mut m = TrustMatrix::new(3);
        m.set(NodeId(1), NodeId(0), tv(0.1)).unwrap();
        m.set(NodeId(0), NodeId(2), tv(0.3)).unwrap();
        m.set(NodeId(1), NodeId(2), tv(0.5)).unwrap();
        let all: Vec<_> = m.entries().collect();
        assert_eq!(
            all,
            vec![
                (NodeId(0), NodeId(2), tv(0.3)),
                (NodeId(1), NodeId(0), tv(0.1)),
                (NodeId(1), NodeId(2), tv(0.5)),
            ]
        );
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = TrustMatrix::new(3);
        m.set(NodeId(0), NodeId(1), tv(0.25)).unwrap();
        let s = serde_json::to_string(&m).unwrap();
        let back: TrustMatrix = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}
