//! Deterministic stochastic audits against within-bounds stealth
//! cartels.
//!
//! The clamp + trim defenses in [`robust`](crate::robust) reject
//! *outliers*; a cartel that biases every report **inside** the clamp
//! window in a correlated direction never produces one, so trimmed
//! aggregation is provably blind to it (for subjects with fewer than
//! `1 / trim_fraction` reporters the trim count is zero and even the
//! trim never fires). The countermeasure is re-verification instead of
//! statistics: every node keeps a bounded [`ReportLog`] of the reports
//! it emitted alongside the estimator state that *implied* them, and
//! each round a deterministic pseudo-random sample of nodes is audited
//! — their logged reports replayed against the implied values. A report
//! with no backing estimator, or one deviating from its implied value
//! beyond [`AuditPolicy::tolerance`], earns a strike;
//! [`AuditPolicy::strikes_to_convict`] strikes convict the node and
//! feed it into the existing purge path.
//!
//! Two properties make the scheme sound:
//!
//! * **Zero-coordination determinism** — audit targets come from a
//!   ChaCha8 stream seeded purely from `(run seed, round)` via
//!   [`audit_targets`], so every honest node samples the *same* targets
//!   with no protocol traffic beyond the audit itself.
//! * **Structural zero false positives** — honest nodes emit exactly
//!   their estimator state, so `reported` and `implied` are bit-equal
//!   and no tolerance, however tight, can strike them. Only a node
//!   whose emitted row *differs from its own recorded evidence* can
//!   accumulate strikes.

use crate::error::TrustError;
use dg_graph::NodeId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Salt folded into the audit-selection stream so it is decoupled from
/// every topology, population, workload and adversary stream.
const AUDIT_SALT: u64 = 0xA0D1_75EE_D5EE_D001;

/// SplitMix64 finalizer over `(seed, round)` — the per-round seed of
/// the shared audit-selection stream.
fn audit_stream_seed(seed: u64, round: u64) -> u64 {
    let mut z = seed ^ AUDIT_SALT ^ round.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic audit-target set of one round: `⌈audit_rate · n⌉`
/// node ids drawn without replacement from a ChaCha8 stream of
/// `(seed, round)`, returned ascending. Every honest node computes the
/// identical set with zero coordination.
pub fn audit_targets(seed: u64, round: u64, n: usize, audit_rate: f64) -> Vec<NodeId> {
    if audit_rate <= 0.0 || n == 0 {
        return Vec::new();
    }
    let count = ((audit_rate * n as f64).ceil() as usize).min(n);
    let mut rng = ChaCha8Rng::seed_from_u64(audit_stream_seed(seed, round));
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    ids.truncate(count);
    ids.sort_unstable();
    ids.into_iter().map(NodeId).collect()
}

/// Knobs of the stochastic-audit layer. The default is
/// [`AuditPolicy::off`] — zero audit rate, no logging, runs
/// bit-identical to pre-audit behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuditPolicy {
    /// Fraction of the population audited per round (`⌈rate · n⌉`
    /// targets). Zero disables the subsystem entirely.
    #[serde(default)]
    pub audit_rate: f64,
    /// Strikes at which a node is convicted and purged (must be ≥ 1
    /// whenever the rate is non-zero).
    #[serde(default)]
    pub strikes_to_convict: u32,
    /// Maximum tolerated |reported − implied| deviation before a
    /// checked log entry earns a strike. Honest entries have the two
    /// bit-equal, so any non-negative tolerance keeps them safe.
    #[serde(default)]
    pub tolerance: f64,
    /// Bound on each node's report log (entries, one per subject).
    #[serde(default)]
    pub log_capacity: usize,
    /// Log entries re-verified per audit (most recent first).
    #[serde(default)]
    pub checks_per_audit: usize,
}

impl Default for AuditPolicy {
    fn default() -> Self {
        Self::off()
    }
}

impl AuditPolicy {
    /// Audits disabled: every knob zero, so configs serialized before
    /// the audit layer existed deserialize to exactly this policy and
    /// runs under it are bit-identical to builds that predate the
    /// subsystem.
    pub const fn off() -> Self {
        Self {
            audit_rate: 0.0,
            strikes_to_convict: 0,
            tolerance: 0.0,
            log_capacity: 0,
            checks_per_audit: 0,
        }
    }

    /// The standard defended policy: 3 % of nodes audited per round,
    /// one entry re-verified per audit, conviction at two strikes. The
    /// knobs balance the two claims-gate bounds: enough sampling that a
    /// permanent cheater is audited (and struck) twice with high
    /// probability over a long run, at a bandwidth that stays under the
    /// documented fraction of report traffic even late in the run, when
    /// convictions have thinned the report volume the overhead is
    /// measured against.
    pub const fn standard() -> Self {
        Self {
            audit_rate: 0.03,
            strikes_to_convict: 2,
            tolerance: 0.05,
            log_capacity: 16,
            checks_per_audit: 1,
        }
    }

    /// Whether the subsystem is active at all.
    pub fn enabled(&self) -> bool {
        self.audit_rate > 0.0
    }

    /// Validate every knob.
    pub fn validated(self) -> Result<Self, TrustError> {
        if !(0.0..=1.0).contains(&self.audit_rate) {
            return Err(TrustError::InvalidAuditPolicy(
                "audit rate must lie in [0, 1]".into(),
            ));
        }
        if !(self.tolerance.is_finite() && self.tolerance >= 0.0) {
            return Err(TrustError::InvalidAuditPolicy(
                "tolerance must be finite and non-negative".into(),
            ));
        }
        if self.enabled()
            && (self.strikes_to_convict == 0
                || self.log_capacity == 0
                || self.checks_per_audit == 0)
        {
            return Err(TrustError::InvalidAuditPolicy(
                "conviction threshold, log capacity and checks per audit must be at least 1".into(),
            ));
        }
        Ok(self)
    }

    /// Whether one checked log entry earns a strike: fabricated (no
    /// backing estimator at emit time) or deviating from the implied
    /// value beyond the tolerance.
    pub fn entry_fails(&self, entry: &ReportLogEntry) -> bool {
        match entry.implied {
            None => true,
            Some(implied) => (entry.reported - implied).abs() > self.tolerance,
        }
    }

    /// Strikes earned by auditing `log`: the `checks_per_audit` most
    /// recent entries re-verified, one strike per failing entry.
    pub fn failed_checks(&self, log: &ReportLog) -> u32 {
        log.recent(self.checks_per_audit)
            .iter()
            .filter(|e| self.entry_fails(e))
            .count() as u32
    }
}

/// One logged report: what the node gossiped about `subject` in
/// `round`, alongside the estimate its recorded transaction outcomes
/// implied at emit time (`None` = fabricated, no backing estimator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReportLogEntry {
    /// Subject the report was about.
    pub subject: NodeId,
    /// Round the logged value was last *changed* (re-emitting an
    /// unchanged report does not touch the entry — see
    /// [`ReportLog::record`]).
    pub round: u64,
    /// The gossiped trust value.
    pub reported: f64,
    /// The estimator-implied value at emit time.
    pub implied: Option<f64>,
}

/// Bounded per-node log of emitted reports, keyed by subject, kept for
/// audit re-verification.
///
/// `record` is **content-conditional**: re-recording an entry whose
/// `(reported, implied)` bits are unchanged is a total no-op (the entry
/// keeps its original round). This is what makes the log identical
/// across engines — the batched engine re-emits every row every round
/// while the incremental engine skips bitwise-unchanged rows, and the
/// no-op property collapses both into the same log state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReportLog {
    /// Entries sorted by ascending subject (at most one per subject).
    entries: Vec<ReportLogEntry>,
}

impl ReportLog {
    /// Record one emitted report. No-op when the subject's existing
    /// entry already holds the same `(reported, implied)` bits;
    /// otherwise upsert with `round`, evicting the stalest entry
    /// (oldest round, smallest subject on ties) when `capacity` is
    /// exceeded.
    pub fn record(
        &mut self,
        subject: NodeId,
        round: u64,
        reported: f64,
        implied: Option<f64>,
        capacity: usize,
    ) {
        if capacity == 0 {
            return;
        }
        match self.entries.binary_search_by_key(&subject, |e| e.subject) {
            Ok(ix) => {
                let e = &mut self.entries[ix];
                let same = e.reported.to_bits() == reported.to_bits()
                    && e.implied.map(f64::to_bits) == implied.map(f64::to_bits);
                if !same {
                    e.round = round;
                    e.reported = reported;
                    e.implied = implied;
                }
            }
            Err(ix) => {
                self.entries.insert(
                    ix,
                    ReportLogEntry {
                        subject,
                        round,
                        reported,
                        implied,
                    },
                );
                if self.entries.len() > capacity {
                    let evict = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| (e.round, e.subject))
                        .map(|(i, _)| i)
                        .expect("non-empty log");
                    self.entries.remove(evict);
                }
            }
        }
    }

    /// The `k` most recent entries (greatest round first, larger
    /// subject first on ties) — the audit's re-verification sample.
    pub fn recent(&self, k: usize) -> Vec<ReportLogEntry> {
        let mut picked: Vec<ReportLogEntry> = self.entries.clone();
        picked.sort_by_key(|e| (std::cmp::Reverse(e.round), std::cmp::Reverse(e.subject)));
        picked.truncate(k);
        picked
    }

    /// All entries, sorted by ascending subject.
    pub fn entries(&self) -> &[ReportLogEntry] {
        &self.entries
    }

    /// Rebuild from checkpointed entries (must be sorted by ascending
    /// subject, as [`ReportLog::entries`] emits them).
    pub fn from_entries(entries: Vec<ReportLogEntry>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].subject < w[1].subject));
        Self { entries }
    }

    /// Number of logged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry (the purge path for convicted / washed nodes).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_selection_is_deterministic_sorted_and_sized() {
        let a = audit_targets(42, 3, 250, 0.04);
        let b = audit_targets(42, 3, 250, 0.04);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        assert_ne!(a, audit_targets(42, 4, 250, 0.04), "round decorrelates");
        assert_ne!(a, audit_targets(43, 3, 250, 0.04), "seed decorrelates");
        assert!(audit_targets(42, 3, 250, 0.0).is_empty());
        assert!(audit_targets(42, 3, 0, 0.5).is_empty());
        assert_eq!(audit_targets(42, 3, 10, 1.0).len(), 10);
    }

    #[test]
    fn policy_validation_rejects_bad_knobs() {
        assert!(AuditPolicy::off().validated().is_ok());
        assert!(AuditPolicy::standard().validated().is_ok());
        for bad in [
            AuditPolicy {
                audit_rate: -0.1,
                ..AuditPolicy::off()
            },
            AuditPolicy {
                audit_rate: 1.5,
                ..AuditPolicy::off()
            },
            AuditPolicy {
                tolerance: -1.0,
                ..AuditPolicy::off()
            },
            AuditPolicy {
                strikes_to_convict: 0,
                ..AuditPolicy::standard()
            },
            AuditPolicy {
                log_capacity: 0,
                ..AuditPolicy::standard()
            },
            AuditPolicy {
                checks_per_audit: 0,
                ..AuditPolicy::standard()
            },
        ] {
            assert!(bad.validated().is_err(), "{bad:?} must fail validation");
        }
    }

    #[test]
    fn record_is_content_conditional() {
        let mut log = ReportLog::default();
        log.record(NodeId(7), 1, 0.5, Some(0.5), 16);
        // Same bits, later round: total no-op — the round sticks.
        log.record(NodeId(7), 5, 0.5, Some(0.5), 16);
        assert_eq!(log.entries()[0].round, 1);
        // Changed bits: the entry moves to the new round.
        log.record(NodeId(7), 6, 0.25, Some(0.5), 16);
        assert_eq!(log.entries()[0].round, 6);
        assert_eq!(log.entries()[0].reported, 0.25);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn log_is_bounded_and_evicts_stalest() {
        let mut log = ReportLog::default();
        for (subject, round) in [(3u32, 4u64), (1, 2), (9, 1), (5, 3)] {
            log.record(NodeId(subject), round, 0.5, Some(0.5), 3);
        }
        // Capacity 3: node 9 (round 1, the stalest) was evicted when 5
        // arrived.
        assert_eq!(log.len(), 3);
        let subjects: Vec<u32> = log.entries().iter().map(|e| e.subject.0).collect();
        assert_eq!(subjects, vec![1, 3, 5]);
    }

    #[test]
    fn recent_orders_by_round_then_subject() {
        let mut log = ReportLog::default();
        for (subject, round) in [(3u32, 4u64), (1, 2), (9, 4), (5, 3)] {
            log.record(NodeId(subject), round, 0.5, Some(0.5), 16);
        }
        let top: Vec<u32> = log.recent(3).iter().map(|e| e.subject.0).collect();
        assert_eq!(top, vec![9, 3, 5]);
    }

    #[test]
    fn honest_entries_never_strike_and_biased_ones_do() {
        let policy = AuditPolicy::standard();
        let honest = ReportLogEntry {
            subject: NodeId(1),
            round: 0,
            reported: 0.123_456_789,
            implied: Some(0.123_456_789),
        };
        assert!(!policy.entry_fails(&honest));
        let biased = ReportLogEntry {
            implied: Some(0.623_456_789),
            ..honest
        };
        assert!(policy.entry_fails(&biased));
        let fabricated = ReportLogEntry {
            implied: None,
            ..honest
        };
        assert!(policy.entry_fails(&fabricated));

        // Pin the re-verification depth: with 2 checks per audit only
        // the two most recent entries (the biased and the fabricated
        // one) are examined, and both fail; the honest round-0 entry is
        // outside the window.
        let policy = AuditPolicy {
            checks_per_audit: 2,
            ..policy
        };
        let mut log = ReportLog::default();
        log.record(NodeId(1), 0, 0.4, Some(0.4), 16);
        log.record(NodeId(2), 1, 0.2, Some(0.7), 16);
        log.record(NodeId(3), 1, 0.9, None, 16);
        assert_eq!(policy.failed_checks(&log), 2, "checks the 2 most recent");
    }

    #[test]
    fn policy_json_roundtrips_and_defaults_fill_missing_fields() {
        let policy = AuditPolicy::standard();
        let json = serde_json::to_string(&policy).unwrap();
        let back: AuditPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(policy, back);
        // A config written before the audit layer existed deserializes
        // to the off policy.
        let legacy: AuditPolicy = serde_json::from_str("{}").unwrap();
        assert_eq!(legacy, AuditPolicy::off());
    }
}
