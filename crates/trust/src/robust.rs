//! Robust aggregation of gossiped trust reports.
//!
//! The paper's weighted scheme (Eq. (6)) already shrinks collusion error
//! by the neighbourhood-weight factor of Eq. (17), but it still averages
//! *every* report it hears. This module adds the countermeasure knobs
//! the analysis implies for worst-case deviations:
//!
//! * **report clamping** — every gossiped report is clamped into
//!   `[clamp_lo, clamp_hi]` before it enters an aggregate, so the 0/1
//!   extremes that slander and ballot-stuffing rely on lose leverage;
//! * **trimmed aggregation** — the most extreme `trim_fraction` of
//!   reports about each subject is dropped from each tail before
//!   summing (a per-subject trimmed mean), the classic robust-statistics
//!   answer to a bounded fraction of outliers.
//!
//! [`RobustAggregation::none`] (the default) reproduces the paper's
//! plain aggregation bit-for-bit; experiments sweep attack strength
//! against these knobs (see the `claims` harness in `dg-bench`).
//!
//! The policy applies where per-subject aggregates are materialised —
//! [`TrustMatrix::robust_subject_sums_and_counts`](crate::TrustMatrix::robust_subject_sums_and_counts).
//! Distributed gossip averaging cannot trim (no node ever sees the full
//! report set), which is faithful to deployments: trimming is an
//! aggregation-point defense, clamping also works per-report.

use crate::error::TrustError;
use serde::{Deserialize, Serialize};

/// Robust-aggregation policy for gossiped trust reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustAggregation {
    /// Reports below this floor are raised to it.
    pub clamp_lo: f64,
    /// Reports above this ceiling are lowered to it.
    pub clamp_hi: f64,
    /// Fraction of reports trimmed from *each* tail of every subject's
    /// report distribution (0 = no trimming; values ≥ 0.5 are invalid —
    /// they would trim everything).
    pub trim_fraction: f64,
}

impl Default for RobustAggregation {
    fn default() -> Self {
        Self::none()
    }
}

impl RobustAggregation {
    /// The paper's plain aggregation: no clamping, no trimming.
    pub const fn none() -> Self {
        Self {
            clamp_lo: 0.0,
            clamp_hi: 1.0,
            trim_fraction: 0.0,
        }
    }

    /// The default defended setting used by the claims harness: reports
    /// clamped into `[0.1, 0.9]`, 20 % trimmed per tail. The trim
    /// fraction matters at realistic report counts: overlay subjects
    /// collect only a handful of reports, and `floor(trim · count)`
    /// must reach 1 before a lone extremist loses any leverage.
    pub const fn defended() -> Self {
        Self {
            clamp_lo: 0.1,
            clamp_hi: 0.9,
            trim_fraction: 0.2,
        }
    }

    /// Whether this policy changes anything at all.
    pub fn is_none(&self) -> bool {
        self.clamp_lo == 0.0 && self.clamp_hi == 1.0 && self.trim_fraction == 0.0
    }

    /// Validate the knobs.
    pub fn validated(self) -> Result<Self, TrustError> {
        // Range `contains` rejects NaN and infinities along with
        // out-of-window values.
        if !(0.0..=1.0).contains(&self.clamp_lo)
            || !(0.0..=1.0).contains(&self.clamp_hi)
            || self.clamp_lo > self.clamp_hi
        {
            return Err(TrustError::InvalidRobustPolicy(format!(
                "clamp window [{}, {}] must be an ordered sub-interval of [0, 1]",
                self.clamp_lo, self.clamp_hi
            )));
        }
        if !(0.0..0.5).contains(&self.trim_fraction) {
            return Err(TrustError::InvalidRobustPolicy(format!(
                "trim fraction {} must lie in [0, 0.5)",
                self.trim_fraction
            )));
        }
        Ok(self)
    }

    /// Clamp one report into the policy window.
    pub fn clamp(&self, report: f64) -> f64 {
        report.clamp(self.clamp_lo, self.clamp_hi)
    }

    /// How many reports to drop from each tail of a subject with
    /// `count` reports (never leaves a subject empty).
    pub fn trim_per_tail(&self, count: usize) -> usize {
        let k = (self.trim_fraction * count as f64).floor() as usize;
        if 2 * k >= count {
            count.saturating_sub(1) / 2
        } else {
            k
        }
    }

    /// Aggregate one subject's raw reports into `(sum, kept_count)`
    /// under this policy. This is *the* per-subject aggregation kernel:
    /// every materialisation site — the from-scratch row-major sweep
    /// ([`TrustMatrix::robust_subject_sums_and_counts`](crate::TrustMatrix::robust_subject_sums_and_counts))
    /// and the delta cache
    /// ([`SubjectAggregateCache`](crate::SubjectAggregateCache)) —
    /// funnels through it, which is what makes delta-refreshed
    /// aggregates bit-identical to from-scratch ones.
    ///
    /// `reports` must be in ascending-*observer* order (the row-major
    /// visit order); under [`RobustAggregation::none`] the sum
    /// accumulates in exactly that order, reproducing the plain sweep's
    /// float additions bit-for-bit. Under an active policy the reports
    /// are clamped, sorted by total order and trimmed per tail before
    /// summing in sorted order — again matching the from-scratch path.
    /// The buffer is scratch: the call may reorder and overwrite it.
    pub fn subject_sum(&self, reports: &mut [f64]) -> (f64, usize) {
        if reports.is_empty() {
            return (0.0, 0);
        }
        if self.is_none() {
            return (reports.iter().sum(), reports.len());
        }
        for v in reports.iter_mut() {
            *v = self.clamp(*v);
        }
        reports.sort_by(f64::total_cmp);
        let k = self.trim_per_tail(reports.len());
        let kept = &reports[k..reports.len() - k];
        (kept.iter().sum(), kept.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let p = RobustAggregation::none();
        assert!(p.is_none());
        assert_eq!(p.clamp(0.0), 0.0);
        assert_eq!(p.clamp(1.0), 1.0);
        assert_eq!(p.trim_per_tail(10), 0);
        assert!(p.validated().is_ok());
    }

    #[test]
    fn defended_clamps_and_trims() {
        let p = RobustAggregation::defended().validated().unwrap();
        assert!(!p.is_none());
        assert_eq!(p.clamp(0.0), 0.1);
        assert_eq!(p.clamp(1.0), 0.9);
        assert_eq!(p.clamp(0.5), 0.5);
        assert_eq!(p.trim_per_tail(20), 4);
        assert_eq!(p.trim_per_tail(6), 1);
    }

    #[test]
    fn trimming_never_empties_a_subject() {
        let p = RobustAggregation {
            trim_fraction: 0.49,
            ..RobustAggregation::none()
        };
        for count in 1..20 {
            assert!(count > 2 * p.trim_per_tail(count), "count {count}");
        }
    }

    #[test]
    fn subject_sum_matches_manual_trimmed_mean() {
        let p = RobustAggregation::defended();
        // Six reports: clamp pulls 0.0 → 0.1 and 1.0 → 0.9, trim drops
        // one from each tail, leaving {0.2, 0.5, 0.7, 0.9}.
        let mut reports = vec![0.5, 1.0, 0.0, 0.9, 0.2, 0.7];
        let (sum, count) = p.subject_sum(&mut reports);
        assert_eq!(count, 4);
        assert!((sum - (0.2 + 0.5 + 0.7 + 0.9)).abs() < 1e-12);

        let none = RobustAggregation::none();
        let mut reports = vec![0.5, 1.0, 0.0];
        assert_eq!(none.subject_sum(&mut reports), (1.5, 3));
        assert_eq!(none.subject_sum(&mut []), (0.0, 0));
    }

    #[test]
    fn validation_rejects_bad_windows() {
        assert!(RobustAggregation {
            clamp_lo: 0.8,
            clamp_hi: 0.2,
            trim_fraction: 0.0
        }
        .validated()
        .is_err());
        assert!(RobustAggregation {
            clamp_lo: -0.1,
            clamp_hi: 1.0,
            trim_fraction: 0.0
        }
        .validated()
        .is_err());
        assert!(RobustAggregation {
            clamp_lo: 0.0,
            clamp_hi: 1.0,
            trim_fraction: 0.5
        }
        .validated()
        .is_err());
        assert!(RobustAggregation {
            clamp_lo: 0.0,
            clamp_hi: 1.0,
            trim_fraction: f64::NAN
        }
        .validated()
        .is_err());
    }
}
