//! Sharded CSR trust storage for million-node rounds.
//!
//! One flat CSR arena over the whole matrix (see [`crate::csr`]) is the
//! right layout up to a few hundred thousand nodes, but a single
//! `O(total nnz)` arena has two costs at production scale: every bulk
//! rebuild materialises all rows before freezing (the batched engine's
//! estimate phase holds matrix-sized scratch on top of the matrix), and
//! the whole arena is one allocation that must move together.
//!
//! This module partitions the **rows** (observers) into
//! [`ShardSpec::shard_count`] contiguous ranges, each backed by its own
//! [`CsrStorage`] with shard-local row pointers and *global* column
//! ids. Shards build independently — each from an `O(shard edges)`
//! rectangular [`CsrBuilder`] — so a round engine can fan shards out
//! across a thread pool and its transient scratch stays bounded by the
//! in-flight shards instead of the full matrix.
//!
//! Determinism contract: shards are contiguous ascending row ranges, so
//! streaming shard 0, shard 1, … and each shard row-major
//! ([`ShardedCsr::entries`]) visits cells in **exactly the global
//! row-major order** of the flat backends. The cross-shard subject-sum
//! merge — [`crate::matrix::TrustMatrix::subject_sums_and_counts`] on
//! the sharded backend — accumulates per-subject `f64` sums in that
//! single fixed order, which makes the result bit-identical to the
//! flat backends' computation for *any* shard count (pinned by the
//! proptest at the bottom of this module).

use crate::csr::{CsrBuilder, CsrStorage};
use crate::error::TrustError;
use crate::value::TrustValue;
use dg_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Partition of `n` node ids into contiguous, fixed-size row ranges.
///
/// Shard `s` owns rows `[s·chunk, min((s+1)·chunk, n))` with
/// `chunk = ⌈n / shard_count⌉`; when `shard_count > n` the trailing
/// shards own empty ranges (legal — they simply hold no cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    n: usize,
    shard_count: usize,
    chunk: usize,
}

impl ShardSpec {
    /// Row-chunk target of [`ShardSpec::auto`]: small enough that a
    /// shard's scratch stays cache- and allocator-friendly, large
    /// enough that per-shard fixed costs amortise.
    pub const AUTO_CHUNK: usize = 32_768;

    /// Partition `n` rows into `shard_count` contiguous chunks
    /// (`shard_count` is clamped to at least 1).
    pub fn new(n: usize, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        let chunk = n.div_ceil(shard_count).max(1);
        Self {
            n,
            shard_count,
            chunk,
        }
    }

    /// Deterministic default shard count for `n` rows: one shard per
    /// [`AUTO_CHUNK`](Self::AUTO_CHUNK) rows. A pure function of `n` —
    /// never of the machine — so pinned-seed runs reproduce everywhere
    /// (and results are shard-count-independent anyway).
    pub fn auto(n: usize) -> Self {
        Self::new(n, n.div_ceil(Self::AUTO_CHUNK).max(1))
    }

    /// Total rows `N`.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of shards (≥ 1; trailing shards may own empty ranges).
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard owning `node`'s row.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.locate(node).0
    }

    /// `(shard, local row)` of `node` with a single division — the hot
    /// path behind every point lookup on the sharded backend.
    ///
    /// The `max(1)` clamps neutralise a deserialized spec carrying
    /// `chunk: 0` / `shard_count: 0` (serde bypasses [`ShardSpec::new`]'s
    /// normalisation): reads then resolve against shard 0 and degrade
    /// through the shard-shape bounds checks instead of dividing by
    /// zero. Constructed specs always satisfy both already.
    #[inline]
    pub fn locate(&self, node: NodeId) -> (usize, usize) {
        let idx = node.index();
        let chunk = self.chunk.max(1);
        let shard = (idx / chunk).min(self.shard_count.max(1) - 1);
        // For any populated row, `shard * chunk ≤ idx`, so this is the
        // shard-local offset without recomputing the range.
        (shard, idx - shard * chunk)
    }

    /// The contiguous row range shard `shard` owns (empty when the
    /// shard index is past the populated prefix).
    pub fn range(&self, shard: usize) -> Range<u32> {
        let start = (shard * self.chunk).min(self.n);
        let end = ((shard + 1) * self.chunk).min(self.n);
        start as u32..end as u32
    }

    /// Number of rows in shard `shard`.
    pub fn rows_in(&self, shard: usize) -> usize {
        let r = self.range(shard);
        (r.end - r.start) as usize
    }

    /// `node`'s row index *within its shard*.
    pub fn local_row(&self, node: NodeId) -> usize {
        self.locate(node).1
    }
}

/// Frozen sharded trust storage: one shard-local [`CsrStorage`] per
/// contiguous row range of a [`ShardSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedCsr {
    spec: ShardSpec,
    /// `shards[s]` holds rows `spec.range(s)` with local row indices.
    shards: Vec<CsrStorage>,
}

impl ShardedCsr {
    /// Empty sharded storage.
    pub fn new(spec: ShardSpec) -> Self {
        Self {
            shards: (0..spec.shard_count())
                .map(|s| CsrStorage::new(spec.rows_in(s)))
                .collect(),
            spec,
        }
    }

    /// Assemble from independently built shard CSRs (the parallel bulk
    /// path). Each storage must cover exactly its shard's row count.
    pub fn from_parts(spec: ShardSpec, shards: Vec<CsrStorage>) -> Result<Self, TrustError> {
        if shards.len() != spec.shard_count() {
            return Err(TrustError::ShardMismatch {
                expected: spec.shard_count(),
                got: shards.len(),
            });
        }
        for (s, csr) in shards.iter().enumerate() {
            if csr.node_count() != spec.rows_in(s) {
                return Err(TrustError::ShardMismatch {
                    expected: spec.rows_in(s),
                    got: csr.node_count(),
                });
            }
        }
        Ok(Self { spec, shards })
    }

    /// The partition.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Dimension `N`.
    pub fn node_count(&self) -> usize {
        self.spec.node_count()
    }

    /// Total stored entries across all shards.
    pub fn entry_count(&self) -> usize {
        self.shards.iter().map(CsrStorage::entry_count).sum()
    }

    /// Stored entries per shard (`nnz`), in shard order — the per-shard
    /// cost signal the round engines feed the work-stealing scheduler's
    /// weighted map. Degrades to zeroes for shards a malformed
    /// deserialized value is missing.
    pub fn shard_entry_counts(&self) -> Vec<usize> {
        (0..self.spec.shard_count())
            .map(|s| self.shards.get(s).map_or(0, CsrStorage::entry_count))
            .collect()
    }

    /// One shard's storage (rows are shard-local).
    pub fn shard(&self, shard: usize) -> &CsrStorage {
        &self.shards[shard]
    }

    /// The sorted `(column, value)` run of global row `i` (empty when
    /// out of range). Degrades gracefully — like [`CsrStorage::row`] —
    /// when a deserialized value carries fewer shards than its spec
    /// claims (serde cannot route through [`from_parts`](Self::from_parts)).
    #[inline]
    pub fn row(&self, i: NodeId) -> &[(NodeId, TrustValue)] {
        if i.index() >= self.spec.node_count() {
            return &[];
        }
        let (shard, local) = self.spec.locate(i);
        match self.shards.get(shard) {
            Some(csr) => csr.row(NodeId(local as u32)),
            None => &[],
        }
    }

    /// Point lookup.
    #[inline]
    pub fn get(&self, i: NodeId, j: NodeId) -> Option<TrustValue> {
        let run = self.row(i);
        run.binary_search_by_key(&j, |&(col, _)| col)
            .ok()
            .map(|idx| run[idx].1)
    }

    /// Insert or overwrite `t_ij`; splices the owning shard's arena —
    /// `O(shard nnz)` worst case, for touch-ups only (bulk loads go
    /// through [`ShardedCsrBuilder`]).
    pub fn set(&mut self, i: NodeId, j: NodeId, t: TrustValue) -> Result<(), TrustError> {
        let n = self.spec.node_count();
        for id in [i, j] {
            if id.index() >= n {
                return Err(TrustError::NodeOutOfRange { id: id.0, n });
            }
        }
        let (shard, local) = self.spec.locate(i);
        // Malformed deserialized values (shards shorter than the spec,
        // or a chunk inconsistent with the shard shapes) surface the
        // shape error instead of panicking.
        match self.shards.get_mut(shard) {
            Some(csr) if local < csr.node_count() => {
                csr.splice_set(local, j, t);
                Ok(())
            }
            Some(csr) => Err(TrustError::ShardMismatch {
                expected: local + 1,
                got: csr.node_count(),
            }),
            None => Err(TrustError::ShardMismatch {
                expected: self.spec.shard_count(),
                got: self.shards.len(),
            }),
        }
    }

    /// Remove an entry from the owning shard; returns the old value.
    pub fn remove(&mut self, i: NodeId, j: NodeId) -> Option<TrustValue> {
        if i.index() >= self.spec.node_count() {
            return None;
        }
        let (shard, local) = self.spec.locate(i);
        let csr = self.shards.get_mut(shard)?;
        if local >= csr.node_count() {
            return None;
        }
        csr.splice_remove(local, j)
    }

    /// Iterator over all `(i, j, t_ij)` triples in **global row-major
    /// order** — shard 0 first, each shard row-major. This is the order
    /// every deterministic float accumulation in the workspace uses;
    /// the cross-shard subject-sum merge
    /// ([`TrustMatrix::subject_sums_and_counts`](crate::TrustMatrix::subject_sums_and_counts)
    /// on the sharded backend) accumulates in exactly this order, which
    /// is why it is bit-identical to the flat backends for any shard
    /// count.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeId, TrustValue)> + '_ {
        self.shards.iter().enumerate().flat_map(move |(s, csr)| {
            let base = self.spec.range(s).start;
            (0..csr.node_count() as u32).flat_map(move |local| {
                csr.row(NodeId(local))
                    .iter()
                    .map(move |&(j, t)| (NodeId(base + local), j, t))
            })
        })
    }

    /// Merge into one flat [`CsrStorage`] — concatenating the shard
    /// arenas in order reproduces the exact flat arena a single
    /// [`CsrBuilder`] over all rows would have produced (`O(nnz)`
    /// memcpy; the shard runs are already sorted).
    pub fn into_flat(self) -> CsrStorage {
        CsrStorage::concat(self.shards)
    }

    /// Replace whole global rows, rebuilding **only the shards that own
    /// a replaced row** — untouched shard arenas are not visited at
    /// all. This is the delta write path of the incremental engine:
    /// with `d` dirty rows the cost is `O(Σ nnz of touched shards)`
    /// instead of `O(total nnz)`. `rows` must be sorted by ascending
    /// observer without duplicates and each run sorted by ascending
    /// subject (validated by
    /// [`TrustMatrix::replace_rows`](crate::TrustMatrix::replace_rows));
    /// rows a malformed deserialized spec cannot route are ignored.
    pub fn replace_rows(&mut self, rows: &[(NodeId, Vec<(NodeId, TrustValue)>)]) {
        // Sorted global rows land in contiguous runs per shard because
        // shards own contiguous ascending row ranges.
        let mut start = 0usize;
        while start < rows.len() {
            let shard = self.spec.shard_of(rows[start].0);
            let mut end = start + 1;
            while end < rows.len() && self.spec.shard_of(rows[end].0) == shard {
                end += 1;
            }
            if let Some(csr) = self.shards.get_mut(shard) {
                let local: Vec<(usize, &[(NodeId, TrustValue)])> = rows[start..end]
                    .iter()
                    .map(|(i, run)| (self.spec.local_row(*i), run.as_slice()))
                    .collect();
                csr.replace_rows_by_local(&local);
            }
            start = end;
        }
    }
}

/// Bulk builder for [`ShardedCsr`]: routes out-of-order `(i, j, t)`
/// triples to per-shard rectangular [`CsrBuilder`]s, then freezes every
/// shard.
///
/// ```
/// use dg_graph::NodeId;
/// use dg_trust::{ShardSpec, ShardedCsrBuilder, TrustMatrix, TrustValue};
///
/// let mut b = ShardedCsrBuilder::new(ShardSpec::new(100, 4));
/// b.set(NodeId(99), NodeId(0), TrustValue::new(0.9)?)?;
/// b.set(NodeId(0), NodeId(99), TrustValue::new(0.2)?)?;
///
/// let matrix = TrustMatrix::from_sharded(b.build());
/// assert!(matrix.is_sharded());
/// assert_eq!(matrix.entry_count(), 2);
/// assert_eq!(matrix.get(NodeId(99), NodeId(0)).map(|v| v.get()), Some(0.9));
/// # Ok::<(), dg_trust::TrustError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedCsrBuilder {
    spec: ShardSpec,
    builders: Vec<CsrBuilder>,
}

impl ShardedCsrBuilder {
    /// Builder over a partition.
    pub fn new(spec: ShardSpec) -> Self {
        Self {
            builders: (0..spec.shard_count())
                .map(|s| CsrBuilder::rectangular(spec.rows_in(s), spec.node_count()))
                .collect(),
            spec,
        }
    }

    /// The partition.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Record `t_ij` (global ids). Later writes to the same cell win.
    pub fn set(&mut self, i: NodeId, j: NodeId, t: TrustValue) -> Result<(), TrustError> {
        let n = self.spec.node_count();
        for id in [i, j] {
            if id.index() >= n {
                return Err(TrustError::NodeOutOfRange { id: id.0, n });
            }
        }
        let (shard, local) = self.spec.locate(i);
        self.builders[shard].set(NodeId(local as u32), j, t)
    }

    /// Append a whole row for observer `i` (global ids).
    pub fn extend_row(
        &mut self,
        i: NodeId,
        entries: impl IntoIterator<Item = (NodeId, TrustValue)>,
    ) -> Result<(), TrustError> {
        let n = self.spec.node_count();
        if i.index() >= n {
            return Err(TrustError::NodeOutOfRange { id: i.0, n });
        }
        let (shard, local) = self.spec.locate(i);
        self.builders[shard].extend_row(NodeId(local as u32), entries)
    }

    /// Freeze every shard.
    pub fn build(self) -> ShardedCsr {
        ShardedCsr {
            spec: self.spec,
            shards: self.builders.into_iter().map(CsrBuilder::build).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::TrustMatrix;
    use proptest::prelude::*;

    fn tv(v: f64) -> TrustValue {
        TrustValue::saturating(v)
    }

    #[test]
    fn spec_partitions_evenly_and_covers_all_rows() {
        for (n, shards) in [(100usize, 4usize), (5, 16), (1, 1), (7, 3), (100, 1)] {
            let spec = ShardSpec::new(n, shards);
            assert_eq!(spec.shard_count(), shards.max(1));
            let mut covered = 0usize;
            for s in 0..spec.shard_count() {
                let r = spec.range(s);
                for i in r.clone() {
                    assert_eq!(spec.shard_of(NodeId(i)), s, "n={n} shards={shards} i={i}");
                    assert_eq!(
                        spec.local_row(NodeId(i)),
                        (i - r.start) as usize,
                        "n={n} shards={shards} i={i}"
                    );
                }
                covered += spec.rows_in(s);
            }
            assert_eq!(covered, n, "n={n} shards={shards}");
        }
    }

    #[test]
    fn shard_count_above_n_leaves_trailing_shards_empty() {
        let spec = ShardSpec::new(5, 16);
        assert_eq!(spec.shard_count(), 16);
        assert_eq!((0..16).map(|s| spec.rows_in(s)).sum::<usize>(), 5);
        assert!(spec.rows_in(15) == 0);
        // Empty shards hold no cells but are fully usable.
        let sharded = ShardedCsr::new(spec);
        assert_eq!(sharded.entry_count(), 0);
        assert_eq!(sharded.row(NodeId(4)).len(), 0);
    }

    #[test]
    fn single_shard_matches_flat_csr_exactly() {
        let spec = ShardSpec::new(4, 1);
        let mut sharded = ShardedCsrBuilder::new(spec);
        let mut flat = CsrBuilder::new(4);
        for &(i, j, v) in &[(1u32, 3u32, 0.3), (1, 0, 0.1), (1, 3, 0.9), (3, 2, 0.5)] {
            sharded.set(NodeId(i), NodeId(j), tv(v)).unwrap();
            flat.set(NodeId(i), NodeId(j), tv(v)).unwrap();
        }
        let sharded = sharded.build();
        let flat = flat.build();
        for i in 0..4u32 {
            assert_eq!(sharded.row(NodeId(i)), flat.row(NodeId(i)));
        }
        assert_eq!(sharded.entry_count(), flat.entry_count());
    }

    #[test]
    fn auto_spec_is_a_pure_function_of_n() {
        assert_eq!(ShardSpec::auto(100).shard_count(), 1);
        assert_eq!(ShardSpec::auto(ShardSpec::AUTO_CHUNK).shard_count(), 1);
        assert_eq!(ShardSpec::auto(ShardSpec::AUTO_CHUNK + 1).shard_count(), 2);
        assert_eq!(ShardSpec::auto(1_000_000).shard_count(), 31);
        assert_eq!(ShardSpec::auto(0).shard_count(), 1);
    }

    #[test]
    fn out_of_range_rejected_everywhere() {
        let spec = ShardSpec::new(4, 2);
        let mut b = ShardedCsrBuilder::new(spec);
        assert!(b.set(NodeId(4), NodeId(0), tv(0.5)).is_err());
        assert!(b.set(NodeId(0), NodeId(4), tv(0.5)).is_err());
        assert!(b.extend_row(NodeId(9), [(NodeId(0), tv(0.5))]).is_err());
        let mut sharded = b.build();
        assert!(sharded.set(NodeId(4), NodeId(0), tv(0.5)).is_err());
        assert_eq!(sharded.get(NodeId(9), NodeId(0)), None);
        assert_eq!(sharded.remove(NodeId(9), NodeId(0)), None);
    }

    #[test]
    fn shard_entry_counts_track_per_shard_nnz() {
        let spec = ShardSpec::new(6, 3);
        let mut b = ShardedCsrBuilder::new(spec);
        for &(i, j, v) in &[(0u32, 1u32, 0.2), (1, 0, 0.3), (5, 5, 0.7)] {
            b.set(NodeId(i), NodeId(j), tv(v)).unwrap();
        }
        let sharded = b.build();
        assert_eq!(sharded.shard_entry_counts(), vec![2, 0, 1]);
        assert_eq!(
            sharded.shard_entry_counts().iter().sum::<usize>(),
            sharded.entry_count()
        );
    }

    #[test]
    fn from_parts_validates_shard_shapes() {
        let spec = ShardSpec::new(4, 2);
        assert!(ShardedCsr::from_parts(spec, vec![CsrStorage::new(2)]).is_err());
        assert!(
            ShardedCsr::from_parts(spec, vec![CsrStorage::new(2), CsrStorage::new(3)]).is_err()
        );
        assert!(ShardedCsr::from_parts(spec, vec![CsrStorage::new(2), CsrStorage::new(2)]).is_ok());
    }

    #[test]
    fn into_flat_reproduces_the_monolithic_arena() {
        let spec = ShardSpec::new(6, 3);
        let mut sharded = ShardedCsrBuilder::new(spec);
        let mut flat = CsrBuilder::new(6);
        for &(i, j, v) in &[(5u32, 0u32, 0.9), (0, 5, 0.1), (2, 2, 0.4), (3, 1, 0.6)] {
            sharded.set(NodeId(i), NodeId(j), tv(v)).unwrap();
            flat.set(NodeId(i), NodeId(j), tv(v)).unwrap();
        }
        assert_eq!(sharded.build().into_flat(), flat.build());
    }

    #[test]
    fn truncated_deserialized_shards_degrade_instead_of_panicking() {
        // Serde cannot route through `from_parts`, so a sharded matrix
        // whose shard list is shorter than its spec (truncated file,
        // version skew) must degrade like `CsrStorage` does, not panic.
        let mut good = ShardedCsrBuilder::new(ShardSpec::new(6, 3));
        good.set(NodeId(1), NodeId(0), tv(0.4)).unwrap();
        let mut bad = good.build();
        bad.shards.truncate(1);
        assert_eq!(bad.row(NodeId(1)).len(), 1); // shard 0 still intact
        assert_eq!(bad.row(NodeId(5)), &[]); // missing shard: empty
        assert_eq!(bad.get(NodeId(5), NodeId(0)), None);
        assert_eq!(bad.remove(NodeId(5), NodeId(0)), None);
        assert!(matches!(
            bad.set(NodeId(5), NodeId(0), tv(0.5)),
            Err(TrustError::ShardMismatch { .. })
        ));
        // Iteration covers exactly the shards that exist.
        assert_eq!(bad.entries().count(), 1);

        // Chunk skew: a spec whose chunk is inconsistent with the
        // shard shapes (only producible by hand-edited serialization)
        // must degrade the same way — shard-local bounds are checked,
        // never blindly indexed.
        let mut skewed = ShardedCsrBuilder::new(ShardSpec::new(6, 3)).build();
        skewed.spec = ShardSpec::new(12, 3); // chunk 4 over 2-row shards
        assert_eq!(skewed.row(NodeId(7)), &[]);
        assert_eq!(skewed.get(NodeId(7), NodeId(0)), None);
        assert_eq!(skewed.remove(NodeId(7), NodeId(0)), None);
        assert!(matches!(
            skewed.set(NodeId(7), NodeId(0), tv(0.5)),
            Err(TrustError::ShardMismatch { .. })
        ));

        // Zeroed spec fields: serde bypasses `ShardSpec::new`'s
        // normalisation, so `chunk: 0` / `shard_count: 0` must not
        // divide by zero or underflow on reads.
        let zeroed: ShardSpec =
            serde_json::from_str(r#"{"n":6,"shard_count":3,"chunk":0}"#).unwrap();
        let mut victim = ShardedCsrBuilder::new(ShardSpec::new(6, 3)).build();
        victim.spec = zeroed;
        assert_eq!(victim.get(NodeId(5), NodeId(0)), None);
        assert_eq!(victim.remove(NodeId(5), NodeId(0)), None);
        let no_shards: ShardSpec =
            serde_json::from_str(r#"{"n":6,"shard_count":0,"chunk":2}"#).unwrap();
        assert_eq!(no_shards.locate(NodeId(5)).0, 0);
    }

    proptest! {
        /// For arbitrary op sequences and arbitrary shard counts, the
        /// sharded **`TrustMatrix` backend** (the production path the
        /// round engines aggregate through) agrees with the flat
        /// dynamic matrix on every read — and the cross-shard
        /// subject-sum merge is **bit-identical** to the flat
        /// row-major computation.
        #[test]
        fn sharded_subject_sums_match_flat_bitwise(
            ops in proptest::collection::vec((0usize..12, 0usize..12, 0.0..1.0f64, 0u8..3), 1..150),
            shards in 1usize..20,
        ) {
            let n = 12;
            let mut flat = TrustMatrix::new(n);
            let mut sharded = TrustMatrix::from_sharded(ShardedCsr::new(ShardSpec::new(n, shards)));
            prop_assert!(sharded.is_sharded());

            for (i, j, v, op) in ops {
                let (i, j) = (NodeId(i as u32), NodeId(j as u32));
                match op {
                    0 | 1 => {
                        flat.set(i, j, tv(v)).unwrap();
                        sharded.set(i, j, tv(v)).unwrap();
                    }
                    _ => {
                        prop_assert_eq!(flat.remove(i, j), sharded.remove(i, j));
                    }
                }
            }

            prop_assert_eq!(flat.entry_count(), sharded.entry_count());
            let f: Vec<_> = flat.entries().collect();
            let s: Vec<_> = sharded.entries().collect();
            prop_assert_eq!(f, s);

            let (flat_sums, flat_counts) = flat.subject_sums_and_counts();
            let (sh_sums, sh_counts) = sharded.subject_sums_and_counts();
            prop_assert_eq!(flat_counts, sh_counts);
            for j in 0..n {
                // Bit-identity, not approximate equality.
                prop_assert_eq!(flat_sums[j].to_bits(), sh_sums[j].to_bits(), "subject {}", j);
            }
        }
    }
}
