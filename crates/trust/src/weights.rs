//! The neighbour-opinion weight law of Eq. (2): `w_Ii = a_I^(b_Ii · t_Ii)`.
//!
//! Nodes that have never interacted with the estimating node get weight 1;
//! neighbours get a weight that grows with trust, so better-behaved
//! neighbours' direct reports count for more. The paper's salient
//! features (Section 4.1.2) pin down the parameter regime:
//!
//! * weights are always ≥ 1 — a badly-reputed neighbour degrades to the
//!   weight of a stranger, never below;
//! * `a` and `b` are per-node/per-edge tunables, held constant in the
//!   paper (and here) for simplicity.
//!
//! This forces `a ≥ 1` and `b ≥ 0`, which [`WeightParams::new`] validates.

use crate::error::TrustError;
use crate::value::TrustValue;
use serde::{Deserialize, Serialize};

/// Parameters `(a, b)` of the weight law `w = a^(b·t)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightParams {
    a: f64,
    b: f64,
}

impl Default for WeightParams {
    /// A moderate default (`a = 2`, `b = 2`): a fully trusted neighbour's
    /// opinion counts four times a stranger's.
    fn default() -> Self {
        Self { a: 2.0, b: 2.0 }
    }
}

impl WeightParams {
    /// Validated constructor; requires `a ≥ 1`, `b ≥ 0`, both finite, so
    /// that `w(t) ≥ 1` for every `t ∈ [0, 1]`.
    pub fn new(a: f64, b: f64) -> Result<Self, TrustError> {
        if !a.is_finite() || !b.is_finite() {
            return Err(TrustError::InvalidWeightParams(format!(
                "a = {a}, b = {b} must be finite"
            )));
        }
        if a < 1.0 {
            return Err(TrustError::InvalidWeightParams(format!(
                "a = {a} < 1 would allow weights below 1"
            )));
        }
        if b < 0.0 {
            return Err(TrustError::InvalidWeightParams(format!(
                "b = {b} < 0 would invert the trust ordering"
            )));
        }
        Ok(Self { a, b })
    }

    /// The *neutral* law `w ≡ 1`, which degenerates the globally calibrated
    /// local reputation (Eq. 5) to the plain global reputation (Eq. 1).
    pub fn neutral() -> Self {
        Self { a: 1.0, b: 0.0 }
    }

    /// Base `a`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Exponent scale `b`.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Evaluate `w(t) = a^(b·t)`.
    #[inline]
    pub fn weight(&self, t: TrustValue) -> f64 {
        self.a.powf(self.b * t.get())
    }

    /// `w(t) − 1`, the "excess" weight a neighbour carries over a stranger.
    /// This is the quantity that enters `ŷ` and the denominator of Eq. (6).
    #[inline]
    pub fn excess(&self, t: TrustValue) -> f64 {
        self.weight(t) - 1.0
    }

    /// Maximum possible weight, `w(1) = a^b`.
    pub fn max_weight(&self) -> f64 {
        self.a.powf(self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tv(v: f64) -> TrustValue {
        TrustValue::new(v).unwrap()
    }

    #[test]
    fn validation() {
        assert!(WeightParams::new(2.0, 3.0).is_ok());
        assert!(WeightParams::new(1.0, 0.0).is_ok());
        assert!(WeightParams::new(0.5, 1.0).is_err());
        assert!(WeightParams::new(2.0, -1.0).is_err());
        assert!(WeightParams::new(f64::NAN, 1.0).is_err());
        assert!(WeightParams::new(2.0, f64::INFINITY).is_err());
    }

    #[test]
    fn zero_trust_gives_unit_weight() {
        let w = WeightParams::default();
        assert_eq!(w.weight(TrustValue::ZERO), 1.0);
        assert_eq!(w.excess(TrustValue::ZERO), 0.0);
    }

    #[test]
    fn full_trust_gives_max_weight() {
        let w = WeightParams::new(2.0, 2.0).unwrap();
        assert!((w.weight(TrustValue::ONE) - 4.0).abs() < 1e-12);
        assert!((w.max_weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn neutral_law_is_identity_one() {
        let w = WeightParams::neutral();
        for t in [0.0, 0.3, 1.0] {
            assert_eq!(w.weight(tv(t)), 1.0);
        }
    }

    #[test]
    fn weight_is_monotone_in_trust() {
        let w = WeightParams::new(3.0, 1.5).unwrap();
        let mut prev = 0.0;
        for i in 0..=10 {
            let t = tv(i as f64 / 10.0);
            let cur = w.weight(t);
            assert!(cur >= prev, "w({t}) = {cur} < {prev}");
            prev = cur;
        }
    }

    #[test]
    fn t_zero_is_unit_weight_for_any_params() {
        // w(0) = a^0 = 1 regardless of how aggressive the law is.
        for (a, b) in [(1.0, 0.0), (1.0, 5.0), (10.0, 0.0), (1e6, 50.0)] {
            let w = WeightParams::new(a, b).unwrap();
            assert_eq!(w.weight(TrustValue::ZERO), 1.0, "a={a}, b={b}");
            assert_eq!(w.excess(TrustValue::ZERO), 0.0, "a={a}, b={b}");
        }
    }

    #[test]
    fn a_one_is_unit_weight_for_any_trust_and_exponent() {
        // 1^(b·t) = 1: with a = 1 the law cannot distinguish neighbours,
        // whatever b is.
        for b in [0.0, 1.0, 100.0, 1e8] {
            let w = WeightParams::new(1.0, b).unwrap();
            for t in [0.0, 0.25, 0.5, 1.0] {
                assert_eq!(w.weight(tv(t)), 1.0, "b={b}, t={t}");
            }
            assert_eq!(w.max_weight(), 1.0, "b={b}");
        }
    }

    #[test]
    fn extreme_exponents_overflow_to_infinity_not_nan() {
        // b·t can push a^(b·t) past f64::MAX; the law must degrade to
        // +inf (which downstream clamps), never NaN, and stay monotone.
        let w = WeightParams::new(10.0, 1e4).unwrap();
        let huge = w.weight(TrustValue::ONE);
        assert!(huge.is_infinite() && huge > 0.0);
        assert!(!w.weight(tv(0.5)).is_nan());
        assert!(w.weight(TrustValue::ZERO) == 1.0);
        // A large-but-representable case stays finite and ordered.
        let w2 = WeightParams::new(2.0, 1000.0).unwrap();
        let mid = w2.weight(tv(0.25));
        assert!(mid.is_finite() && mid > 1.0);
        assert!(w2.weight(tv(0.5)) > mid);
    }

    #[test]
    fn tiny_positive_exponent_stays_just_above_one() {
        let w = WeightParams::new(2.0, 1e-12).unwrap();
        let full = w.weight(TrustValue::ONE);
        assert!(full > 1.0, "w(1) = {full} should exceed 1");
        assert!(full - 1.0 < 1e-9, "w(1) = {full} should be barely above 1");
    }

    proptest! {
        #[test]
        fn weight_always_at_least_one(
            a in 1.0..10.0f64,
            b in 0.0..5.0f64,
            t in 0.0..=1.0f64,
        ) {
            let w = WeightParams::new(a, b).unwrap();
            prop_assert!(w.weight(tv(t)) >= 1.0);
            prop_assert!(w.excess(tv(t)) >= 0.0);
            prop_assert!(w.weight(tv(t)) <= w.max_weight() + 1e-12);
        }
    }
}
