//! # dg-trust — trust primitives for differential gossip trust
//!
//! The paper's reputation system starts from *local trust values*
//! `t_ij ∈ [0, 1]`: node `i`'s assessment of node `j`, estimated purely
//! from direct interactions (the paper delegates estimation to the
//! authors' earlier work and assumes the values exist). This crate owns
//! everything "below" the gossip layer:
//!
//! * [`TrustValue`] — a validated `[0, 1]` trust score,
//! * [`TrustMatrix`] — the sparse `N × N` matrix of direct-interaction
//!   trust values (`t_ij`), row-indexed by the observing node,
//! * [`estimator`] — transaction-outcome driven estimators (EWMA and a
//!   Beta-posterior mean) that produce `t_ij` from a synthetic
//!   file-sharing workload (our substitution for the paper's unpublished
//!   trace data; see DESIGN.md §4),
//! * [`aimd`] — a BLUE-inspired AIMD estimator in the spirit of the
//!   authors' companion estimation paper (the paper's reference \[20\]),
//! * [`weights`] — the neighbour-opinion weight law `w_Ii = a^(b·t_Ii)`
//!   of Eq. (2), with the paper's `w ≥ 1` invariant,
//! * [`sharded`] — the sharded CSR container behind the million-node
//!   round engine: contiguous row ranges, one shard-local CSR each,
//!   with a cross-shard subject-sum merge that is bit-identical to the
//!   flat backends for any shard count,
//! * [`delta`] — the column-postings mirror with delta-maintained
//!   per-subject aggregates behind the incremental engine: dirty
//!   subjects recompute through the same kernel as the from-scratch
//!   sweep, so delta results are bit-identical, clean subjects are
//!   free,
//! * [`table`] — the per-node reputation table of the system model
//!   (local trust + last-heard bookkeeping for dropping silent peers),
//! * [`robust`] — robust-aggregation countermeasures (report clamping,
//!   per-subject trimmed aggregation) for adversarial gossip channels,
//! * `tiled` (internal) — the cache-aware tiled subject-sum sweeps
//!   behind [`TrustMatrix::subject_sums_and_counts`]: entries bucketed
//!   by L2-sized subject tile, SoA accumulators per tile, tiles
//!   executed on the work-stealing pool — bit-identical to the naive
//!   scatter at any thread count,
//! * [`audit`] — the deterministic stochastic-audit layer against
//!   within-bounds stealth cartels: seeded audit-target selection, the
//!   bounded per-node [`ReportLog`] re-verification
//!   buffer, and the k-strikes conviction policy,
//! * [`snapshot`] — the serve layer's read side: immutable per-round
//!   [`ReputationSnapshot`]s with an incrementally-maintained rank
//!   index (`top_k` / `percentile`), published through the
//!   double-buffered [`SnapshotCell`] so readers never block the
//!   round engine.

#![warn(missing_docs)]

pub mod aimd;
pub mod audit;
pub mod csr;
pub mod delta;
pub mod error;
pub mod estimator;
pub mod matrix;
pub mod robust;
pub mod sharded;
pub mod snapshot;
pub mod table;
mod tiled;
pub mod value;
pub mod weights;

pub use audit::{audit_targets, AuditPolicy, ReportLog, ReportLogEntry};
pub use csr::{CsrBuilder, CsrStorage};
pub use delta::SubjectAggregateCache;
pub use error::TrustError;
pub use matrix::TrustMatrix;
pub use robust::RobustAggregation;
pub use sharded::{ShardSpec, ShardedCsr, ShardedCsrBuilder};
pub use snapshot::{RankIndex, ReputationSnapshot, SnapshotCell};
pub use value::TrustValue;
pub use weights::WeightParams;

/// Convenience prelude.
pub mod prelude {
    pub use crate::aimd::{AimdEstimator, AimdParams};
    pub use crate::estimator::{BetaEstimator, EwmaEstimator, TransactionOutcome, TrustEstimator};
    pub use crate::matrix::TrustMatrix;
    pub use crate::robust::RobustAggregation;
    pub use crate::table::ReputationTable;
    pub use crate::value::TrustValue;
    pub use crate::weights::WeightParams;
}
