//! Validated trust scores.
//!
//! "Trust value should always lie in between zero and one" (Section 4);
//! `t = 1` is complete trust, `t = 0` none. New, never-seen peers start at
//! 0 to blunt whitewashing (Section 4.1.2).

use crate::error::TrustError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A trust score in `[0, 1]`.
///
/// The inner value is guaranteed finite and in range by every constructor,
/// so downstream arithmetic (gossip mass, weight exponents) never sees NaN
/// or out-of-range inputs.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
#[serde(try_from = "f64", into = "f64")]
pub struct TrustValue(f64);

impl TrustValue {
    /// No trust — also the initial value for unknown peers (anti-whitewash).
    pub const ZERO: TrustValue = TrustValue(0.0);
    /// Complete trust.
    pub const ONE: TrustValue = TrustValue(1.0);
    /// Indifference point.
    pub const HALF: TrustValue = TrustValue(0.5);

    /// Construct, rejecting non-finite or out-of-range values.
    pub fn new(v: f64) -> Result<Self, TrustError> {
        if !v.is_finite() {
            return Err(TrustError::NotFinite(v));
        }
        if !(0.0..=1.0).contains(&v) {
            return Err(TrustError::OutOfRange(v));
        }
        Ok(TrustValue(v))
    }

    /// Construct by clamping a finite value into `[0, 1]`.
    ///
    /// NaN clamps to 0 (the paper's conservative default for "no basis
    /// for trust").
    pub fn saturating(v: f64) -> Self {
        if v.is_nan() {
            return TrustValue(0.0);
        }
        TrustValue(v.clamp(0.0, 1.0))
    }

    /// Raw score.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Linear interpolation `self + rate·(target − self)`, the EWMA step
    /// used by the estimators. `rate` is clamped to `[0, 1]`.
    pub fn blend_towards(self, target: TrustValue, rate: f64) -> TrustValue {
        let rate = if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        };
        TrustValue(self.0 + rate * (target.0 - self.0))
    }

    /// Absolute difference of two trust values (used by the `Δ`-triggered
    /// neighbour re-push of Algorithm 2).
    pub fn abs_diff(self, other: TrustValue) -> f64 {
        (self.0 - other.0).abs()
    }
}

impl TryFrom<f64> for TrustValue {
    type Error = TrustError;
    fn try_from(v: f64) -> Result<Self, Self::Error> {
        TrustValue::new(v)
    }
}

impl From<TrustValue> for f64 {
    fn from(v: TrustValue) -> f64 {
        v.0
    }
}

impl fmt::Display for TrustValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructor_validates_range() {
        assert!(TrustValue::new(0.0).is_ok());
        assert!(TrustValue::new(1.0).is_ok());
        assert!(TrustValue::new(0.5).is_ok());
        assert_eq!(TrustValue::new(-0.1), Err(TrustError::OutOfRange(-0.1)));
        assert_eq!(TrustValue::new(1.1), Err(TrustError::OutOfRange(1.1)));
        assert!(matches!(
            TrustValue::new(f64::NAN),
            Err(TrustError::NotFinite(_))
        ));
        assert!(matches!(
            TrustValue::new(f64::INFINITY),
            Err(TrustError::NotFinite(_))
        ));
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(TrustValue::saturating(-3.0).get(), 0.0);
        assert_eq!(TrustValue::saturating(42.0).get(), 1.0);
        assert_eq!(TrustValue::saturating(f64::NAN).get(), 0.0);
        assert_eq!(TrustValue::saturating(0.25).get(), 0.25);
    }

    #[test]
    fn blend_moves_towards_target() {
        let t = TrustValue::ZERO.blend_towards(TrustValue::ONE, 0.3);
        assert!((t.get() - 0.3).abs() < 1e-12);
        let t2 = t.blend_towards(TrustValue::ONE, 1.0);
        assert_eq!(t2, TrustValue::ONE);
        let same = t.blend_towards(TrustValue::ZERO, 0.0);
        assert_eq!(same, t);
    }

    #[test]
    fn blend_with_nan_rate_is_identity() {
        let t = TrustValue::HALF.blend_towards(TrustValue::ONE, f64::NAN);
        assert_eq!(t, TrustValue::HALF);
    }

    #[test]
    fn serde_rejects_out_of_range() {
        let ok: Result<TrustValue, _> = serde_json::from_str("0.75");
        assert_eq!(ok.unwrap().get(), 0.75);
        let bad: Result<TrustValue, _> = serde_json::from_str("1.5");
        assert!(bad.is_err());
    }

    proptest! {
        #[test]
        fn blend_stays_in_range(a in 0.0..=1.0f64, b in 0.0..=1.0f64, r in -1.0..2.0f64) {
            let t = TrustValue::new(a).unwrap()
                .blend_towards(TrustValue::new(b).unwrap(), r);
            prop_assert!((0.0..=1.0).contains(&t.get()));
        }

        #[test]
        fn saturating_always_valid(v in proptest::num::f64::ANY) {
            let t = TrustValue::saturating(v);
            prop_assert!((0.0..=1.0).contains(&t.get()));
        }
    }
}
