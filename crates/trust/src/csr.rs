//! Flat CSR storage for the trust matrix.
//!
//! The gossip and closed-form aggregation hot paths read the trust
//! matrix row-major millions of times per round but almost never mutate
//! it mid-phase. This module provides the frozen representation: every
//! row is a sorted `(column, value)` run inside one arena `Vec`, located
//! by an `n + 1`-entry row-pointer array — the same layout `dg-graph`
//! uses for adjacency. Point lookups are a binary search within the
//! row's run; row scans are contiguous memory.
//!
//! Mutation goes through [`CsrBuilder`] (the bulk, out-of-order phase)
//! or through [`CsrStorage::set`] / [`CsrStorage::remove`] (in-place
//! splices — correct but `O(nnz)` in the worst case, intended for
//! occasional touch-ups, not bulk loads).

use crate::error::TrustError;
use crate::value::TrustValue;
use dg_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Frozen CSR trust storage: sorted `(col, value)` runs over one arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrStorage {
    /// `row_ptr[i]..row_ptr[i + 1]` is row `i`'s run in `cells`.
    row_ptr: Vec<usize>,
    /// Arena of `(column, value)` pairs, sorted by column within a row.
    cells: Vec<(NodeId, TrustValue)>,
}

impl CsrStorage {
    /// Empty storage for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            row_ptr: vec![0; n + 1],
            cells: Vec::new(),
        }
    }

    /// Dimension `N`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Total stored entries.
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.cells.len()
    }

    /// The sorted `(column, value)` run of row `i` (empty when out of
    /// range).
    #[inline]
    pub fn row(&self, i: NodeId) -> &[(NodeId, TrustValue)] {
        match self.row_ptr.get(i.index()..i.index() + 2) {
            Some(&[start, end]) => &self.cells[start..end],
            _ => &[],
        }
    }

    /// Point lookup by binary search within the row's run.
    pub fn get(&self, i: NodeId, j: NodeId) -> Option<TrustValue> {
        let run = self.row(i);
        run.binary_search_by_key(&j, |&(col, _)| col)
            .ok()
            .map(|idx| run[idx].1)
    }

    /// Insert or overwrite `t_ij`; splices the arena on insert.
    pub fn set(&mut self, i: NodeId, j: NodeId, t: TrustValue) -> Result<(), TrustError> {
        let n = self.node_count();
        for id in [i, j] {
            if id.index() >= n {
                return Err(TrustError::NodeOutOfRange { id: id.0, n });
            }
        }
        self.splice_set(i.index(), j, t);
        Ok(())
    }

    /// Splice-insert into a row *without bounds checks* — the sharded
    /// container routes global ids onto local rows and does its own
    /// (global) validation first.
    pub(crate) fn splice_set(&mut self, row: usize, j: NodeId, t: TrustValue) {
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        match self.cells[start..end].binary_search_by_key(&j, |&(col, _)| col) {
            Ok(idx) => self.cells[start + idx].1 = t,
            Err(idx) => {
                self.cells.insert(start + idx, (j, t));
                for ptr in &mut self.row_ptr[row + 1..] {
                    *ptr += 1;
                }
            }
        }
    }

    /// Remove an entry, splicing the arena; returns the old value.
    pub fn remove(&mut self, i: NodeId, j: NodeId) -> Option<TrustValue> {
        if i.index() >= self.node_count() {
            return None;
        }
        self.splice_remove(i.index(), j)
    }

    /// Concatenate row-partitioned storages into one flat storage: the
    /// arenas append in order and the row pointers shift by the running
    /// cell offset. Because each part's rows are already sorted runs,
    /// the result is exactly the arena one big builder over all rows
    /// would have produced — `O(nnz)` memcpy, no re-sort.
    pub(crate) fn concat(parts: impl IntoIterator<Item = CsrStorage>) -> CsrStorage {
        let mut row_ptr = vec![0usize];
        let mut cells = Vec::new();
        for part in parts {
            let base = cells.len();
            cells.extend(part.cells);
            row_ptr.extend(part.row_ptr.into_iter().skip(1).map(|p| p + base));
        }
        CsrStorage { row_ptr, cells }
    }

    /// Replace whole rows in one `O(nnz)` arena rebuild — the bulk
    /// write path behind
    /// [`TrustMatrix::replace_rows`](crate::TrustMatrix::replace_rows).
    /// `rows` must be sorted by ascending row id without duplicates and
    /// each run sorted by ascending column (the caller validates; rows
    /// out of range are ignored). Far cheaper than per-entry splices
    /// when a round touches many cells: one pass instead of `O(nnz)`
    /// pointer shifts per write.
    pub fn replace_rows(&mut self, rows: &[(NodeId, Vec<(NodeId, TrustValue)>)]) {
        let local: Vec<(usize, &[(NodeId, TrustValue)])> = rows
            .iter()
            .map(|(i, run)| (i.index(), run.as_slice()))
            .collect();
        self.replace_rows_by_local(&local);
    }

    /// [`replace_rows`](Self::replace_rows) with shard-local row
    /// indices — the sharded container routes global rows here after
    /// translating them. Rows past this storage's dimension are
    /// ignored (the malformed-serde degrade convention of this crate).
    pub(crate) fn replace_rows_by_local(&mut self, rows: &[(usize, &[(NodeId, TrustValue)])]) {
        let n = self.node_count();
        let replaced: usize = rows
            .iter()
            .filter(|(i, _)| *i < n)
            .map(|(_, run)| run.len())
            .sum();
        let mut cells = Vec::with_capacity(self.cells.len() + replaced);
        let mut row_ptr = Vec::with_capacity(self.row_ptr.len());
        row_ptr.push(0);
        let mut k = 0usize;
        for i in 0..n {
            while k < rows.len() && rows[k].0 < i {
                k += 1;
            }
            if k < rows.len() && rows[k].0 == i {
                cells.extend_from_slice(rows[k].1);
                k += 1;
            } else {
                cells.extend_from_slice(&self.cells[self.row_ptr[i]..self.row_ptr[i + 1]]);
            }
            row_ptr.push(cells.len());
        }
        self.cells = cells;
        self.row_ptr = row_ptr;
    }

    /// Splice-remove from a row by local index (see
    /// [`splice_set`](Self::splice_set)).
    pub(crate) fn splice_remove(&mut self, row: usize, j: NodeId) -> Option<TrustValue> {
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        let idx = self.cells[start..end]
            .binary_search_by_key(&j, |&(col, _)| col)
            .ok()?;
        let (_, old) = self.cells.remove(start + idx);
        for ptr in &mut self.row_ptr[row + 1..] {
            *ptr -= 1;
        }
        Some(old)
    }
}

/// Mutable-phase builder for [`CsrStorage`]: accepts out-of-order
/// `(i, j, t)` triples, then sorts each row and deduplicates
/// (last write wins) on [`build`](CsrBuilder::build).
///
/// ```
/// use dg_graph::NodeId;
/// use dg_trust::{CsrBuilder, TrustMatrix, TrustValue};
///
/// let mut b = CsrBuilder::new(4);
/// // Out-of-order inserts are fine; the last write to a cell wins.
/// b.set(NodeId(2), NodeId(0), TrustValue::new(0.9)?)?;
/// b.set(NodeId(0), NodeId(3), TrustValue::new(0.2)?)?;
/// b.set(NodeId(0), NodeId(3), TrustValue::new(0.6)?)?;
///
/// let matrix = TrustMatrix::from_csr(b.build());
/// assert!(matrix.is_csr());
/// assert_eq!(matrix.entry_count(), 2);
/// assert_eq!(matrix.get(NodeId(0), NodeId(3)).map(|v| v.get()), Some(0.6));
/// # Ok::<(), dg_trust::TrustError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    cols: usize,
    rows: Vec<Vec<(NodeId, TrustValue)>>,
}

impl CsrBuilder {
    /// Builder for an `n × n` matrix.
    pub fn new(n: usize) -> Self {
        Self::rectangular(n, n)
    }

    /// Builder for a `rows × cols` *rectangular* block — a shard of a
    /// square matrix whose row indices are shard-local while column ids
    /// stay global (see [`crate::sharded`]).
    pub fn rectangular(rows: usize, cols: usize) -> Self {
        Self {
            cols,
            rows: vec![Vec::new(); rows],
        }
    }

    /// Number of rows this builder accepts.
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    /// Record `t_ij`. Later writes to the same cell win.
    pub fn set(&mut self, i: NodeId, j: NodeId, t: TrustValue) -> Result<(), TrustError> {
        if i.index() >= self.rows.len() {
            return Err(TrustError::NodeOutOfRange {
                id: i.0,
                n: self.rows.len(),
            });
        }
        if j.index() >= self.cols {
            return Err(TrustError::NodeOutOfRange {
                id: j.0,
                n: self.cols,
            });
        }
        self.rows[i.index()].push((j, t));
        Ok(())
    }

    /// Append a whole row for observer `i`. Equivalent to repeated
    /// [`set`](Self::set) calls, without per-call range checks on `i`.
    pub fn extend_row(
        &mut self,
        i: NodeId,
        entries: impl IntoIterator<Item = (NodeId, TrustValue)>,
    ) -> Result<(), TrustError> {
        if i.index() >= self.rows.len() {
            return Err(TrustError::NodeOutOfRange {
                id: i.0,
                n: self.rows.len(),
            });
        }
        for (j, t) in entries {
            if j.index() >= self.cols {
                return Err(TrustError::NodeOutOfRange {
                    id: j.0,
                    n: self.cols,
                });
            }
            self.rows[i.index()].push((j, t));
        }
        Ok(())
    }

    /// Freeze into CSR: per-row stable sort by column, last write wins.
    pub fn build(self) -> CsrStorage {
        let mut row_ptr = Vec::with_capacity(self.rows.len() + 1);
        let mut cells: Vec<(NodeId, TrustValue)> =
            Vec::with_capacity(self.rows.iter().map(Vec::len).sum());
        row_ptr.push(0);
        for mut row in self.rows {
            // Stable sort keeps insertion order within a column, so the
            // *last* duplicate is the one `rev()` sees first below.
            row.sort_by_key(|&(col, _)| col);
            let run_start = cells.len();
            for (col, val) in row {
                match cells[run_start..].last_mut() {
                    Some(last) if last.0 == col => last.1 = val,
                    _ => cells.push((col, val)),
                }
            }
            row_ptr.push(cells.len());
        }
        CsrStorage { row_ptr, cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(v: f64) -> TrustValue {
        TrustValue::saturating(v)
    }

    #[test]
    fn builder_sorts_rows_and_last_write_wins() {
        let mut b = CsrBuilder::new(4);
        b.set(NodeId(1), NodeId(3), tv(0.3)).unwrap();
        b.set(NodeId(1), NodeId(0), tv(0.1)).unwrap();
        b.set(NodeId(1), NodeId(3), tv(0.9)).unwrap();
        let csr = b.build();
        assert_eq!(
            csr.row(NodeId(1)),
            &[(NodeId(0), tv(0.1)), (NodeId(3), tv(0.9))]
        );
        assert_eq!(csr.entry_count(), 2);
        assert_eq!(csr.get(NodeId(1), NodeId(3)), Some(tv(0.9)));
        assert_eq!(csr.get(NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = CsrBuilder::new(2);
        assert!(b.set(NodeId(2), NodeId(0), tv(0.5)).is_err());
        assert!(b.set(NodeId(0), NodeId(9), tv(0.5)).is_err());
        assert!(b.extend_row(NodeId(0), [(NodeId(5), tv(0.5))]).is_err());
    }

    #[test]
    fn splice_set_and_remove_keep_runs_sorted() {
        let mut b = CsrBuilder::new(3);
        b.set(NodeId(0), NodeId(2), tv(0.2)).unwrap();
        b.set(NodeId(2), NodeId(1), tv(0.6)).unwrap();
        let mut csr = b.build();
        csr.set(NodeId(0), NodeId(1), tv(0.4)).unwrap();
        assert_eq!(
            csr.row(NodeId(0)),
            &[(NodeId(1), tv(0.4)), (NodeId(2), tv(0.2))]
        );
        // Later rows shifted, still reachable.
        assert_eq!(csr.get(NodeId(2), NodeId(1)), Some(tv(0.6)));
        assert_eq!(csr.remove(NodeId(0), NodeId(2)), Some(tv(0.2)));
        assert_eq!(csr.remove(NodeId(0), NodeId(2)), None);
        assert_eq!(csr.row(NodeId(0)), &[(NodeId(1), tv(0.4))]);
        assert_eq!(csr.get(NodeId(2), NodeId(1)), Some(tv(0.6)));
        assert_eq!(csr.entry_count(), 2);
    }
}
