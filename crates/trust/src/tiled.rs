//! Cache-aware tiled subject-sum sweeps.
//!
//! The aggregation hot path reduces every stored trust entry into
//! per-subject `(Σᵢ t_ij, N_d)` accumulators. The naive sweep walks the
//! matrix row-major and scatters into two `N`-sized arrays — at a
//! million subjects that is ~12 MiB of accumulator state bouncing
//! through cache behind an essentially random column index stream.
//!
//! The tiled sweep restores locality in two passes:
//!
//! 1. **Bucket** — one row-major pass appends `(local subject, value)`
//!    pairs to a per-tile bucket, where a tile is [`SUBJECT_TILE`]
//!    consecutive subject ids. Appends are sequential writes; the pass
//!    streams the matrix exactly once.
//! 2. **Accumulate** — each tile reduces its bucket into tile-local
//!    accumulators held **SoA** (a `Vec<f64>` of sums next to a
//!    `Vec<usize>` of counts) that fit in L2, then the tile results are
//!    concatenated in tile order.
//!
//! # Bit-identity
//!
//! The result is bit-for-bit the naive sweep's. Each subject lives in
//! exactly one tile, bucketing preserves the row-major (ascending
//! observer) order of each subject's reports, and each accumulator slot
//! receives additions in exactly the order the naive sweep would have
//! applied them — f64 addition is only order-sensitive *per slot*.
//! Tiles own disjoint output ranges, so executing them on the
//! work-stealing pool (weighted by bucket size) cannot change any
//! result either; the sweep is deterministic at every thread count.
//! The robust variant orders each subject's run with a *stable*
//! counting sort by local subject index before handing it to
//! [`RobustAggregation::subject_sum`] — the same ascending-observer
//! order the naive per-subject collection produced.

use crate::robust::RobustAggregation;
use crate::value::TrustValue;
use dg_graph::NodeId;

/// Subjects per tile. Sums (8 B) + counts (8 B) per subject keep a
/// tile's accumulators at ≈ 256 KiB — resident in a typical 512 KiB+
/// L2 slice while the tile's bucket streams through.
pub(crate) const SUBJECT_TILE: usize = 16_384;

/// Entry stream feeding a sweep: `(observer, subject, value)` triples
/// in row-major order (exactly what `TrustMatrix::entries` yields).
type Entries<'a> = dyn Iterator<Item = (NodeId, NodeId, TrustValue)> + 'a;

/// Bucket the entry stream by subject tile, preserving the stream
/// order within every tile (and therefore within every subject).
fn bucket_by_tile(n: usize, tile: usize, entries: &mut Entries<'_>) -> Vec<Vec<(u32, f64)>> {
    let mut buckets: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n.div_ceil(tile).max(1)];
    for (_, j, t) in entries {
        let j = j.index();
        buckets[j / tile].push(((j % tile) as u32, t.get()));
    }
    buckets
}

/// Reduce per-tile results (in tile order) into the full `N`-sized
/// SoA accumulator pair.
fn stitch(n: usize, parts: Vec<(Vec<f64>, Vec<usize>)>) -> (Vec<f64>, Vec<usize>) {
    let mut sums = Vec::with_capacity(n);
    let mut counts = Vec::with_capacity(n);
    for (s, c) in parts {
        sums.extend(s);
        counts.extend(c);
    }
    debug_assert_eq!(sums.len(), n);
    (sums, counts)
}

/// Plain per-subject `(Σ t, N_d)` over a row-major entry stream,
/// tiled: bit-identical to the naive scatter sweep at any thread
/// count.
pub(crate) fn plain_sums(
    n: usize,
    tile: usize,
    mut entries: impl Iterator<Item = (NodeId, NodeId, TrustValue)>,
) -> (Vec<f64>, Vec<usize>) {
    if n <= tile {
        // Single tile: the accumulators already fit in L2 — scatter
        // directly, no bucket materialisation.
        let mut sums = vec![0.0; n];
        let mut counts = vec![0usize; n];
        for (_, j, t) in entries {
            sums[j.index()] += t.get();
            counts[j.index()] += 1;
        }
        return (sums, counts);
    }
    let buckets = bucket_by_tile(n, tile, &mut entries);
    let costs: Vec<u64> = buckets.iter().map(|b| b.len() as u64 + 1).collect();
    let work: Vec<(usize, Vec<(u32, f64)>)> = buckets.into_iter().enumerate().collect();
    let parts = rayon::map_weighted(work, &costs, |(ti, bucket)| {
        let len = tile.min(n - ti * tile);
        let mut sums = vec![0.0; len];
        let mut counts = vec![0usize; len];
        for (lj, v) in bucket {
            sums[lj as usize] += v;
            counts[lj as usize] += 1;
        }
        (sums, counts)
    });
    stitch(n, parts)
}

/// Robust per-subject `(Σ t, kept)` over a row-major entry stream,
/// tiled: each subject's reports are gathered in ascending-observer
/// order (stable counting sort by local subject index) and reduced by
/// the shared [`RobustAggregation::subject_sum`] kernel. Bit-identical
/// to the naive per-subject collection at any thread count.
pub(crate) fn robust_sums(
    n: usize,
    tile: usize,
    policy: &RobustAggregation,
    mut entries: impl Iterator<Item = (NodeId, NodeId, TrustValue)>,
) -> (Vec<f64>, Vec<usize>) {
    let buckets = bucket_by_tile(n, tile, &mut entries);
    let costs: Vec<u64> = buckets.iter().map(|b| b.len() as u64 + 1).collect();
    let work: Vec<(usize, Vec<(u32, f64)>)> = buckets.into_iter().enumerate().collect();
    let parts = rayon::map_weighted(work, &costs, |(ti, bucket)| {
        let len = tile.min(n - ti * tile);
        // Stable counting sort by local subject: run boundaries from
        // per-subject counts, then one placement pass that preserves
        // the bucket (= ascending observer) order inside each run.
        let mut offsets = vec![0usize; len + 1];
        for &(lj, _) in &bucket {
            offsets[lj as usize + 1] += 1;
        }
        for lj in 0..len {
            offsets[lj + 1] += offsets[lj];
        }
        let mut runs = vec![0.0f64; bucket.len()];
        let mut cursor = offsets.clone();
        for (lj, v) in bucket {
            let slot = &mut cursor[lj as usize];
            runs[*slot] = v;
            *slot += 1;
        }
        let mut sums = vec![0.0; len];
        let mut counts = vec![0usize; len];
        for lj in 0..len {
            let (sum, count) = policy.subject_sum(&mut runs[offsets[lj]..offsets[lj + 1]]);
            sums[lj] = sum;
            counts[lj] = count;
        }
        (sums, counts)
    });
    stitch(n, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tv(v: f64) -> TrustValue {
        TrustValue::new(v).unwrap()
    }

    /// Row-major entry stream from a dense list of (i, j, v).
    fn stream(entries: &[(u32, u32, f64)]) -> Vec<(NodeId, NodeId, TrustValue)> {
        let mut e: Vec<_> = entries
            .iter()
            .map(|&(i, j, v)| (NodeId(i), NodeId(j), tv(v)))
            .collect();
        e.sort_by_key(|&(i, j, _)| (i, j));
        e.dedup_by_key(|&mut (i, j, _)| (i, j));
        e
    }

    /// The naive reference sweeps the tiled paths are pinned against.
    fn naive_plain(n: usize, entries: &[(NodeId, NodeId, TrustValue)]) -> (Vec<f64>, Vec<usize>) {
        let mut sums = vec![0.0; n];
        let mut counts = vec![0usize; n];
        for &(_, j, t) in entries {
            sums[j.index()] += t.get();
            counts[j.index()] += 1;
        }
        (sums, counts)
    }

    fn naive_robust(
        n: usize,
        policy: &RobustAggregation,
        entries: &[(NodeId, NodeId, TrustValue)],
    ) -> (Vec<f64>, Vec<usize>) {
        let mut reports: Vec<Vec<f64>> = vec![Vec::new(); n];
        for &(_, j, t) in entries {
            reports[j.index()].push(t.get());
        }
        let mut sums = vec![0.0; n];
        let mut counts = vec![0usize; n];
        for (j, mut values) in reports.into_iter().enumerate() {
            let (sum, count) = policy.subject_sum(&mut values);
            sums[j] = sum;
            counts[j] = count;
        }
        (sums, counts)
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    proptest! {
        /// Tiled plain sweep is bit-identical to the naive scatter for
        /// any entry set, any (tiny) tile size and any thread count.
        #[test]
        fn plain_matches_naive_bitwise(
            raw in proptest::collection::vec((0u32..30, 0u32..30, 0.0..1.0f64), 0..200),
            tile in 1usize..8,
            threads in 1usize..5,
        ) {
            let n = 30;
            let entries = stream(&raw);
            let expect = naive_plain(n, &entries);
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got = pool.install(|| plain_sums(n, tile, entries.iter().copied()));
            prop_assert_eq!(bits(&got.0), bits(&expect.0));
            prop_assert_eq!(got.1, expect.1);
        }

        /// Tiled robust sweep is bit-identical to the naive per-subject
        /// collection under a trimming + clamping policy.
        #[test]
        fn robust_matches_naive_bitwise(
            raw in proptest::collection::vec((0u32..30, 0u32..30, 0.0..1.0f64), 0..200),
            tile in 1usize..8,
            threads in 1usize..5,
            trim in 0.0..0.5f64,
        ) {
            let n = 30;
            let policy = RobustAggregation { clamp_lo: 0.1, clamp_hi: 0.9, trim_fraction: trim };
            let entries = stream(&raw);
            let expect = naive_robust(n, &policy, &entries);
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got = pool.install(|| robust_sums(n, tile, &policy, entries.iter().copied()));
            prop_assert_eq!(bits(&got.0), bits(&expect.0));
            prop_assert_eq!(got.1, expect.1);
        }
    }

    #[test]
    fn empty_stream_yields_zeroes() {
        let (s, c) = plain_sums(5, 2, std::iter::empty());
        assert_eq!(s, vec![0.0; 5]);
        assert_eq!(c, vec![0; 5]);
        let (s, c) = robust_sums(5, 2, &RobustAggregation::defended(), std::iter::empty());
        assert_eq!(s, vec![0.0; 5]);
        assert_eq!(c, vec![0; 5]);
    }

    #[test]
    fn zero_subjects_is_fine() {
        let (s, c) = plain_sums(0, 4, std::iter::empty());
        assert!(s.is_empty() && c.is_empty());
    }
}
