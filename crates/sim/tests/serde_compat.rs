//! Serialized-config compatibility: configs written before a field
//! existed must keep deserializing (the `#[serde(default)]` support in
//! the vendored derive).

use dg_sim::scenario::Topology;
use dg_sim::ScenarioConfig;

#[test]
fn scenario_config_deserializes_without_profile_field() {
    // The exact shape ScenarioConfig serialized to before the network
    // profile existed (PR 3): the new field must default to lossless.
    let s = r#"{"nodes":10,"m":2,"seed":1,"weight_a":2.0,"weight_b":2.0,
        "free_rider_fraction":0.0,"quality_range":[0.2,1.0],
        "trust_source":"Exact","topology":"Pa","far_partners":0,
        "engine":"Sequential"}"#;
    let c: ScenarioConfig = serde_json::from_str(s).unwrap();
    assert!(c.profile.is_reliable());
    assert_eq!(c.nodes, 10);
    assert_eq!(c.topology, Topology::Pa);
}

#[test]
fn scenario_config_roundtrips_with_profile() {
    let config = ScenarioConfig::with_nodes(64).with_profile(dg_gossip::NetworkProfile::churning());
    let s = serde_json::to_string(&config).unwrap();
    let back: ScenarioConfig = serde_json::from_str(&s).unwrap();
    assert_eq!(config, back);
    assert_eq!(back.profile.label(), "churning");
}

#[test]
fn scenario_config_roundtrips_with_adversary_mix() {
    let config =
        ScenarioConfig::with_nodes(64).with_adversary(dg_gossip::AdversaryMix::whitewash());
    let s = serde_json::to_string(&config).unwrap();
    let back: ScenarioConfig = serde_json::from_str(&s).unwrap();
    assert_eq!(config, back);
    assert_eq!(back.adversary.label(), "whitewash");
}

#[test]
fn pre_sharding_rounds_config_still_deserializes() {
    // RoundsConfig serialized before the sharded engine existed has no
    // `shard_count`; it must default to 0 (the auto partition).
    let config = dg_sim::rounds::RoundsConfig::default();
    let json = serde_json::to_string(&config).unwrap();
    let legacy = json.replace(",\"shard_count\":0", "");
    assert!(!legacy.contains("shard_count"), "{legacy}");
    let back: dg_sim::rounds::RoundsConfig = serde_json::from_str(&legacy).unwrap();
    assert_eq!(back.shard_count, 0);
    assert_eq!(back, config);
}

#[test]
fn pre_adversary_rounds_config_still_deserializes() {
    // RoundsConfig serialized before the defense policy existed: the
    // new fields must default to the paper's plain behaviour.
    let config = dg_sim::rounds::RoundsConfig::default();
    let json = serde_json::to_string(&config).unwrap();
    let legacy = strip_object_field(&strip_object_field(&json, "defense"), "adversary");
    assert!(!legacy.contains("defense") && !legacy.contains("adversary"));
    let back: dg_sim::rounds::RoundsConfig = serde_json::from_str(&legacy).unwrap();
    assert!(back.defense.is_none());
    assert!(back.gossip.adversary.is_none());
    assert_eq!(back, config);
}

/// Remove `"field":{...}` (brace-matched) plus one adjoining comma from
/// a JSON string — simulates configs written before the field existed.
fn strip_object_field(json: &str, field: &str) -> String {
    let key = format!("\"{field}\":");
    let start = json.find(&key).expect("field present");
    let mut depth = 0usize;
    let mut end = json.len();
    for (i, c) in json[start..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = start + i + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    if json[end..].starts_with(',') {
        out.push_str(&json[..start]);
        out.push_str(&json[end + 1..]);
    } else {
        out.push_str(json[..start].trim_end_matches(','));
        out.push_str(&json[end..]);
    }
    out
}
