//! Serialized-config compatibility: configs written before a field
//! existed must keep deserializing (the `#[serde(default)]` support in
//! the vendored derive).

use dg_sim::scenario::Topology;
use dg_sim::ScenarioConfig;

#[test]
fn scenario_config_deserializes_without_profile_field() {
    // The exact shape ScenarioConfig serialized to before the network
    // profile existed (PR 3): the new field must default to lossless.
    let s = r#"{"nodes":10,"m":2,"seed":1,"weight_a":2.0,"weight_b":2.0,
        "free_rider_fraction":0.0,"quality_range":[0.2,1.0],
        "trust_source":"Exact","topology":"Pa","far_partners":0,
        "engine":"Sequential"}"#;
    let c: ScenarioConfig = serde_json::from_str(s).unwrap();
    assert!(c.profile.is_reliable());
    assert_eq!(c.nodes, 10);
    assert_eq!(c.topology, Topology::Pa);
}

#[test]
fn scenario_config_roundtrips_with_profile() {
    let config = ScenarioConfig::with_nodes(64).with_profile(dg_gossip::NetworkProfile::churning());
    let s = serde_json::to_string(&config).unwrap();
    let back: ScenarioConfig = serde_json::from_str(&s).unwrap();
    assert_eq!(config, back);
    assert_eq!(back.profile.label(), "churning");
}
