//! Serialized-config compatibility: configs written before a field
//! existed must keep deserializing (the `#[serde(default)]` support in
//! the vendored derive).

use dg_sim::scenario::Topology;
use dg_sim::ScenarioConfig;

#[test]
fn scenario_config_deserializes_without_profile_field() {
    // The exact shape ScenarioConfig serialized to before the network
    // profile existed (PR 3): the new field must default to lossless.
    let s = r#"{"nodes":10,"m":2,"seed":1,"weight_a":2.0,"weight_b":2.0,
        "free_rider_fraction":0.0,"quality_range":[0.2,1.0],
        "trust_source":"Exact","topology":"Pa","far_partners":0,
        "engine":"Sequential"}"#;
    let c: ScenarioConfig = serde_json::from_str(s).unwrap();
    assert!(c.profile.is_reliable());
    assert_eq!(c.nodes, 10);
    assert_eq!(c.topology, Topology::Pa);
}

#[test]
fn scenario_config_roundtrips_with_profile() {
    let config = ScenarioConfig::with_nodes(64).with_profile(dg_gossip::NetworkProfile::churning());
    let s = serde_json::to_string(&config).unwrap();
    let back: ScenarioConfig = serde_json::from_str(&s).unwrap();
    assert_eq!(config, back);
    assert_eq!(back.profile.label(), "churning");
}

#[test]
fn scenario_config_roundtrips_with_adversary_mix() {
    let config =
        ScenarioConfig::with_nodes(64).with_adversary(dg_gossip::AdversaryMix::whitewash());
    let s = serde_json::to_string(&config).unwrap();
    let back: ScenarioConfig = serde_json::from_str(&s).unwrap();
    assert_eq!(config, back);
    assert_eq!(back.adversary.label(), "whitewash");
}

#[test]
fn pre_sharding_rounds_config_still_deserializes() {
    // RoundsConfig serialized before the sharded engine existed has no
    // `shard_count`; it must default to 0 (the auto partition).
    let config = dg_sim::rounds::RoundsConfig::default();
    let json = serde_json::to_string(&config).unwrap();
    let legacy = json.replace(",\"shard_count\":0", "");
    assert!(!legacy.contains("shard_count"), "{legacy}");
    let back: dg_sim::rounds::RoundsConfig = serde_json::from_str(&legacy).unwrap();
    assert_eq!(back.shard_count, 0);
    assert_eq!(back, config);
}

#[test]
fn pre_adversary_rounds_config_still_deserializes() {
    // RoundsConfig serialized before the defense policy existed: the
    // new fields must default to the paper's plain behaviour.
    let config = dg_sim::rounds::RoundsConfig::default();
    let json = serde_json::to_string(&config).unwrap();
    let legacy = strip_object_field(&strip_object_field(&json, "defense"), "adversary");
    assert!(!legacy.contains("defense") && !legacy.contains("adversary"));
    let back: dg_sim::rounds::RoundsConfig = serde_json::from_str(&legacy).unwrap();
    assert!(back.defense.is_none());
    assert!(back.gossip.adversary.is_none());
    assert_eq!(back, config);
}

#[test]
fn pre_traffic_configs_still_deserialize_as_full_traffic() {
    // RoundsConfig and ScenarioConfig serialized before the traffic
    // model existed: the new field must default to the legacy
    // every-node-every-round workload.
    let config = dg_sim::rounds::RoundsConfig::default();
    let legacy = strip_object_field(&serde_json::to_string(&config).unwrap(), "traffic");
    assert!(!legacy.contains("traffic"), "{legacy}");
    let back: dg_sim::rounds::RoundsConfig = serde_json::from_str(&legacy).unwrap();
    assert!(back.traffic.is_full());
    assert_eq!(back, config);

    let config = ScenarioConfig::with_nodes(32);
    let legacy = strip_object_field(&serde_json::to_string(&config).unwrap(), "traffic");
    let back: ScenarioConfig = serde_json::from_str(&legacy).unwrap();
    assert!(back.traffic.is_full());
    assert_eq!(back, config);
}

#[test]
fn partial_traffic_model_members_default_to_legacy_values() {
    // A config that only names the members it changes: absent members
    // fall back to full traffic's values (1.0 activity, no skew), not
    // the field types' zeroes — `activity_fraction: 0.0` would silence
    // the whole workload.
    let t: dg_sim::TrafficModel = serde_json::from_str(r#"{"zipf_exponent":1.2}"#).unwrap();
    assert_eq!(t.activity_fraction, 1.0);
    assert_eq!(t.zipf_exponent, 1.2);
    assert_eq!(t.flash_interval, 0);
    assert_eq!(t.flash_multiplier, 1.0);

    let t: dg_sim::TrafficModel = serde_json::from_str("{}").unwrap();
    assert!(t.is_full());

    let skewed = dg_sim::TrafficModel::full()
        .with_activity(0.05)
        .with_zipf(0.9)
        .with_flash(10, 5.0);
    let back: dg_sim::TrafficModel =
        serde_json::from_str(&serde_json::to_string(&skewed).unwrap()).unwrap();
    assert_eq!(back, skewed);
}

#[test]
fn legacy_round_stats_deserialize_with_zero_traffic_counters() {
    // RoundStats JSON written before the activity counters existed
    // (e.g. archived bench reports): the new fields default to zero.
    let legacy = r#"{"round":3,"served_honest":12,"refused_honest":1,
        "served_free_riders":0,"refused_free_riders":4,
        "served_adversaries":0,"refused_adversaries":0,
        "mean_rep_honest":0.5,"mean_rep_free_riders":0.1,
        "mean_rep_adversaries":0.0,"washes":2}"#;
    let stats: dg_sim::rounds::RoundStats = serde_json::from_str(legacy).unwrap();
    assert_eq!(stats.round, 3);
    assert_eq!(stats.washes, 2);
    assert_eq!(stats.active_nodes, 0);
    assert_eq!(stats.dirty_fraction, 0.0);
}

/// Remove `"field":{...}` (brace-matched) plus one adjoining comma from
/// a JSON string — simulates configs written before the field existed.
fn strip_object_field(json: &str, field: &str) -> String {
    let key = format!("\"{field}\":");
    let start = json.find(&key).expect("field present");
    let mut depth = 0usize;
    let mut end = json.len();
    for (i, c) in json[start..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = start + i + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    if json[end..].starts_with(',') {
        out.push_str(&json[..start]);
        out.push_str(&json[end + 1..]);
    } else {
        out.push_str(json[..start].trim_end_matches(','));
        out.push_str(&json[end..]);
    }
    out
}
