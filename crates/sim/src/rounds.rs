//! Multi-round reputation lifecycle driver.
//!
//! The paper's system model is a *loop*: peers transact, estimate trust
//! from outcomes, periodically aggregate reputations by gossip, and gate
//! service on the result ("every node is facilitated from the network as
//! per its contribution ... consequently free riding is discouraged").
//! "After the end of a round, next round of gossip will start after some
//! time" — this module drives that loop with a constant inter-round gap,
//! as the paper assumes for simplicity.
//!
//! Each round:
//!
//! 1. **Transactions** — every node requests chunks from each neighbour;
//!    providers serve according to their behaviour profile *and* (after
//!    the first aggregation) refuse requesters whose aggregated
//!    reputation is below the admission threshold.
//! 2. **Estimation** — outcomes update per-edge EWMA estimators and the
//!    node's [`ReputationTable`].
//! 3. **Aggregation** — a differential gossip round (Variation 4 in
//!    closed form or by real gossip, configurable) refreshes the
//!    aggregated reputations.

use crate::scenario::Scenario;
use dg_core::algorithms::alg4;
use dg_core::behavior::Behavior;
use dg_core::reputation::ReputationSystem;
use dg_core::CoreError;
use dg_gossip::GossipConfig;
use dg_graph::NodeId;
use dg_trust::prelude::{EwmaEstimator, ReputationTable, TransactionOutcome, TrustEstimator};
use dg_trust::TrustMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How reputations are refreshed each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationMode {
    /// Run the real Variation-4 vector gossip (slower, fully faithful).
    Gossip,
    /// Evaluate the converged limit in closed form (fast; the test suite
    /// separately verifies gossip reaches this limit).
    ClosedForm,
}

/// Round-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundsConfig {
    /// Rounds to simulate.
    pub rounds: usize,
    /// Requests per directed neighbour pair per round.
    pub requests_per_edge: u32,
    /// Admission threshold as a *fraction of the provider's own mean
    /// aggregated reputation*: a requester is served when its reputation
    /// clears `admission_threshold × mean`. Relative thresholds are
    /// necessary because Eq. (6) deflates estimates observer-dependently
    /// (an observer whose weighted neighbourhood holds no information
    /// about a subject treats the silence like 0-reports, the
    /// anti-whitewash default) — an absolute cut-off would let
    /// high-excess observers refuse honest strangers wholesale.
    pub admission_threshold: f64,
    /// EWMA learning rate for trust estimation.
    pub ewma_rate: f64,
    /// How to refresh reputations.
    pub aggregation: AggregationMode,
    /// Gossip tolerance for [`AggregationMode::Gossip`].
    pub xi: f64,
}

impl Default for RoundsConfig {
    fn default() -> Self {
        Self {
            rounds: 10,
            requests_per_edge: 5,
            admission_threshold: 0.35,
            ewma_rate: 0.3,
            aggregation: AggregationMode::ClosedForm,
            xi: 1e-4,
        }
    }
}

/// Per-round service statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Requests served, by requester behaviour class.
    pub served_honest: u64,
    /// Requests refused, honest requesters.
    pub refused_honest: u64,
    /// Requests served, free-riding requesters.
    pub served_free_riders: u64,
    /// Requests refused, free-riding requesters.
    pub refused_free_riders: u64,
    /// Mean aggregated reputation of honest nodes (as seen network-wide).
    pub mean_rep_honest: f64,
    /// Mean aggregated reputation of free riders.
    pub mean_rep_free_riders: f64,
}

impl RoundStats {
    /// Service rate for honest requesters.
    pub fn honest_service_rate(&self) -> f64 {
        rate(self.served_honest, self.refused_honest)
    }

    /// Service rate for free-riding requesters.
    pub fn free_rider_service_rate(&self) -> f64 {
        rate(self.served_free_riders, self.refused_free_riders)
    }
}

fn rate(served: u64, refused: u64) -> f64 {
    let total = served + refused;
    if total == 0 {
        return 0.0;
    }
    served as f64 / total as f64
}

/// The round-loop simulator.
pub struct RoundsSimulator<'s> {
    scenario: &'s Scenario,
    config: RoundsConfig,
    estimators: BTreeMap<(u32, u32), EwmaEstimator>,
    tables: Vec<ReputationTable>,
    /// Latest aggregated reputation per (observer, subject).
    aggregated: Vec<BTreeMap<u32, f64>>,
    /// Mean aggregated reputation per observer (admission scale).
    observer_mean: Vec<Option<f64>>,
    round: usize,
}

impl<'s> RoundsSimulator<'s> {
    /// Create a simulator over a scenario.
    pub fn new(scenario: &'s Scenario, config: RoundsConfig) -> Self {
        let n = scenario.graph.node_count();
        Self {
            scenario,
            config,
            estimators: BTreeMap::new(),
            tables: vec![ReputationTable::new(); n],
            aggregated: vec![BTreeMap::new(); n],
            observer_mean: vec![None; n],
            round: 0,
        }
    }

    /// The reputation table of one node.
    pub fn table(&self, node: NodeId) -> &ReputationTable {
        &self.tables[node.index()]
    }

    /// The aggregated reputation of `subject` at `observer`, if any
    /// aggregation round has run.
    pub fn aggregated(&self, observer: NodeId, subject: NodeId) -> Option<f64> {
        self.aggregated[observer.index()].get(&subject.0).copied()
    }

    /// Run one full round; returns its statistics.
    pub fn run_round<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<RoundStats, CoreError> {
        let graph = &self.scenario.graph;
        let population = &self.scenario.population;
        let n = graph.node_count();

        let mut stats = RoundStats {
            round: self.round,
            served_honest: 0,
            refused_honest: 0,
            served_free_riders: 0,
            refused_free_riders: 0,
            mean_rep_honest: 0.0,
            mean_rep_free_riders: 0.0,
        };

        // 1. Transactions along overlay edges.
        for requester in graph.nodes() {
            let is_free_rider =
                matches!(population.behavior(requester), Behavior::FreeRider { .. });
            for &provider in graph.neighbours(requester) {
                let provider = NodeId(provider);
                for _ in 0..self.config.requests_per_edge {
                    // Admission control at the provider.
                    let rep = self.aggregated[provider.index()].get(&requester.0).copied();
                    let admitted = match (rep, self.observer_mean[provider.index()]) {
                        (Some(r), Some(mean)) => r >= self.config.admission_threshold * mean,
                        // No aggregation yet (or nothing aggregated at
                        // this provider): serve everyone.
                        _ => true,
                    };
                    if admitted {
                        if is_free_rider {
                            stats.served_free_riders += 1;
                        } else {
                            stats.served_honest += 1;
                        }
                        // Requester observes the provider's behaviour and
                        // updates its estimator for the provider.
                        let quality = population.behavior(provider).sample_quality(rng);
                        let outcome = if quality == 0.0 {
                            TransactionOutcome::Refused
                        } else {
                            TransactionOutcome::Served { quality }
                        };
                        let est = self
                            .estimators
                            .entry((requester.0, provider.0))
                            .or_insert_with(|| EwmaEstimator::new(self.config.ewma_rate));
                        self.tables[requester.index()].record_transaction(
                            provider,
                            est,
                            outcome,
                            self.round as u64,
                        );
                    } else if is_free_rider {
                        stats.refused_free_riders += 1;
                    } else {
                        stats.refused_honest += 1;
                    }
                }
            }
        }

        // 2. Collect the current trust matrix from the estimators.
        let mut trust = TrustMatrix::new(n);
        for (&(i, j), est) in &self.estimators {
            trust
                .set(NodeId(i), NodeId(j), est.estimate())
                .expect("estimator keys are in range");
        }
        let system = ReputationSystem::new(graph, trust, self.scenario.weights)?;

        // 3. Aggregate.
        match self.config.aggregation {
            AggregationMode::ClosedForm => {
                for (i, row) in system.gclr_matrix().into_iter().enumerate() {
                    self.aggregated[i] = row.into_iter().map(|(j, r)| (j.0, r)).collect();
                }
            }
            AggregationMode::Gossip => {
                let out = alg4::run(&system, GossipConfig::differential(self.config.xi)?, rng)?;
                self.aggregated = out.estimates;
            }
        }

        // Refresh the observers' admission scales.
        for (i, row) in self.aggregated.iter().enumerate() {
            self.observer_mean[i] = if row.is_empty() {
                None
            } else {
                Some(row.values().sum::<f64>() / row.len() as f64)
            };
        }

        // 4. Population-level reputation summary (as seen by node 0's
        // table — every observer holds near-identical global values, and the
        // summary uses the mean over observers' views).
        let (mut rep_h, mut cnt_h, mut rep_f, mut cnt_f) = (0.0, 0usize, 0.0, 0usize);
        for subject in graph.nodes() {
            let mut sum = 0.0;
            let mut cnt = 0usize;
            for observer in 0..n {
                if let Some(&r) = self.aggregated[observer].get(&subject.0) {
                    sum += r;
                    cnt += 1;
                }
            }
            if cnt == 0 {
                continue;
            }
            let mean = sum / cnt as f64;
            if matches!(population.behavior(subject), Behavior::FreeRider { .. }) {
                rep_f += mean;
                cnt_f += 1;
            } else {
                rep_h += mean;
                cnt_h += 1;
            }
        }
        stats.mean_rep_honest = if cnt_h > 0 { rep_h / cnt_h as f64 } else { 0.0 };
        stats.mean_rep_free_riders = if cnt_f > 0 { rep_f / cnt_f as f64 } else { 0.0 };

        self.round += 1;
        Ok(stats)
    }

    /// Run all configured rounds.
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<Vec<RoundStats>, CoreError> {
        (0..self.config.rounds)
            .map(|_| self.run_round(rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    #[test]
    fn free_riders_get_starved() {
        let cfg = ScenarioConfig {
            nodes: 120,
            free_rider_fraction: 0.25,
            seed: 7,
            // Honest contributors are decent (≥ 0.4); the gap to free
            // riders is what admission control must detect.
            quality_range: (0.4, 1.0),
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::build(cfg).unwrap();
        let mut sim = RoundsSimulator::new(
            &scenario,
            RoundsConfig {
                rounds: 6,
                ..RoundsConfig::default()
            },
        );
        let mut rng = scenario.gossip_rng(2);
        let stats = sim.run(&mut rng).unwrap();

        // Round 0: nobody has reputations yet; everyone served.
        assert_eq!(stats[0].refused_honest + stats[0].refused_free_riders, 0);
        // By the last round free riders are mostly refused while honest
        // nodes keep near-full service.
        let last = stats.last().unwrap();
        assert!(
            last.free_rider_service_rate() < 0.2,
            "free riders still served at {}",
            last.free_rider_service_rate()
        );
        assert!(
            last.honest_service_rate() > 0.8,
            "honest service degraded to {}",
            last.honest_service_rate()
        );
        // Reputation separation.
        assert!(last.mean_rep_honest > last.mean_rep_free_riders + 0.2);
    }

    #[test]
    fn gossip_mode_agrees_with_closed_form_direction() {
        let cfg = ScenarioConfig {
            nodes: 60,
            free_rider_fraction: 0.2,
            seed: 11,
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::build(cfg).unwrap();
        let mut rng = scenario.gossip_rng(3);
        let mut sim = RoundsSimulator::new(
            &scenario,
            RoundsConfig {
                rounds: 4,
                aggregation: AggregationMode::Gossip,
                xi: 1e-6,
                ..RoundsConfig::default()
            },
        );
        let stats = sim.run(&mut rng).unwrap();
        let last = stats.last().unwrap();
        assert!(last.mean_rep_honest > last.mean_rep_free_riders);
    }

    #[test]
    fn aggregated_lookup_works() {
        let cfg = ScenarioConfig {
            nodes: 30,
            seed: 5,
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::build(cfg).unwrap();
        let mut sim = RoundsSimulator::new(&scenario, RoundsConfig::default());
        assert_eq!(sim.aggregated(NodeId(0), NodeId(1)), None);
        let mut rng = scenario.gossip_rng(4);
        sim.run_round(&mut rng).unwrap();
        // Node 1 is a neighbour of someone, so it has been rated and
        // aggregated.
        assert!(sim.aggregated(NodeId(0), NodeId(1)).is_some());
    }
}
