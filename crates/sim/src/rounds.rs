//! Multi-round reputation lifecycle driver.
//!
//! The paper's system model is a *loop*: peers transact, estimate trust
//! from outcomes, periodically aggregate reputations by gossip, and gate
//! service on the result ("every node is facilitated from the network as
//! per its contribution ... consequently free riding is discouraged").
//! "After the end of a round, next round of gossip will start after some
//! time" — this module drives that loop with a constant inter-round gap,
//! as the paper assumes for simplicity.
//!
//! Each round runs the phases of the shared kernel ([`crate::kernel`]):
//! **transact** (traffic-gated, admission-controlled chunk requests
//! along overlay edges), **estimate** (per-edge EWMA updates feeding
//! each node's [`ReputationTable`]) and **aggregate** (Variation-4
//! differential gossip, in closed form or by real gossip).
//!
//! Four execution engines are available through
//! [`GossipConfig::engine`](dg_gossip::GossipConfig):
//!
//! * [`EngineKind::Sequential`] — the reference driver in this module:
//!   one inline pass over nodes;
//! * [`EngineKind::Parallel`] — [`BatchedRoundEngine`]: CSR trust
//!   storage, sorted aggregated runs, rayon fan-out over nodes;
//! * [`EngineKind::Sharded`] —
//!   [`ShardedRoundEngine`](crate::sharded::ShardedRoundEngine): nodes
//!   partitioned into contiguous shards ([`RoundsConfig::shard_count`]),
//!   each with its own CSR block and bounded scratch, rayon fan-out
//!   over shards — the million-node configuration;
//! * [`EngineKind::Incremental`] —
//!   [`IncrementalRoundEngine`](crate::incremental::IncrementalRoundEngine):
//!   persistent sharded trust state, dirty-row tracking and
//!   delta-maintained aggregates, so a round costs `O(dirty)` instead
//!   of `O(N)` under skewed traffic ([`RoundsConfig::traffic`]).
//!
//! Every node consumes a private ChaCha8 stream derived from the round
//! seed, so **all engines produce bit-for-bit identical results at any
//! thread count, any shard count, and any traffic shape** (pinned by
//! `tests/engine_equivalence.rs`).

use crate::engine::BatchedRoundEngine;
use crate::kernel::{
    aggregation_rng, closed_form_row, convicted_of, emit_row, finish_round, honest_residual_error,
    lookup_run, merge_pending, run_audit_phase, runs_totals, subject_means, transact_requester,
    NodeState, ServiceDelta, SubjectAggregates, TransactionRecord,
};
use crate::scenario::Scenario;
use crate::session::{checkpoint_nodes, restore_nodes, EngineCheckpoint, RestoreError};
use crate::workload::{ActivityPlan, TrafficModel};
use dg_core::algorithms::alg4;
use dg_core::reputation::ReputationSystem;
use dg_core::CoreError;
use dg_gossip::{EngineKind, GossipConfig};
use dg_graph::NodeId;
use dg_trust::audit::AuditPolicy;
use dg_trust::prelude::ReputationTable;
use dg_trust::{RobustAggregation, TrustMatrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How reputations are refreshed each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationMode {
    /// Run the real Variation-4 vector gossip (slower, fully faithful).
    Gossip,
    /// Evaluate the converged limit in closed form (fast; the test suite
    /// separately verifies gossip reaches this limit).
    ClosedForm,
}

/// Which (observer, subject) pairs the closed-form aggregation
/// materialises each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AggregationScope {
    /// Every subject anyone holds an opinion about, at every observer —
    /// the paper's full gossip limit. `O(N · S)` state: fine up to a few
    /// thousand nodes.
    #[default]
    Full,
    /// Only each observer's overlay neighbours. Admission control reads
    /// exactly these pairs (requests arrive along edges), so service
    /// gating is unchanged while state shrinks to `O(edges)` — the
    /// production setting for large networks.
    Neighbourhood,
}

/// How a provider treats a requester it aggregates no opinion about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NewcomerPolicy {
    /// Serve strangers — the open-network default, and the honeymoon a
    /// whitewasher farms by discarding exposed identities.
    #[default]
    Optimistic,
    /// The paper's anti-whitewash rule: an unknown requester is worth
    /// its zero prior, so it is refused until it earns reputation by
    /// serving (providers with no aggregated view at all still serve
    /// everyone — there is nothing to gate on yet).
    ZeroPrior,
}

/// Trust-side countermeasure knobs the attack experiments sweep.
///
/// Applies to [`AggregationMode::ClosedForm`]; real distributed gossip
/// ([`AggregationMode::Gossip`]) cannot trim per-subject report sets (no
/// node ever holds them), which is exactly why the claims harness
/// measures the closed-form aggregation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DefensePolicy {
    /// Report clamping / per-subject trimmed aggregation.
    #[serde(default)]
    pub robust: RobustAggregation,
    /// Stranger admission rule.
    #[serde(default)]
    pub newcomer: NewcomerPolicy,
}

impl DefensePolicy {
    /// The paper's plain behaviour: no clamping, no trimming, optimistic
    /// stranger admission.
    pub const fn none() -> Self {
        Self {
            robust: RobustAggregation::none(),
            newcomer: NewcomerPolicy::Optimistic,
        }
    }

    /// The defended setting the claims harness gates on: clamped and
    /// trimmed aggregation plus the zero-prior stranger rule.
    pub const fn defended() -> Self {
        Self {
            robust: RobustAggregation::defended(),
            newcomer: NewcomerPolicy::ZeroPrior,
        }
    }

    /// Whether this policy changes anything over the paper's behaviour.
    pub fn is_none(&self) -> bool {
        self.robust.is_none() && self.newcomer == NewcomerPolicy::Optimistic
    }
}

/// Round-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundsConfig {
    /// Rounds to simulate.
    pub rounds: usize,
    /// Requests per directed neighbour pair per round.
    pub requests_per_edge: u32,
    /// Admission threshold as a *fraction of the provider's own mean
    /// aggregated reputation*: a requester is served when its reputation
    /// clears `admission_threshold × mean`. Relative thresholds are
    /// necessary because Eq. (6) deflates estimates observer-dependently
    /// (an observer whose weighted neighbourhood holds no information
    /// about a subject treats the silence like 0-reports, the
    /// anti-whitewash default) — an absolute cut-off would let
    /// high-excess observers refuse honest strangers wholesale.
    pub admission_threshold: f64,
    /// EWMA learning rate for trust estimation.
    pub ewma_rate: f64,
    /// How to refresh reputations.
    pub aggregation: AggregationMode,
    /// Closed-form materialisation scope.
    pub scope: AggregationScope,
    /// Gossip-layer configuration: tolerance `ξ` for
    /// [`AggregationMode::Gossip`] and the execution engine
    /// ([`GossipConfig::engine`]) driving the round loop.
    pub gossip: GossipConfig,
    /// Trust-side countermeasures against adversarial reports. Defaults
    /// to [`DefensePolicy::none`] — the paper's plain behaviour.
    #[serde(default)]
    pub defense: DefensePolicy,
    /// Shard count for [`EngineKind::Sharded`] and
    /// [`EngineKind::Incremental`] (ignored by the other engines). `0` —
    /// the default — selects the deterministic auto partition, one shard
    /// per [`ShardSpec::AUTO_CHUNK`](dg_trust::ShardSpec::AUTO_CHUNK)
    /// nodes. Results are bit-identical for **every** value; this is
    /// purely a memory/parallelism knob.
    #[serde(default)]
    pub shard_count: usize,
    /// Traffic shape: which requesters are active each round (see
    /// [`TrafficModel`]). Defaults to the legacy full workload — every
    /// participating node requests every round. Results are
    /// bit-identical across engines for **every** traffic shape; the
    /// incremental engine merely converts the idleness into speed.
    #[serde(default)]
    pub traffic: TrafficModel,
    /// The stochastic-audit countermeasure against within-bounds
    /// stealth cartels (see [`dg_trust::audit`]). Defaults to
    /// [`AuditPolicy::off`] — zero audit rate, no report logging, runs
    /// bit-identical to builds that predate the subsystem.
    #[serde(default)]
    pub audit: AuditPolicy,
}

impl Default for RoundsConfig {
    fn default() -> Self {
        Self {
            rounds: 10,
            requests_per_edge: 5,
            admission_threshold: 0.35,
            ewma_rate: 0.3,
            aggregation: AggregationMode::ClosedForm,
            scope: AggregationScope::Full,
            gossip: GossipConfig::default(),
            defense: DefensePolicy::none(),
            shard_count: 0,
            traffic: TrafficModel::full(),
            audit: AuditPolicy::off(),
        }
    }
}

impl RoundsConfig {
    /// Builder-style: select the execution engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.gossip.engine = engine;
        self
    }

    /// Builder-style: fix the shard count of the sharded-substrate
    /// engines (0 = auto).
    pub fn with_shards(mut self, shard_count: usize) -> Self {
        self.shard_count = shard_count;
        self
    }

    /// Builder-style: set the defense policy.
    pub fn with_defense(mut self, defense: DefensePolicy) -> Self {
        self.defense = defense;
        self
    }

    /// Builder-style: set the gossip tolerance `ξ`.
    pub fn with_xi(mut self, xi: f64) -> Self {
        self.gossip.xi = xi;
        self
    }

    /// Builder-style: set the traffic shape.
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }

    /// Builder-style: set the audit policy.
    pub fn with_audit(mut self, audit: AuditPolicy) -> Self {
        self.audit = audit;
        self
    }

    /// The engine driving the round loop.
    pub fn engine(&self) -> EngineKind {
        self.gossip.engine
    }
}

/// Per-round service statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Requests served, by requester behaviour class.
    pub served_honest: u64,
    /// Requests refused, honest requesters.
    pub refused_honest: u64,
    /// Requests served, free-riding requesters.
    pub served_free_riders: u64,
    /// Requests refused, free-riding requesters.
    pub refused_free_riders: u64,
    /// Requests served, adversarial requesters (any attack role; absent
    /// — zero — in reports written before the adversary layer existed).
    #[serde(default)]
    pub served_adversaries: u64,
    /// Requests refused, adversarial requesters.
    #[serde(default)]
    pub refused_adversaries: u64,
    /// Mean aggregated reputation of honest nodes (as seen network-wide).
    pub mean_rep_honest: f64,
    /// Mean aggregated reputation of free riders.
    pub mean_rep_free_riders: f64,
    /// Mean aggregated reputation of adversarial nodes.
    #[serde(default)]
    pub mean_rep_adversaries: f64,
    /// Whitewash identity resets performed at the end of this round.
    #[serde(default)]
    pub washes: u64,
    /// Requesters that cleared both the participation and the traffic
    /// activity gates this round (absent — zero — in reports written
    /// before the traffic model existed).
    #[serde(default)]
    pub active_nodes: u64,
    /// Fraction of nodes whose trust row gained fresh transaction
    /// records this round — the share of the network the incremental
    /// engine must recompute.
    #[serde(default)]
    pub dirty_fraction: f64,
    /// Audits performed this round (absent — zero — in reports written
    /// before the audit subsystem existed, like every field below).
    #[serde(default)]
    pub audits: u64,
    /// Strikes issued by this round's audits.
    #[serde(default)]
    pub audit_strikes: u64,
    /// Nodes convicted (k strikes reached) and purged this round.
    #[serde(default)]
    pub convictions: u64,
    /// Audit bandwidth in report-entry units: one envelope per audit
    /// plus one unit per re-verified log entry.
    #[serde(default)]
    pub audit_entries: u64,
    /// Report traffic this round (trust-matrix entries after the report
    /// phase) — the denominator of the audit-overhead claim.
    #[serde(default)]
    pub report_entries: u64,
    /// Externally-ingested reports interleaved into this round by the
    /// serve layer (absent — zero — in reports written before the
    /// serve layer existed, like the shed counter below).
    #[serde(default)]
    pub ingested_reports: u64,
    /// Ingest submissions shed with a typed `Busy` reply since the
    /// previous round (bounded-channel backpressure — shed load is
    /// counted here, never dropped silently).
    #[serde(default)]
    pub ingest_shed: u64,
}

impl RoundStats {
    /// Service rate for honest requesters.
    pub fn honest_service_rate(&self) -> f64 {
        rate(self.served_honest, self.refused_honest)
    }

    /// Service rate for free-riding requesters.
    pub fn free_rider_service_rate(&self) -> f64 {
        rate(self.served_free_riders, self.refused_free_riders)
    }

    /// Service rate for adversarial requesters.
    pub fn adversary_service_rate(&self) -> f64 {
        rate(self.served_adversaries, self.refused_adversaries)
    }

    /// Audit bandwidth as a fraction of the round's report traffic
    /// (zero when no reports flowed).
    pub fn audit_overhead(&self) -> f64 {
        if self.report_entries == 0 {
            return 0.0;
        }
        self.audit_entries as f64 / self.report_entries as f64
    }
}

fn rate(served: u64, refused: u64) -> f64 {
    let total = served + refused;
    if total == 0 {
        return 0.0;
    }
    served as f64 / total as f64
}

/// The uniform surface a round engine exposes to [`RoundsSimulator`]
/// and [`RunSession`](crate::session::RunSession): step, checkpoint,
/// restore and stats, against one interface instead of the historical
/// enum-only dispatch.
///
/// Engines implement this by delegating to their inherent methods;
/// adding an engine is one `impl` plus one arm in
/// [`build_engine`](crate::session::build_engine) — the single dispatch
/// point every layer (simulator, session, bench CLI, perf suite) routes
/// through.
///
/// `checkpoint` / `restore` speak the engine-agnostic
/// [`EngineCheckpoint`]: the cross-round state every engine shares
/// (estimators, tables, aggregated runs, observer means, round index).
/// Engine-internal acceleration state — CSR matrices, aggregate caches,
/// cached weights — is deliberately *not* part of a checkpoint: it is
/// deterministically reconstructible, so any engine can restore any
/// engine's checkpoint and the resumed trajectory stays bit-identical
/// (pinned by `tests/crash_recovery.rs`).
pub trait RoundEngine {
    /// Run one full round from the given seed.
    fn run_round(&mut self, round_seed: u64) -> Result<RoundStats, CoreError>;
    /// Queue externally-ingested transaction reports for the *next*
    /// round: `batches` maps each reporting requester to the records it
    /// submitted, sorted ascending by requester with no empty batches
    /// (the serve layer normalises submissions into this shape). During
    /// the next `run_round`, each batch is appended after the
    /// requester's generated records — in exactly this order on every
    /// engine, so ingest-carrying rounds stay bit-identical across
    /// engines and across replays of the same log. Ingested records
    /// fold into estimators and reports; the service-delta stats
    /// (served/refused counts, active nodes, dirty fraction) remain
    /// transact-phase-only.
    fn queue_reports(&mut self, batches: Vec<(NodeId, Vec<TransactionRecord>)>);
    /// The index of the next round to run (0 before the first round).
    fn round(&self) -> usize;
    /// The reputation table of one node.
    fn table(&self, node: NodeId) -> &ReputationTable;
    /// The aggregated reputation of `subject` at `observer`.
    fn aggregated(&self, observer: NodeId, subject: NodeId) -> Option<f64>;
    /// Per-subject `(Σ rep, #observers)` over the stored aggregated rows.
    fn totals(&self) -> (Vec<f64>, Vec<usize>);
    /// Honest-subject residual error (the claims-gate metric).
    fn honest_residual(&self) -> Option<f64>;
    /// Nodes convicted by the audit subsystem so far, with their
    /// conviction rounds, ascending by node (empty while auditing is
    /// off).
    fn convicted(&self) -> Vec<(NodeId, u64)>;
    /// Freeze the engine's cross-round state.
    fn checkpoint(&self) -> EngineCheckpoint;
    /// Replace the engine's cross-round state with a checkpoint (made by
    /// this engine or any other). Fails if the checkpoint's node count
    /// does not match the scenario.
    fn restore(&mut self, checkpoint: EngineCheckpoint) -> Result<(), RestoreError>;
}

/// The single engine factory: every layer that turns an [`EngineKind`]
/// into a running engine goes through here.
pub(crate) fn make_engine<'s>(
    scenario: &'s Scenario,
    config: RoundsConfig,
) -> Box<dyn RoundEngine + 's> {
    match config.engine() {
        EngineKind::Sequential => Box::new(SequentialRounds::new(scenario, config)),
        EngineKind::Parallel => Box::new(BatchedRoundEngine::new(scenario, config)),
        EngineKind::Sharded => Box::new(crate::sharded::ShardedRoundEngine::new(scenario, config)),
        EngineKind::Incremental => Box::new(crate::incremental::IncrementalRoundEngine::new(
            scenario, config,
        )),
    }
}

/// The sequential reference driver: one inline pass over nodes per
/// phase, dynamic map-backed trust storage — deliberately the simplest
/// possible composition of the kernel phases, the yardstick the
/// optimised engines are pinned against.
struct SequentialRounds<'s> {
    scenario: &'s Scenario,
    config: RoundsConfig,
    plan: ActivityPlan,
    nodes: Vec<NodeState>,
    /// `aggregated[observer]` — sorted `(subject, reputation)` run.
    aggregated: Vec<Vec<(NodeId, f64)>>,
    /// Mean aggregated reputation per observer (admission scale).
    observer_mean: Vec<Option<f64>>,
    /// Ingested report batches for the next round (see
    /// [`RoundEngine::queue_reports`]): ascending by requester.
    pending_ingest: Vec<(NodeId, Vec<TransactionRecord>)>,
    round: usize,
}

impl<'s> SequentialRounds<'s> {
    fn new(scenario: &'s Scenario, config: RoundsConfig) -> Self {
        let n = scenario.graph.node_count();
        Self {
            scenario,
            plan: ActivityPlan::new(config.traffic, n),
            config,
            nodes: (0..n).map(|_| NodeState::new()).collect(),
            aggregated: vec![Vec::new(); n],
            observer_mean: vec![None; n],
            pending_ingest: Vec::new(),
            round: 0,
        }
    }

    fn run_round(&mut self, round_seed: u64) -> Result<RoundStats, CoreError> {
        // The tiled subject-sum sweep inside dg-trust fans out on the
        // ambient pool; pin this driver to one worker so "sequential"
        // stays an honest single-thread yardstick in every benchmark
        // (results are bit-identical either way).
        let single = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("single-thread pool");
        single.install(|| self.run_round_multiphase(round_seed))
    }

    fn run_round_multiphase(&mut self, round_seed: u64) -> Result<RoundStats, CoreError> {
        let graph = &self.scenario.graph;
        let n = graph.node_count();
        let round = self.round as u64;
        let seed = self.scenario.config.seed;

        // Phases 1 + 2: transact, then fold each requester's records
        // into its estimators and table — inline, one node at a time,
        // but on the same per-node streams and kernel phases as the
        // parallel engines. Rows go into the dynamic map backend, one
        // point insertion per entry.
        let mut delta = ServiceDelta::default();
        let aggregated = std::mem::take(&mut self.aggregated);
        let lookup =
            |provider: NodeId, requester: NodeId| lookup_run(&aggregated, provider, requester);
        let banned: Vec<bool> = self
            .nodes
            .iter()
            .map(|state| state.convicted_at.is_some())
            .collect();
        let mut trust = TrustMatrix::new(n);
        let mut pending = std::mem::take(&mut self.pending_ingest)
            .into_iter()
            .peekable();
        for requester in graph.nodes() {
            let (mut records, d) = transact_requester(
                self.scenario,
                &self.config,
                &self.plan,
                requester,
                round,
                round_seed,
                &lookup,
                &self.observer_mean,
                &banned,
            );
            delta.merge(d);
            // Ingested records fold after the generated ones — the one
            // ordering every engine reproduces.
            if pending.peek().is_some_and(|(r, _)| *r == requester) {
                records.extend(pending.next().expect("peeked").1);
            }
            let row = emit_row(
                self.scenario,
                &self.config,
                &mut self.nodes[requester.index()],
                requester,
                records,
                round,
            );
            for (j, report) in row {
                trust
                    .set(requester, j, report)
                    .expect("estimator keys are in range");
            }
        }
        self.aggregated = aggregated;
        let report_entries = trust.entry_count() as u64;
        let system = ReputationSystem::new(graph, trust, self.scenario.weights)?;

        // Phase 3: aggregate.
        match self.config.aggregation {
            AggregationMode::ClosedForm => {
                let agg = SubjectAggregates::compute(system.trust(), &self.config.defense.robust);
                self.aggregated = (0..n as u32)
                    .map(|i| closed_form_row(&system, NodeId(i), self.config.scope, &agg))
                    .collect();
            }
            AggregationMode::Gossip => {
                let out = alg4::run(&system, self.config.gossip.validated()?, &mut {
                    aggregation_rng(round_seed)
                })?;
                self.aggregated = out
                    .estimates
                    .into_iter()
                    .map(|row| row.into_iter().map(|(j, r)| (NodeId(j), r)).collect())
                    .collect();
            }
        }

        // Audit phase (wash-adjacent, before the epilogue): the
        // deterministic target set of (seed, round) re-verified against
        // each target's recorded evidence.
        let audit = run_audit_phase(&self.config.audit, seed, round, &mut self.nodes);

        // Shared round epilogue: summary, whitewash + conviction purge,
        // admission scales, stats.
        let nodes = &mut self.nodes;
        let stats = finish_round(
            self.scenario,
            self.round,
            delta,
            audit,
            report_entries,
            &mut self.aggregated,
            &mut self.observer_mean,
            |purged| {
                for state in nodes.iter_mut() {
                    state.forget(purged);
                }
                for &w in purged {
                    nodes[w.index()].reset_identity();
                }
            },
        );
        self.round += 1;
        Ok(stats)
    }

    fn honest_residual(&self) -> Option<f64> {
        let (sums, cnts) = self.totals();
        honest_residual_error(self.scenario, &sums, &cnts)
    }

    fn totals(&self) -> (Vec<f64>, Vec<usize>) {
        runs_totals(self.scenario.graph.node_count(), &self.aggregated)
    }
}

impl RoundEngine for SequentialRounds<'_> {
    fn run_round(&mut self, round_seed: u64) -> Result<RoundStats, CoreError> {
        SequentialRounds::run_round(self, round_seed)
    }

    fn queue_reports(&mut self, batches: Vec<(NodeId, Vec<TransactionRecord>)>) {
        merge_pending(&mut self.pending_ingest, batches);
    }

    fn round(&self) -> usize {
        self.round
    }

    fn table(&self, node: NodeId) -> &ReputationTable {
        &self.nodes[node.index()].table
    }

    fn aggregated(&self, observer: NodeId, subject: NodeId) -> Option<f64> {
        lookup_run(&self.aggregated, observer, subject)
    }

    fn totals(&self) -> (Vec<f64>, Vec<usize>) {
        SequentialRounds::totals(self)
    }

    fn honest_residual(&self) -> Option<f64> {
        SequentialRounds::honest_residual(self)
    }

    fn convicted(&self) -> Vec<(NodeId, u64)> {
        convicted_of(self.nodes.iter())
    }

    fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            round: self.round,
            nodes: checkpoint_nodes(&self.nodes),
            aggregated: self.aggregated.clone(),
            observer_mean: self.observer_mean.clone(),
        }
    }

    fn restore(&mut self, checkpoint: EngineCheckpoint) -> Result<(), RestoreError> {
        checkpoint.validate(self.scenario.graph.node_count())?;
        self.nodes = restore_nodes(checkpoint.nodes);
        self.aggregated = checkpoint.aggregated;
        self.observer_mean = checkpoint.observer_mean;
        self.round = checkpoint.round;
        Ok(())
    }
}

/// The round-loop simulator, dispatching to the configured engine.
pub struct RoundsSimulator<'s> {
    config: RoundsConfig,
    backend: Box<dyn RoundEngine + 's>,
}

impl<'s> RoundsSimulator<'s> {
    /// Create a simulator over a scenario, using the engine selected by
    /// `config.gossip.engine`.
    pub fn new(scenario: &'s Scenario, config: RoundsConfig) -> Self {
        Self {
            config,
            backend: make_engine(scenario, config),
        }
    }

    /// The engine driving this simulator.
    pub fn engine(&self) -> EngineKind {
        self.config.engine()
    }

    /// The reputation table of one node.
    pub fn table(&self, node: NodeId) -> &ReputationTable {
        self.backend.table(node)
    }

    /// The aggregated reputation of `subject` at `observer`, if any
    /// aggregation round has run (and the pair is in scope).
    pub fn aggregated(&self, observer: NodeId, subject: NodeId) -> Option<f64> {
        self.backend.aggregated(observer, subject)
    }

    /// Mean absolute error between honest subjects' network-wide mean
    /// aggregated reputation and their latent quality. A *diagnostic*
    /// residual: Eq. (6) deflates estimates observer-dependently, so
    /// even honest runs keep a systematic offset — compare runs against
    /// each other ([`Self::subject_mean_reputations`]) to isolate what
    /// an attack moved. `None` before the first aggregation round.
    pub fn honest_residual_error(&self) -> Option<f64> {
        self.backend.honest_residual()
    }

    /// Each subject's mean aggregated reputation over the observers
    /// currently holding a view (`None` for unaggregated subjects) —
    /// the per-node quantity attack/reference comparisons difference.
    pub fn subject_mean_reputations(&self) -> Vec<Option<f64>> {
        let (sums, cnts) = self.backend.totals();
        subject_means(&sums, &cnts)
    }

    /// Nodes convicted by the audit subsystem so far, with their
    /// conviction rounds, ascending (empty while auditing is off).
    pub fn convicted(&self) -> Vec<(NodeId, u64)> {
        self.backend.convicted()
    }

    /// Run one full round, drawing the round seed from `rng`; returns
    /// its statistics.
    pub fn run_round<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<RoundStats, CoreError> {
        let round_seed = rng.next_u64();
        self.backend.run_round(round_seed)
    }

    /// Run all configured rounds.
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<Vec<RoundStats>, CoreError> {
        (0..self.config.rounds)
            .map(|_| self.run_round(rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    #[test]
    fn free_riders_get_starved() {
        let cfg = ScenarioConfig {
            nodes: 120,
            free_rider_fraction: 0.25,
            seed: 7,
            // Honest contributors are decent (≥ 0.4); the gap to free
            // riders is what admission control must detect.
            quality_range: (0.4, 1.0),
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::build(cfg).unwrap();
        let mut sim = RoundsSimulator::new(
            &scenario,
            RoundsConfig {
                rounds: 6,
                ..RoundsConfig::default()
            },
        );
        let mut rng = scenario.gossip_rng(2);
        let stats = sim.run(&mut rng).unwrap();

        // Round 0: nobody has reputations yet; everyone served.
        assert_eq!(stats[0].refused_honest + stats[0].refused_free_riders, 0);
        // By the last round free riders are mostly refused while honest
        // nodes keep near-full service.
        let last = stats.last().unwrap();
        assert!(
            last.free_rider_service_rate() < 0.2,
            "free riders still served at {}",
            last.free_rider_service_rate()
        );
        assert!(
            last.honest_service_rate() > 0.8,
            "honest service degraded to {}",
            last.honest_service_rate()
        );
        // Reputation separation.
        assert!(last.mean_rep_honest > last.mean_rep_free_riders + 0.2);
        // The full traffic model keeps every node active, and every
        // served requester's row dirty.
        assert_eq!(last.active_nodes, 120);
        assert!(last.dirty_fraction > 0.5);
    }

    #[test]
    fn gossip_mode_agrees_with_closed_form_direction() {
        let cfg = ScenarioConfig {
            nodes: 60,
            free_rider_fraction: 0.2,
            seed: 11,
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::build(cfg).unwrap();
        let mut rng = scenario.gossip_rng(3);
        let mut sim = RoundsSimulator::new(
            &scenario,
            RoundsConfig {
                rounds: 4,
                aggregation: AggregationMode::Gossip,
                ..RoundsConfig::default()
            }
            .with_xi(1e-6),
        );
        let stats = sim.run(&mut rng).unwrap();
        let last = stats.last().unwrap();
        assert!(last.mean_rep_honest > last.mean_rep_free_riders);
    }

    #[test]
    fn aggregated_lookup_works() {
        let cfg = ScenarioConfig {
            nodes: 30,
            seed: 5,
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::build(cfg).unwrap();
        let mut sim = RoundsSimulator::new(&scenario, RoundsConfig::default());
        assert_eq!(sim.aggregated(NodeId(0), NodeId(1)), None);
        let mut rng = scenario.gossip_rng(4);
        sim.run_round(&mut rng).unwrap();
        // Node 1 is a neighbour of someone, so it has been rated and
        // aggregated.
        assert!(sim.aggregated(NodeId(0), NodeId(1)).is_some());
    }

    #[test]
    fn neighbourhood_scope_still_starves_free_riders() {
        let cfg = ScenarioConfig {
            nodes: 120,
            free_rider_fraction: 0.25,
            seed: 7,
            quality_range: (0.4, 1.0),
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::build(cfg).unwrap();
        let mut sim = RoundsSimulator::new(
            &scenario,
            RoundsConfig {
                rounds: 6,
                scope: AggregationScope::Neighbourhood,
                ..RoundsConfig::default()
            },
        );
        let mut rng = scenario.gossip_rng(2);
        let stats = sim.run(&mut rng).unwrap();
        let last = stats.last().unwrap();
        assert!(
            last.free_rider_service_rate() < 0.2,
            "free riders still served at {}",
            last.free_rider_service_rate()
        );
        assert!(
            last.honest_service_rate() > 0.8,
            "honest service degraded to {}",
            last.honest_service_rate()
        );
    }

    #[test]
    fn thinned_traffic_reduces_activity_and_dirt() {
        let cfg = ScenarioConfig {
            nodes: 150,
            seed: 19,
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::build(cfg).unwrap();
        let mut sim = RoundsSimulator::new(
            &scenario,
            RoundsConfig {
                rounds: 3,
                ..RoundsConfig::default()
            }
            .with_traffic(TrafficModel::full().with_activity(0.1)),
        );
        let mut rng = scenario.gossip_rng(2);
        let stats = sim.run(&mut rng).unwrap();
        for s in &stats {
            assert!(
                s.active_nodes < 50,
                "round {} has {} active nodes under 10% activity",
                s.round,
                s.active_nodes
            );
            assert!(s.dirty_fraction < 0.35, "dirty {}", s.dirty_fraction);
            // Only active requesters can dirty their rows.
            let dirty_rows = (s.dirty_fraction * 150.0).round() as u64;
            assert!(dirty_rows <= s.active_nodes);
        }
        // Some traffic still flows.
        assert!(stats.iter().any(|s| s.active_nodes > 0));
    }
}
